//! Failure-injection tests: lossy links, silent proxies, late arrivals.
//!
//! All simulations here derive their seed from `DIMMER_SEED` (default
//! 0), so `scripts/ci.sh` can sweep the suite across seeds and shake
//! out timing-dependent assertions.

use dimmer::district::client::ClientNode;
use dimmer::district::deploy::Deployment;
use dimmer::district::scenario::ScenarioConfig;
use dimmer::master::MasterNode;
use dimmer::proxy::device_proxy::DeviceProxyNode;
use dimmer::simnet::{LinkModel, SimConfig, SimDuration, Simulator};

/// The test's base seed offset by the `DIMMER_SEED` environment
/// variable, for CI seed sweeps.
fn seed(base: u64) -> u64 {
    base + std::env::var("DIMMER_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0)
}

fn sim_with_seed(base: u64) -> Simulator {
    Simulator::new(SimConfig {
        seed: seed(base),
        ..SimConfig::default()
    })
}

#[test]
fn lossy_network_still_converges() {
    // 5% packet loss everywhere: registrations and WS requests retry,
    // the system still assembles and answers.
    let scenario = ScenarioConfig::small().build();
    let mut sim = Simulator::new(SimConfig {
        seed: seed(99),
        default_link: LinkModel::builder()
            .latency(SimDuration::from_millis(5))
            .bandwidth_bps(10_000_000)
            .loss(0.05)
            .build(),
    });
    let deployment = Deployment::build(&mut sim, &scenario);
    sim.run_for(SimDuration::from_secs(900));

    let master = sim.node_ref::<MasterNode>(deployment.master).unwrap();
    assert_eq!(
        master.ontology().device_count(),
        12,
        "all devices eventually registered despite loss"
    );

    let client = ClientNode::spawn(
        &mut sim,
        &deployment,
        scenario.districts[0].district.clone(),
        scenario.districts[0].bbox(),
    );
    sim.run_for(SimDuration::from_secs(120));
    let snapshot = sim
        .node_ref::<ClientNode>(client)
        .unwrap()
        .latest_snapshot()
        .unwrap()
        .clone();
    // Individual fetches may fail even after retries; the snapshot is
    // still produced and mostly complete.
    assert!(
        !snapshot.measurements.is_empty(),
        "snapshot carried no data at all"
    );
    assert!(
        snapshot.resolution.entities.len() >= 4,
        "resolution too incomplete: {}",
        snapshot.resolution.entities.len()
    );
}

#[test]
fn wireless_sensor_links_degrade_gracefully() {
    // Device → proxy links with degraded 802.15.4-class quality (5%
    // loss, 250 kbit/s): some frames are lost, the rest still flow.
    let scenario = ScenarioConfig::small().build();
    let mut sim = sim_with_seed(1);
    let deployment = Deployment::build(&mut sim, &scenario);
    let lossy = LinkModel::builder()
        .latency(SimDuration::from_millis(5))
        .bandwidth_bps(250_000)
        .jitter(SimDuration::from_millis(2))
        .loss(0.05)
        .build();
    for (proxy, device) in deployment.districts[0]
        .device_proxies
        .iter()
        .zip(&deployment.districts[0].devices)
    {
        sim.set_link(*device, *proxy, lossy.clone());
    }
    sim.run_for(SimDuration::from_secs(1200));

    let mut ingested = 0u64;
    for p in deployment.device_proxies() {
        ingested += sim
            .node_ref::<DeviceProxyNode>(p)
            .unwrap()
            .stats()
            .samples_ingested;
    }
    // 12 devices * 20 minutes * 1/min = 240 expected pushes; with 1%
    // loss plus OPC UA polling most arrive.
    assert!(ingested > 180, "only {ingested} samples made it");
    assert!(sim.metrics().packets_lost > 0, "loss model was exercised");
}

#[test]
fn late_proxy_joins_running_system() {
    use dimmer::core::{DeviceId, ProxyId, QuantityKind};
    use dimmer::models::profiles::EnergyProfile;
    use dimmer::protocols::device::ZigbeeSensor;
    use dimmer::proxy::adapters::ZigbeeAdapter;
    use dimmer::proxy::device_proxy::DeviceProxyConfig;
    use dimmer::proxy::devices::UplinkDeviceNode;
    use dimmer::pubsub::QoS;

    let scenario = ScenarioConfig::small().build();
    let mut sim = sim_with_seed(2);
    let deployment = Deployment::build(&mut sim, &scenario);
    sim.run_for(SimDuration::from_secs(300));

    let before = sim
        .node_ref::<MasterNode>(deployment.master)
        .unwrap()
        .ontology()
        .device_count();

    // A new sensor is installed mid-run.
    let proxy = sim.add_node(
        "late-proxy",
        DeviceProxyNode::new(
            DeviceProxyConfig {
                proxy: ProxyId::new("late-proxy").unwrap(),
                district: scenario.districts[0].district.clone(),
                entity_id: scenario.districts[0].buildings[0]
                    .building
                    .as_str()
                    .to_owned(),
                device: DeviceId::new("late-device").unwrap(),
                primary_quantity: QuantityKind::Co2,
                master: deployment.master,
                broker: Some(deployment.broker),
                device_node: None,
                poll_interval: None,
                retention: None,
                location: Some(scenario.districts[0].buildings[0].location),
                epoch_offset_millis: scenario.config.epoch_offset_millis,
                publish_qos: QoS::AtMostOnce,
            },
            Box::new(ZigbeeAdapter::new(0x9999)),
        ),
    );
    let device = sim.add_node(
        "late-device",
        UplinkDeviceNode::new(
            Box::new(ZigbeeSensor::new(0x9999, QuantityKind::Temperature)),
            EnergyProfile::for_quantity(QuantityKind::Temperature, 77),
            proxy,
            SimDuration::from_secs(30),
            scenario.config.epoch_offset_millis,
        ),
    );
    sim.node_mut::<DeviceProxyNode>(proxy)
        .unwrap()
        .set_device_node(device);
    sim.run_for(SimDuration::from_secs(120));

    let master = sim.node_ref::<MasterNode>(deployment.master).unwrap();
    assert_eq!(master.ontology().device_count(), before + 1);
    assert!(sim
        .node_ref::<DeviceProxyNode>(proxy)
        .unwrap()
        .is_registered());
    assert!(
        sim.node_ref::<DeviceProxyNode>(proxy)
            .unwrap()
            .stats()
            .samples_ingested
            > 0
    );

    // A fresh area query sees the newcomer.
    let client = ClientNode::spawn(
        &mut sim,
        &deployment,
        scenario.districts[0].district.clone(),
        scenario.districts[0].bbox(),
    );
    sim.run_for(SimDuration::from_secs(30));
    let snapshot = sim
        .node_ref::<ClientNode>(client)
        .unwrap()
        .latest_snapshot()
        .unwrap()
        .clone();
    assert!(snapshot
        .resolution
        .devices
        .iter()
        .any(|d| d.device().as_str() == "late-device"));
}

#[test]
fn dead_device_proxy_disappears_from_the_ontology() {
    // Deploy, then surgically cut one proxy's heartbeats by replacing
    // its link to the master with a total-loss link.
    let scenario = ScenarioConfig::small().build();
    let mut sim = sim_with_seed(3);
    let deployment = Deployment::build(&mut sim, &scenario);
    sim.run_for(SimDuration::from_secs(60));

    let victim = deployment.districts[0].device_proxies[0];
    sim.set_link(
        victim,
        deployment.master,
        LinkModel::builder().loss(1.0).build(),
    );
    // Liveness horizon is 100 s; run well past it.
    sim.run_for(SimDuration::from_secs(400));

    let master = sim.node_ref::<MasterNode>(deployment.master).unwrap();
    assert!(master.stats().evictions >= 1, "{:?}", master.stats());
    assert_eq!(
        master.ontology().device_count(),
        11,
        "the victim's leaf is gone"
    );
}

#[test]
fn evicted_proxy_reregisters_and_reappears_exactly_once() {
    // An eviction is not a death sentence: when the proxy's link comes
    // back, its next heartbeat is answered 404 and it re-registers. The
    // device leaf must reappear in the ontology exactly once — not
    // duplicated by the re-registration.
    let scenario = ScenarioConfig::small().build();
    let mut sim = sim_with_seed(4);
    let deployment = Deployment::build(&mut sim, &scenario);
    sim.run_for(SimDuration::from_secs(60));

    let victim = deployment.districts[0].device_proxies[0];
    let victim_device = &scenario.districts[0].buildings[0].devices[0];
    sim.set_link(
        victim,
        deployment.master,
        LinkModel::builder().loss(1.0).build(),
    );
    sim.run_for(SimDuration::from_secs(400));
    assert_eq!(
        sim.node_ref::<MasterNode>(deployment.master)
            .unwrap()
            .ontology()
            .device_count(),
        11,
        "the victim was evicted"
    );

    // The link heals; the next heartbeat discovers the eviction.
    sim.set_link(victim, deployment.master, LinkModel::lan());
    sim.run_for(SimDuration::from_secs(120));

    let master = sim.node_ref::<MasterNode>(deployment.master).unwrap();
    assert_eq!(master.ontology().device_count(), 12, "{:?}", master.stats());
    let leaves = master
        .ontology()
        .devices_by_quantity(&scenario.districts[0].district, victim_device.quantity)
        .unwrap();
    assert_eq!(
        leaves
            .iter()
            .filter(|(_, leaf)| leaf.device() == &victim_device.device)
            .count(),
        1,
        "the re-registered device appears exactly once"
    );
    assert!(
        sim.is_up(victim),
        "the victim never crashed, only its link did"
    );
}
