//! Chaos tests: crash/restart lifecycle faults against the full
//! district deployment — broker outages, master amnesia, and seeded
//! random fault plans.

use dimmer::district::deploy::Deployment;
use dimmer::district::scenario::ScenarioConfig;
use dimmer::master::MasterNode;
use dimmer::proxy::device_proxy::DeviceProxyNode;
use dimmer::pubsub::{BrokerNode, PubSubClient, PubSubEvent, QoS, TopicFilter, PUBSUB_PORT};
use dimmer::simnet::chaos::{ChaosRunner, FaultPlan, RandomFaults};
use dimmer::simnet::telemetry::flight::reconstruct;
use dimmer::simnet::{Context, Node, Packet, SimConfig, SimDuration, SimTime, Simulator, TimerTag};

/// A subscriber that rides out broker restarts via keepalive probes.
struct Monitor {
    client: PubSubClient,
    received: u64,
    restarts_seen: u64,
}

impl Monitor {
    fn new(broker: dimmer::simnet::NodeId) -> Self {
        Monitor {
            client: PubSubClient::new(broker, 100),
            received: 0,
            restarts_seen: 0,
        }
    }
}

impl Node for Monitor {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.client.subscribe(
            ctx,
            TopicFilter::new("district/#").expect("valid"),
            QoS::AtLeastOnce,
        );
        self.client.start_keepalive(ctx, SimDuration::from_secs(1));
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if pkt.port != PUBSUB_PORT {
            return;
        }
        match self.client.accept(ctx, &pkt) {
            Some(PubSubEvent::Message { .. }) => self.received += 1,
            Some(PubSubEvent::BrokerRestarted { .. }) => self.restarts_seen += 1,
            _ => {}
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        self.client.on_timer(ctx, tag);
    }
}

fn qos1_scenario() -> dimmer::district::scenario::Scenario {
    let mut config = ScenarioConfig::small();
    config.publish_qos = QoS::AtLeastOnce;
    config.build()
}

/// A simulator seeded from `DIMMER_SEED` (default 0), so the CI seed
/// sweep exercises these scenarios under shifted network timing.
fn seeded_sim(base: u64) -> Simulator {
    let offset = std::env::var("DIMMER_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    Simulator::new(SimConfig {
        seed: base + offset,
        ..SimConfig::default()
    })
}

#[test]
fn broker_outage_buffers_then_replays_without_loss() {
    let scenario = qos1_scenario();
    let mut sim = seeded_sim(0xC4A0);
    sim.telemetry().tracer.set_capacity(1 << 17);
    let deployment = Deployment::build(&mut sim, &scenario);
    let monitor = sim.add_node("monitor", Monitor::new(deployment.broker));

    sim.run_for(SimDuration::from_secs(120));
    sim.crash(deployment.broker);
    sim.restart(deployment.broker, SimDuration::from_secs(30));
    sim.run_for(SimDuration::from_secs(280));

    // The proxies noticed the outage, parked samples, and replayed them.
    let (mut buffered, mut replayed, mut shed, mut backlog) = (0u64, 0u64, 0u64, 0usize);
    for p in deployment.device_proxies() {
        let proxy = sim.node_ref::<DeviceProxyNode>(p).unwrap();
        buffered += proxy.stats().buffered;
        replayed += proxy.stats().replayed;
        shed += proxy.stats().shed_capacity;
        backlog += proxy.backlog_len();
        // Store-and-forward conservation per proxy: everything that
        // entered the buffer either replayed, was shed at capacity, or
        // is still parked — decode drops are counted separately.
        assert_eq!(
            proxy.stats().buffered,
            proxy.stats().replayed + proxy.stats().shed_capacity + proxy.backlog_len() as u64,
            "{}",
            sim.node_name(p)
        );
        assert_eq!(proxy.stats().shed_decode, 0, "{}", sim.node_name(p));
    }
    assert!(buffered > 0, "no proxy buffered during the outage");
    assert!(
        replayed >= buffered,
        "{replayed} replays of {buffered} buffered"
    );
    assert_eq!(shed, 0, "the 30 s outage fits in the buffers");
    assert_eq!(backlog, 0, "backlogs fully drained");

    // The monitor resumed its session and kept receiving.
    let m = sim.node_ref::<Monitor>(monitor).unwrap();
    assert_eq!(m.restarts_seen, 1);
    assert!(m.received > 0);

    // Flight-recorder reconstruction: every buffered sample still made
    // it end to end.
    let paths = reconstruct(&sim.telemetry().tracer.events());
    let parked: Vec<_> = paths
        .iter()
        .filter(|p| p.visits(&["proxy.buffer"]))
        .collect();
    assert!(!parked.is_empty(), "traced samples were parked");
    for path in parked {
        assert!(
            path.visits(&["sub.receive"]),
            "buffered trace {} was lost:\n{path}",
            path.trace_id
        );
    }

    // QoS 1 conservation at the broker.
    let broker = sim.node_ref::<BrokerNode>(deployment.broker).unwrap();
    let stats = broker.stats();
    assert_eq!(
        stats.qos1_enqueued,
        stats.acked + stats.dropped + broker.pending_deliveries() as u64,
        "conservation violated: {stats:?}"
    );
    assert_eq!(broker.incarnation(), 1);
}

#[test]
fn master_restart_is_followed_by_full_reregistration() {
    let scenario = qos1_scenario();
    let mut sim = seeded_sim(0xC4A1);
    let deployment = Deployment::build(&mut sim, &scenario);
    sim.run_for(SimDuration::from_secs(120));
    assert_eq!(
        sim.node_ref::<MasterNode>(deployment.master)
            .unwrap()
            .ontology()
            .device_count(),
        12
    );

    // The master reboots with an empty registry; heartbeats come back
    // 404 and every proxy re-registers.
    sim.crash(deployment.master);
    sim.restart(deployment.master, SimDuration::from_secs(20));
    sim.run_for(SimDuration::from_secs(400));

    let master = sim.node_ref::<MasterNode>(deployment.master).unwrap();
    assert_eq!(master.proxy_count(), 19, "stats: {:?}", master.stats());
    assert_eq!(master.ontology().device_count(), 12);
    assert_eq!(master.ontology().entity_count(), 5);
}

#[test]
fn seeded_random_chaos_is_deterministic_and_conserves_qos1() {
    let run = |seed: u64| {
        let scenario = qos1_scenario();
        let mut sim = seeded_sim(0xC4A2);
        let deployment = Deployment::build(&mut sim, &scenario);
        sim.run_for(SimDuration::from_secs(60));

        let faults = RandomFaults {
            crash_targets: deployment
                .device_proxies()
                .chain([deployment.broker])
                .collect(),
            crashes_per_hour: 20.0,
            mean_downtime: SimDuration::from_secs(40),
            ..RandomFaults::default()
        };
        let plan = FaultPlan::random(seed, SimDuration::from_secs(600), &faults);
        assert!(!plan.is_empty(), "rates should produce faults");
        let mut runner = ChaosRunner::new(plan);
        runner.run_until(&mut sim, SimTime::from_secs(660));
        // Quiet period so restarts re-register and backlogs drain.
        sim.run_for(SimDuration::from_secs(300));

        let broker = sim.node_ref::<BrokerNode>(deployment.broker).unwrap();
        let stats = broker.stats();
        assert_eq!(
            stats.qos1_enqueued,
            stats.acked + stats.dropped + broker.pending_deliveries() as u64,
            "conservation violated after chaos: {stats:?}"
        );
        let master = sim.node_ref::<MasterNode>(deployment.master).unwrap();
        assert_eq!(
            master.ontology().device_count(),
            12,
            "inventory did not converge: {:?}",
            master.stats()
        );
        (
            runner.faults_injected(),
            stats,
            master.stats(),
            sim.metrics().crashes,
            sim.metrics().restarts,
        )
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a, b, "same seed must replay identically");
    assert!(a.3 > 0, "no crashes were injected");
}

#[test]
fn bridge_link_flaps_mid_batch_conserve_qos1() {
    use dimmer::district::scenario::FederationSpec;
    use dimmer::simnet::chaos::Fault;

    let mut config = ScenarioConfig::small()
        .with_districts(2)
        .with_federation(FederationSpec::sharded(2));
    config.publish_qos = QoS::AtLeastOnce;
    let scenario = config.build();

    let mut sim = seeded_sim(0xC4A3);
    sim.telemetry().tracer.set_capacity(1 << 17);
    let deployment = Deployment::build(&mut sim, &scenario);
    // The monitor listens on shard 0, so every district-1 publish must
    // cross the bridge to reach it.
    let monitor = sim.add_node("monitor", Monitor::new(deployment.brokers[0]));
    sim.run_for(SimDuration::from_secs(60));

    // Flap the bridge link repeatedly. Each 8 s outage is far inside the
    // retransmission budget (8 tries x 2 s), so in-flight batches must
    // ride the flaps out instead of being lost.
    let (b0, b1) = (deployment.brokers[0], deployment.brokers[1]);
    let mut plan = FaultPlan::new();
    for i in 0..5u64 {
        plan = plan.at(
            SimTime::from_secs(63 + i * 60),
            Fault::LinkFlap {
                a: b0,
                b: b1,
                down: SimDuration::from_secs(8),
            },
        );
    }
    let mut runner = ChaosRunner::new(plan);
    runner.run_until(&mut sim, SimTime::from_secs(400));
    // Quiet period: retries drain, batchers flush.
    sim.run_for(SimDuration::from_secs(200));
    let end_ns = sim.now().as_nanos();

    // Zero QoS 1 loss across the bridge under link faults, and the
    // bridge ledger balances on both shards.
    let mut total_retries = 0u64;
    for (i, &b) in deployment.brokers.iter().enumerate() {
        let broker = sim.node_ref::<BrokerNode>(b).unwrap();
        let s = broker.bridge_stats();
        assert_eq!(s.frames_dropped, 0, "shard {i} dropped frames: {s:?}");
        assert_eq!(
            s.frames_enqueued,
            s.frames_acked
                + s.frames_dropped
                + broker.bridge_in_flight() as u64
                + broker.bridge_buffered() as u64,
            "shard {i} bridge conservation violated: {s:?}"
        );
        total_retries += s.retries;
    }
    assert!(
        total_retries > 0,
        "no flap hit an in-flight batch - the fault schedule is toothless"
    );

    // Flight recorder: every measurement forwarded onto the bridge (and
    // old enough that retries had time to settle) reached the peer.
    let paths = reconstruct(&sim.telemetry().tracer.events());
    let settle_ns = SimDuration::from_secs(30).as_nanos();
    let bridged: Vec<_> = paths
        .iter()
        .filter(|p| {
            p.hops
                .iter()
                .any(|h| h.kind == "bridge.forward" && h.time_ns + settle_ns < end_ns)
        })
        .collect();
    assert!(!bridged.is_empty(), "no traces crossed the bridge");
    for path in &bridged {
        assert!(
            path.visits(&["bridge.forward", "bridge.deliver"]),
            "bridged trace {} was lost:\n{path}",
            path.trace_id
        );
    }

    // And the cross-shard subscriber kept receiving throughout.
    let m = sim.node_ref::<Monitor>(monitor).unwrap();
    assert!(m.received > 0);
    assert_eq!(m.restarts_seen, 0, "link faults are not broker restarts");
}

/// A publisher that sends a bounded burst of traced QoS 1 publishes and
/// then goes quiet, so the simulation can actually drain to idle.
struct BurstPub {
    client: PubSubClient,
    total: u64,
    sent: u64,
}

impl Node for BurstPub {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimDuration::from_millis(500), TimerTag(1));
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        self.client.accept(ctx, &pkt);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        if tag != TimerTag(1) {
            self.client.on_timer(ctx, tag);
            return;
        }
        if self.sent >= self.total {
            return;
        }
        let trace = ctx.telemetry().tracer.next_trace_id();
        ctx.trace_hop("pub.send", trace, format!("seq={}", self.sent));
        self.client.publish_traced(
            ctx,
            dimmer::pubsub::Topic::new(format!("district/d0/burst/{}", self.sent)).unwrap(),
            format!("sample-{}", self.sent).into_bytes(),
            false,
            QoS::AtLeastOnce,
            trace,
        );
        self.sent += 1;
        ctx.set_timer(SimDuration::from_millis(100), TimerTag(1));
    }
}

/// A subscriber with no keepalive timer: it counts deliveries but never
/// re-arms anything, so it cannot keep the event queue alive.
struct QuietSub {
    client: PubSubClient,
    received: u64,
}

impl Node for QuietSub {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.client.subscribe(
            ctx,
            TopicFilter::new("district/#").expect("valid"),
            QoS::AtLeastOnce,
        );
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if pkt.port != PUBSUB_PORT {
            return;
        }
        if let Some(PubSubEvent::Message { .. }) = self.client.accept(ctx, &pkt) {
            self.received += 1;
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        self.client.on_timer(ctx, tag);
    }
}

/// PR-6 slab queue under chaos: a broker crash mid-burst must not leak
/// arena slots (every scheduled event is popped or recycled — the slab
/// is empty once the simulation quiesces), and two identical runs must
/// produce byte-identical flight-recorder output.
#[test]
fn event_slab_drains_to_zero_and_replays_byte_identically_under_chaos() {
    let run = || {
        let mut sim = seeded_sim(0xC4A4);
        sim.telemetry().tracer.set_capacity(1 << 16);
        let broker = sim.add_node("broker", BrokerNode::with_label("b0"));
        let sub = sim.add_node(
            "sub",
            QuietSub {
                client: PubSubClient::new(broker, 100),
                received: 0,
            },
        );
        sim.add_node(
            "pub",
            BurstPub {
                client: PubSubClient::new(broker, 100),
                total: 80,
                sent: 0,
            },
        );

        // Crash the broker mid-burst; in-flight deliveries, QoS 1 retry
        // timers and the restart event all cross the fault boundary.
        sim.run_for(SimDuration::from_secs(3));
        assert!(
            sim.event_arena_in_use() > 0,
            "the burst should be mid-flight at the crash point"
        );
        sim.crash(broker);
        sim.restart(broker, SimDuration::from_secs(2));
        let drained = sim.run_until_idle(2_000_000);
        assert!(drained > 0, "nothing left to drain after the restart");

        // The slab ledger: no pending events, no live arena slots, and
        // the arena did grow (the scenario exercised it).
        assert_eq!(sim.pending_events(), 0, "queue not idle");
        assert_eq!(
            sim.event_arena_in_use(),
            0,
            "event slab leaked {} of {} slots",
            sim.event_arena_in_use(),
            sim.event_arena_capacity()
        );
        assert!(sim.event_arena_capacity() > 0);

        let received = sim.node_ref::<QuietSub>(sub).unwrap().received;
        assert!(received > 0, "no deliveries before the crash");

        // Serialize the full flight recorder; two runs must agree byte
        // for byte (timer-wheel and slab determinism end to end).
        let recorder: String = sim
            .telemetry()
            .tracer
            .events()
            .iter()
            .map(|e| {
                format!(
                    "{} n{} {} t{} {} {}\n",
                    e.time_ns, e.node, e.node_name, e.trace_id, e.kind, e.detail
                )
            })
            .collect();
        assert!(!recorder.is_empty(), "flight recorder captured nothing");
        (received, sim.event_arena_capacity(), recorder)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "delivery counts diverged");
    assert_eq!(a.1, b.1, "arena high-water marks diverged");
    assert_eq!(a.2, b.2, "flight-recorder output diverged between runs");
}

/// A query client sharing a fleet-wide retry budget: fires a GET at the
/// master every 2 s and classifies each completion exactly once.
struct BudgetedQuerier {
    client: dimmer::proxy::webservice::WsClient,
    master: dimmer::simnet::NodeId,
    stop_at: SimTime,
    sent: u64,
    ok: u64,
    ok_after: u64,
    /// Responses count as `ok_after` past this time (the heal point).
    after: SimTime,
    timed_out: u64,
}

impl Node for BudgetedQuerier {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimDuration::from_millis(500), TimerTag(1));
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        use dimmer::proxy::webservice::WsClientEvent;
        match self.client.accept(&pkt) {
            Some(WsClientEvent::Response { response, .. }) if response.is_ok() => {
                self.ok += 1;
                if ctx.now() >= self.after {
                    self.ok_after += 1;
                }
            }
            Some(WsClientEvent::TimedOut { .. }) => self.timed_out += 1,
            _ => {}
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        use dimmer::proxy::webservice::WsClientEvent;
        if tag != TimerTag(1) {
            if let Some(WsClientEvent::TimedOut { .. }) = self.client.on_timer(ctx, tag) {
                self.timed_out += 1;
            }
            return;
        }
        if ctx.now() >= self.stop_at {
            return;
        }
        self.client.request(
            ctx,
            self.master,
            &dimmer::proxy::webservice::WsRequest::get("/districts"),
        );
        self.sent += 1;
        ctx.set_timer(SimDuration::from_secs(2), TimerTag(1));
    }
}

#[test]
fn retry_budget_bounds_resend_storms_during_partition() {
    use dimmer::simnet::chaos::Fault;
    use dimmer::simnet::overload::RetryBudget;

    let scenario = qos1_scenario();
    let mut sim = seeded_sim(0xB0D6E7);
    let deployment = Deployment::build(&mut sim, &scenario);

    // Queriers 0–1 carry no budget: their requests run every retry to
    // exhaustion, surfacing as `rpc.retry_exhausted`. Queriers 2–3
    // share a starved budget (one token, trickle refill): almost every
    // retry is denied, so their storm is bounded — `rpc.budget_exhausted`
    // counts exactly those denials.
    let budget = RetryBudget::new(1.0, 0.02);
    let heal_at = SimTime::from_secs(40);
    let queriers: Vec<_> = (0..4)
        .map(|i| {
            let mut node = BudgetedQuerier {
                client: dimmer::proxy::webservice::WsClient::new(1_000_000),
                master: deployment.master,
                stop_at: SimTime::from_secs(65),
                sent: 0,
                ok: 0,
                ok_after: 0,
                after: heal_at,
                timed_out: 0,
            };
            if i >= 2 {
                node.client.set_retry_budget(budget.clone());
            }
            sim.add_node(format!("querier-{i}"), node)
        })
        .collect();

    let plan = FaultPlan::new()
        .at(
            SimTime::from_secs(10),
            Fault::Partition {
                groups: vec![vec![deployment.master], queriers.clone()],
            },
        )
        .at(heal_at, Fault::Heal);
    let mut runner = ChaosRunner::new(plan);
    // Stop offering at 65 s, then drain well past the 3 s × 3 attempt
    // worst case so every request resolves exactly once.
    runner.run_until(&mut sim, SimTime::from_secs(80));

    let metrics = &sim.telemetry().metrics;
    assert!(
        metrics.counter("rpc.retry_exhausted") > 0,
        "no request ran out of retries during the partition"
    );
    assert!(
        metrics.counter("rpc.budget_exhausted") > 0,
        "the shared budget never denied a retry"
    );
    // Only the queriers carry a budget, so the metric and the budget's
    // own denial count must agree exactly.
    assert_eq!(metrics.counter("rpc.budget_exhausted"), budget.exhausted());

    let (mut sent, mut ok, mut ok_after, mut timed_out) = (0u64, 0u64, 0u64, 0u64);
    for &q in &queriers {
        let node = sim.node_ref::<BudgetedQuerier>(q).expect("querier");
        sent += node.sent;
        ok += node.ok;
        ok_after += node.ok_after;
        timed_out += node.timed_out;
    }
    assert_eq!(
        sent,
        ok + timed_out,
        "every request must resolve exactly once"
    );
    assert!(timed_out > 0, "the partition never surfaced as timeouts");
    assert!(ok_after > 0, "queries never recovered after the heal");
}

/// The tskv torn-checkpoint window: a device proxy crashes *between*
/// sealing its head into segments (plus writing the snapshot) and
/// truncating the WAL. The differential oracle is the same seeded run
/// without the crash — every point acknowledged before the crash must
/// read back bit-identically after recovery.
#[test]
fn proxy_crash_between_seal_and_wal_truncate_recovers_exactly() {
    // Everything ingested more than 30 s before the crash was delivered
    // (or lost) identically in both runs; newer points may still be in
    // flight when the crash hits and are excluded from the comparison.
    const CUTOFF_MARGIN_MILLIS: i64 = 30_000;

    /// Per-series points with values as raw bits, for exact comparison.
    type SeriesBits = Vec<(String, Vec<(i64, u64)>)>;

    let run = |crash: bool| -> (i64, SeriesBits, u64, usize) {
        let scenario = qos1_scenario();
        let mut sim = seeded_sim(0xC4A5);
        let deployment = Deployment::build(&mut sim, &scenario);
        let victim = deployment.device_proxies().next().expect("a device proxy");

        sim.run_for(SimDuration::from_secs(180));
        if crash {
            // Freeze the exact torn state: segments sealed, snapshot
            // written, WAL not yet truncated.
            let proxy = sim.node_mut::<DeviceProxyNode>(victim).expect("victim");
            let store = proxy.store_mut();
            store.seal_all();
            store.debug_snapshot_without_truncate();
        }
        // Two more sampling rounds (the scenario samples every 60 s) of
        // acknowledged ingest land in the WAL tail — and only there —
        // before the crash.
        sim.run_for(SimDuration::from_secs(120));
        let cutoff = {
            let proxy = sim.node_ref::<DeviceProxyNode>(victim).expect("victim");
            let store = proxy.store();
            let names: Vec<String> = store.series_names().map(str::to_owned).collect();
            let newest = names
                .iter()
                .filter_map(|n| store.latest(n))
                .map(|(t, _)| t)
                .max()
                .expect("victim ingested samples");
            newest - CUTOFF_MARGIN_MILLIS
        };
        if crash {
            sim.crash(victim);
            sim.restart(victim, SimDuration::from_secs(10));
        }
        sim.run_for(SimDuration::from_secs(120));

        let proxy = sim.node_ref::<DeviceProxyNode>(victim).expect("victim");
        let store = proxy.store();
        let names: Vec<String> = store.series_names().map(str::to_owned).collect();
        let contents: Vec<(String, Vec<(i64, u64)>)> = names
            .iter()
            .map(|n| {
                let pts = store
                    .range(n, i64::MIN, cutoff)
                    .into_iter()
                    .map(|(t, v)| (t, v.to_bits()))
                    .collect();
                (n.clone(), pts)
            })
            .collect();
        let stats = store.stats();
        (cutoff, contents, stats.wal_replayed, stats.segments)
    };

    let (oracle_cutoff, oracle, oracle_replayed, _) = run(false);
    let (cutoff, recovered, replayed, segments) = run(true);

    assert_eq!(cutoff, oracle_cutoff, "runs diverged before the crash");
    assert_eq!(oracle_replayed, 0, "the oracle never recovers");
    assert!(replayed > 0, "recovery replayed no WAL records");
    assert!(segments > 0, "sealed segments did not survive the crash");
    let points: usize = oracle.iter().map(|(_, pts)| pts.len()).sum();
    assert!(points > 0, "oracle holds no pre-crash points");
    assert_eq!(
        recovered, oracle,
        "recovered store is not byte-identical to the uncrashed oracle"
    );
}
