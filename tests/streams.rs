//! End-to-end tests of the aggregation tier: device measurements roll
//! up into retained district windows, and an aggregator crash in the
//! middle of a window loses no samples — rollup counts stay exactly
//! conserved against the device proxies' durable stores.

use std::collections::BTreeMap;

use dimmer::core::QuantityKind;
use dimmer::district::deploy::Deployment;
use dimmer::district::scenario::{AggregationSpec, Scenario, ScenarioConfig};
use dimmer::district::DEFAULT_EPOCH_MILLIS;
use dimmer::proxy::device_proxy::DeviceProxyNode;
use dimmer::pubsub::{PubSubClient, PubSubEvent, QoS, RollupTopic, PUBSUB_PORT};
use dimmer::simnet::telemetry::flight::reconstruct;
use dimmer::simnet::{Context, Node, Packet, SimConfig, SimDuration, Simulator, TimerTag};
use dimmer::streams::{AggregatorNode, Rollup};

/// A late subscriber to the district's rollup topics.
struct RollupMonitor {
    client: PubSubClient,
    rollups: Vec<Rollup>,
}

impl RollupMonitor {
    fn new(broker: dimmer::simnet::NodeId) -> Self {
        RollupMonitor {
            client: PubSubClient::new(broker, 100),
            rollups: Vec::new(),
        }
    }
}

impl Node for RollupMonitor {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.client.subscribe(
            ctx,
            RollupTopic::district_filter("d0").expect("valid"),
            QoS::AtMostOnce,
        );
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if pkt.port != PUBSUB_PORT {
            return;
        }
        if let Some(PubSubEvent::Message { payload, .. }) = self.client.accept(ctx, &pkt) {
            if let Some(rollup) = std::str::from_utf8(&payload)
                .ok()
                .and_then(|text| dimmer::core::json::from_str(text).ok())
                .and_then(|v| Rollup::from_value(&v).ok())
            {
                self.rollups.push(rollup);
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        self.client.on_timer(ctx, tag);
    }
}

fn aggregation_scenario(window_millis: i64, lateness_millis: i64, qos: QoS) -> Scenario {
    let mut config = ScenarioConfig::small()
        .with_aggregation(AggregationSpec::tumbling(window_millis).with_lateness(lateness_millis));
    config.publish_qos = qos;
    config.build()
}

/// A simulator seeded from `DIMMER_SEED` (default 0), so the CI seed
/// sweep exercises these scenarios under shifted network timing.
fn seeded_sim(base: u64) -> Simulator {
    let offset = std::env::var("DIMMER_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    Simulator::new(SimConfig {
        seed: base + offset,
        ..SimConfig::default()
    })
}

/// Expected per-window `(count, sum)` per quantity, rebuilt directly
/// from the device proxies' durable stores — the ground truth the
/// district rollups must conserve exactly.
fn expected_windows(
    sim: &Simulator,
    deployment: &Deployment,
    window_millis: i64,
    from: i64,
    to: i64,
) -> BTreeMap<(String, i64), (u64, f64)> {
    let mut expected: BTreeMap<(String, i64), (u64, f64)> = BTreeMap::new();
    for p in deployment.device_proxies() {
        let proxy = sim.node_ref::<DeviceProxyNode>(p).unwrap();
        let series: Vec<String> = proxy.store().series_names().map(str::to_owned).collect();
        for quantity in series {
            for (t, value) in proxy.store().range(&quantity, from, to) {
                let start = t.div_euclid(window_millis) * window_millis;
                let e = expected
                    .entry((quantity.clone(), start))
                    .or_insert((0, 0.0));
                e.0 += 1;
                e.1 += value;
            }
        }
    }
    expected
}

#[test]
fn rollups_flow_from_devices_to_retained_topics_and_store() {
    let scenario = aggregation_scenario(300_000, 10_000, QoS::AtMostOnce);
    let mut sim = seeded_sim(0x57A0);
    sim.telemetry().tracer.set_capacity(1 << 17);
    let deployment = Deployment::build(&mut sim, &scenario);
    let agg_node = deployment.districts[0].aggregator.expect("tier enabled");

    // Two full five-minute windows plus lateness and flush slack.
    sim.run_for(SimDuration::from_secs(700));

    let agg = sim.node_ref::<AggregatorNode>(agg_node).unwrap();
    assert!(agg.is_registered());
    let stats = agg.stats();
    assert!(stats.samples_in > 100, "stats: {stats:?}");
    assert_eq!(stats.decode_errors, 0);
    assert!(stats.rollups_published > 0);
    let ws = agg.window_stats();
    assert_eq!(ws.samples_in, ws.accepted + ws.late_dropped + ws.shed);
    assert_eq!(ws.late_dropped, 0, "in-order pipeline must not drop");
    assert_eq!(ws.shed, 0);

    // The store serves both closed windows, count-weighted.
    let rollups = agg.district_rollups(
        QuantityKind::Temperature,
        DEFAULT_EPOCH_MILLIS,
        DEFAULT_EPOCH_MILLIS + 600_000,
    );
    assert_eq!(rollups.len(), 2, "rollups: {rollups:?}");
    for r in &rollups {
        assert!(r.count > 0);
        assert!(r.min <= r.mean() && r.mean() <= r.max);
    }

    // Exactness: the district mean is the count-weighted mean of the
    // raw samples, not a mean of building means.
    let expected = expected_windows(
        &sim,
        &deployment,
        300_000,
        DEFAULT_EPOCH_MILLIS,
        DEFAULT_EPOCH_MILLIS + 600_000,
    );
    for r in &rollups {
        let (count, sum) = expected[&("temperature".to_owned(), r.window_start)];
        assert_eq!(r.count, count);
        assert!((r.sum - sum).abs() < 1e-9);
    }

    // A late subscriber sees the latest windows immediately: the
    // rollups are retained publications.
    let monitor = sim.add_node("rollup-monitor", RollupMonitor::new(deployment.broker));
    sim.run_for(SimDuration::from_secs(5));
    let m = sim.node_ref::<RollupMonitor>(monitor).unwrap();
    assert!(!m.rollups.is_empty(), "no retained rollups delivered");
    assert!(m.rollups.iter().all(|r| r.district == "d0" && r.count > 0));
    assert!(
        m.rollups.iter().any(|r| r.entity.is_none()),
        "district tier"
    );
    assert!(
        m.rollups.iter().any(|r| r.entity.is_some()),
        "building tier"
    );

    // Telemetry: counters incremented and the flight recorder ties
    // window closes back to the samples that fed them.
    let metrics = &sim.telemetry().metrics;
    assert!(metrics.counter("streams.samples_in") > 100);
    assert!(metrics.counter("streams.rollups_published") > 0);
    assert!(metrics.histogram("streams.window_samples").is_some());
    let paths = reconstruct(&sim.telemetry().tracer.events());
    assert!(
        paths
            .iter()
            .any(|p| p.visits(&["streams.ingest", "streams.window_close"])),
        "no sample trace reaches a window close"
    );
}

#[test]
fn aggregator_crash_mid_window_conserves_rollup_counts() {
    let window = 120_000i64;
    let scenario = aggregation_scenario(window, 90_000, QoS::AtLeastOnce);
    let mut sim = seeded_sim(0x57A1);
    sim.telemetry().tracer.set_capacity(1 << 17);
    let deployment = Deployment::build(&mut sim, &scenario);
    let agg_node = deployment.districts[0].aggregator.expect("tier enabled");

    sim.run_for(SimDuration::from_secs(240));

    // Fault 1: the aggregator dies mid-window and reboots 3 s later.
    // Its open panes are volatile; the raw tail in its store plus the
    // broker's QoS 1 redelivery (retries at +2/+4/+6 s) rebuild them.
    sim.crash(agg_node);
    sim.restart(agg_node, SimDuration::from_secs(3));
    sim.run_for(SimDuration::from_secs(120));

    // Fault 2: broker and aggregator both go down, overlapping. The
    // broker falls first so no QoS 1 delivery can die with retries
    // exhausted against a crashed subscriber; publishes during the
    // outage park in the device proxies' store-and-forward buffers.
    sim.crash(deployment.broker);
    sim.run_for(SimDuration::from_secs(8));
    sim.crash(agg_node);
    sim.restart(deployment.broker, SimDuration::from_secs(12));
    sim.restart(agg_node, SimDuration::from_secs(12));
    // Quiet period: replays drain, the watermark passes the outage.
    sim.run_for(SimDuration::from_secs(400));

    let agg = sim.node_ref::<AggregatorNode>(agg_node).unwrap();
    assert!(agg.is_registered(), "aggregator re-registered");
    let stats = agg.stats();
    assert!(stats.recovered > 0, "recovery replayed the raw tail");
    assert!(stats.duplicates > 0, "redelivery deduplicated: {stats:?}");
    let ws = agg.window_stats();
    assert_eq!(ws.late_dropped, 0, "lateness horizon covered the outage");
    assert_eq!(ws.shed, 0);

    // No device proxy shed store-and-forward samples.
    for p in deployment.device_proxies() {
        let proxy = sim.node_ref::<DeviceProxyNode>(p).unwrap();
        assert_eq!(proxy.stats().shed_capacity, 0, "{}", sim.node_name(p));
        assert_eq!(proxy.backlog_len(), 0, "{}", sim.node_name(p));
    }

    // Conservation: over every closed window, the district rollup
    // carries exactly the samples the device proxies durably ingested —
    // zero rollup loss across both crashes.
    let closed_to = agg.watermark().div_euclid(window) * window;
    assert!(
        closed_to >= DEFAULT_EPOCH_MILLIS + 5 * window,
        "run too short to close the crash windows"
    );
    let expected = expected_windows(&sim, &deployment, window, DEFAULT_EPOCH_MILLIS, closed_to);
    assert!(!expected.is_empty());
    let mut checked = 0u64;
    for quantity in ["temperature", "active_power", "illuminance", "humidity"] {
        let rollups = agg.district_rollups(
            QuantityKind::parse(quantity).unwrap(),
            DEFAULT_EPOCH_MILLIS,
            closed_to,
        );
        let windows: Vec<i64> = expected
            .keys()
            .filter(|(q, _)| q == quantity)
            .map(|&(_, start)| start)
            .collect();
        assert_eq!(
            rollups.iter().map(|r| r.window_start).collect::<Vec<_>>(),
            windows,
            "{quantity}: rollup windows missing or spurious"
        );
        for r in &rollups {
            let (count, sum) = expected[&(quantity.to_owned(), r.window_start)];
            assert_eq!(
                r.count, count,
                "{quantity} window {}: rollup lost samples",
                r.window_start
            );
            assert!((r.sum - sum).abs() < 1e-9, "{quantity} {}", r.window_start);
            checked += r.count;
        }
    }
    assert!(checked > 0, "conservation check covered no samples");

    // The flight recorder still ties post-crash closes to samples.
    let paths = reconstruct(&sim.telemetry().tracer.events());
    assert!(paths
        .iter()
        .any(|p| p.visits(&["streams.ingest", "streams.window_close"])));
}
