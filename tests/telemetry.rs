//! End-to-end telemetry: flight-recorder traces across the full stack,
//! and bounded-histogram accuracy against the exact [`Summary`].

use district::deploy::Deployment;
use district::scenario::ScenarioConfig;
use pubsub::{PubSubClient, PubSubEvent, QoS, TopicFilter, PUBSUB_PORT};
use simnet::rng::DeterministicRng;
use simnet::stats::Summary;
use simnet::telemetry::flight::reconstruct;
use simnet::telemetry::metrics::Histogram;
use simnet::{Context, Node, Packet, SimConfig, SimDuration, Simulator, TimerTag};

/// A monitor node that subscribes to everything and keeps the trace ids
/// of messages it receives.
struct Monitor {
    client: PubSubClient,
    traces: Vec<u64>,
}

impl Node for Monitor {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.client.subscribe(
            ctx,
            TopicFilter::new("district/#").expect("valid filter"),
            QoS::AtMostOnce,
        );
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if pkt.port == PUBSUB_PORT {
            if let Some(PubSubEvent::Message { trace, .. }) = self.client.accept(ctx, &pkt) {
                self.traces.push(trace);
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        self.client.on_timer(ctx, tag);
    }
}

#[test]
fn trace_follows_measurement_device_to_subscriber() {
    let mut sim = Simulator::new(SimConfig::default());
    let scenario = ScenarioConfig::small().build();
    let deployment = Deployment::build(&mut sim, &scenario);
    let monitor = sim.add_node(
        "monitor",
        Monitor {
            client: PubSubClient::new(deployment.broker, 100),
            traces: vec![],
        },
    );
    sim.run_for(SimDuration::from_secs(180));

    // The monitor saw traced messages, stamped at the device.
    let traces = &sim.node_ref::<Monitor>(monitor).expect("monitor").traces;
    assert!(!traces.is_empty(), "monitor received no messages");
    assert!(
        traces.iter().any(|&t| t != 0),
        "deliveries lost their trace ids"
    );

    // At least one measurement's full journey is reconstructable.
    let telemetry = sim.telemetry();
    let events = telemetry.tracer.events();
    let full_path = [
        "device.sample",
        "proxy.ingest",
        "broker.publish",
        "broker.deliver",
        "sub.receive",
    ];
    let paths = reconstruct(&events);
    let path = paths
        .iter()
        .find(|p| p.visits(&full_path))
        .expect("no complete device→proxy→broker→subscriber path");

    // Hops are stamped with node identity and non-negative per-hop
    // latency, in chronological order.
    assert!(path.hops.len() >= full_path.len());
    assert!(path.total_ns > 0, "a network journey takes sim time");
    assert_eq!(path.hops[0].latency_ns, 0, "first hop has no predecessor");
    for pair in path.hops.windows(2) {
        assert!(pair[1].time_ns >= pair[0].time_ns);
        assert_eq!(pair[1].latency_ns, pair[1].time_ns - pair[0].time_ns);
    }
    for hop in &path.hops {
        assert!(!hop.node_name.is_empty(), "hops carry node names");
    }

    // The layers all reported into the metrics registry.
    let metrics = &telemetry.metrics;
    assert!(metrics.counter("device.samples") > 0);
    assert!(metrics.counter("proxy.samples_ingested") > 0);
    assert!(metrics.counter("tskv.append") > 0);
    assert!(metrics.counter("pubsub.publish") > 0);
    assert!(metrics.counter("pubsub.deliver") > 0);
    assert!(metrics.counter("master.registrations") > 0);
    assert!(metrics.counter("net.packets_sent") > 0);
    let delay = metrics.histogram("net.link_delay_ns").expect("recorded");
    assert!(delay.count > 0 && delay.p50 > 0.0);
}

#[test]
fn histogram_quantiles_track_exact_summary() {
    let mut rng = DeterministicRng::seed_from(0x7E1E_0001);
    let mut hist = Histogram::new();
    let mut exact = Summary::new("exact");
    for _ in 0..20_000 {
        // Log-uniform over ~5 decades: stresses every octave.
        let v = 10f64.powf(rng.next_f64() * 5.0);
        hist.record(v);
        exact.record(v);
    }
    for (q, p) in [(0.5, 50.0), (0.9, 90.0), (0.99, 99.0)] {
        let approx = hist.quantile(q);
        let truth = exact.percentile(p);
        let rel = (approx - truth).abs() / truth;
        assert!(
            rel <= 0.07,
            "q{q}: histogram {approx} vs exact {truth} (rel err {rel:.4})"
        );
    }
    // Endpoints are exact, not bucket representatives.
    assert_eq!(hist.quantile(0.0), exact.percentile(0.0));
    assert_eq!(hist.quantile(1.0), exact.percentile(100.0));
    assert_eq!(hist.count(), exact.count() as u64);
}
