//! Fig. 1(a) end-to-end: the whole infrastructure assembled and queried.

use dimmer::core::codec::DataFormat;
use dimmer::core::Value;
use dimmer::district::client::{ClientConfig, ClientNode};
use dimmer::district::deploy::Deployment;
use dimmer::district::scenario::ScenarioConfig;
use dimmer::master::MasterNode;
use dimmer::pubsub::BrokerNode;
use dimmer::simnet::{SimConfig, SimDuration, Simulator};

fn multi_district() -> (Simulator, Deployment, dimmer::district::scenario::Scenario) {
    let mut config = ScenarioConfig::small();
    config.districts = 2;
    config.buildings_per_district = 3;
    config.devices_per_building = 2;
    let scenario = config.build();
    let mut sim = Simulator::new(SimConfig::default());
    let deployment = Deployment::build(&mut sim, &scenario);
    sim.run_for(SimDuration::from_secs(600));
    (sim, deployment, scenario)
}

#[test]
fn two_districts_register_and_resolve_independently() {
    let (mut sim, deployment, scenario) = multi_district();
    let master = sim.node_ref::<MasterNode>(deployment.master).unwrap();
    assert_eq!(master.ontology().district_count(), 2);
    assert_eq!(master.ontology().device_count(), 12);
    // (gis + archive + 3 bim + 1 sim + 6 device proxies) * 2 districts
    assert_eq!(master.proxy_count(), 24);

    // Query each district; each sees only its own entities.
    let mut client_ids = Vec::new();
    for d in &scenario.districts {
        client_ids.push(ClientNode::spawn(
            &mut sim,
            &deployment,
            d.district.clone(),
            d.bbox(),
        ));
    }
    sim.run_for(SimDuration::from_secs(30));
    for (client, district) in client_ids.iter().zip(&scenario.districts) {
        let snapshot = sim
            .node_ref::<ClientNode>(*client)
            .unwrap()
            .latest_snapshot()
            .unwrap()
            .clone();
        assert_eq!(snapshot.errors, 0);
        assert_eq!(
            snapshot.resolution.entities.len(),
            4,
            "3 buildings + 1 network"
        );
        for entity in &snapshot.resolution.entities {
            assert!(
                entity.id().starts_with(district.district.as_str()),
                "{} leaked into {}",
                entity.id(),
                district.district
            );
        }
    }
}

#[test]
fn redirect_keeps_bulk_data_off_the_master() {
    let (mut sim, deployment, scenario) = multi_district();
    sim.reset_metrics();
    let client = ClientNode::spawn(
        &mut sim,
        &deployment,
        scenario.districts[0].district.clone(),
        scenario.districts[0].bbox(),
    );
    sim.run_for(SimDuration::from_secs(30));
    let snapshot = sim
        .node_ref::<ClientNode>(client)
        .unwrap()
        .latest_snapshot()
        .unwrap()
        .clone();
    assert!(snapshot.measurements.len() > 20);

    // The defining property of the redirect design: the client receives
    // far more bytes than the master ever sent it — the bulk flows
    // directly from the proxies. Heartbeat noise is excluded by
    // comparing only what each party exchanged with the client.
    let client_metrics = sim.node_metrics(client);
    let master_metrics = sim.node_metrics(deployment.master);
    assert!(
        client_metrics.bytes_received > 4 * master_metrics.bytes_sent / 2,
        "client got {} bytes, master only sent {} total",
        client_metrics.bytes_received,
        master_metrics.bytes_sent
    );
}

#[test]
fn middleware_carries_live_publications() {
    let (sim, deployment, _scenario) = multi_district();
    let broker = sim.node_ref::<BrokerNode>(deployment.broker).unwrap();
    let stats = broker.stats();
    // 12 devices at 1/min for 10 min ≈ 120 publications.
    assert!(stats.published > 80, "{stats:?}");
    assert!(stats.retained > 10, "{stats:?}");
}

#[test]
fn both_open_formats_integrate_identically() {
    let (mut sim, deployment, scenario) = multi_district();
    let district = scenario.districts[0].district.clone();
    let bbox = scenario.districts[0].bbox();
    let epoch = scenario.config.epoch_offset_millis;
    // Fixed window so both clients fetch identical data.
    let window = Some((epoch, epoch + 300_000));
    let mut clients = Vec::new();
    for format in DataFormat::all() {
        clients.push(sim.add_node(
            format!("client-{format}"),
            ClientNode::new(ClientConfig {
                master: deployment.master,
                district: district.clone(),
                bbox,
                data_window_millis: window,
                period: None,
                format,
            }),
        ));
    }
    sim.run_for(SimDuration::from_secs(30));
    let snapshots: Vec<_> = clients
        .iter()
        .map(|&c| {
            sim.node_ref::<ClientNode>(c)
                .unwrap()
                .latest_snapshot()
                .unwrap()
                .clone()
        })
        .collect();
    assert_eq!(snapshots[0].errors, 0);
    assert_eq!(snapshots[1].errors, 0);
    // The translated content is format-independent (fetch completion
    // order differs, so compare as sorted sets).
    let sorted = |s: &dimmer::district::client::AreaSnapshot| {
        let mut items: Vec<String> = s.measurements.iter().map(|m| m.to_string()).collect();
        items.sort();
        items
    };
    assert_eq!(sorted(&snapshots[0]), sorted(&snapshots[1]));
    assert_eq!(snapshots[0].entities, snapshots[1].entities);
    // But XML costs more bytes on the wire (experiment E4's claim).
    let json_bytes = sim.node_metrics(clients[0]).bytes_received;
    let xml_bytes = sim.node_metrics(clients[1]).bytes_received;
    assert!(
        xml_bytes > json_bytes,
        "xml {xml_bytes} must exceed json {json_bytes}"
    );
}

#[test]
fn ontology_snapshot_survives_wire_round_trip() {
    let (mut sim, deployment, _scenario) = multi_district();
    // Fetch /ontology through the WS layer and rebuild the forest.
    use dimmer::proxy::webservice::{WsClient, WsClientEvent, WsRequest, WsResponse};
    use dimmer::simnet::{Context, Node, Packet, TimerTag};
    struct Probe {
        client: WsClient,
        master: dimmer::simnet::NodeId,
        response: Option<WsResponse>,
    }
    impl Node for Probe {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let request = WsRequest::get("/ontology");
            self.client.request(ctx, self.master, &request);
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
            if let Some(WsClientEvent::Response { response, .. }) = self.client.accept(&pkt) {
                self.response = Some(response);
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
            self.client.on_timer(ctx, tag);
        }
    }
    let probe = sim.add_node(
        "ontology-probe",
        Probe {
            client: WsClient::new(1000),
            master: deployment.master,
            response: None,
        },
    );
    sim.run_for(SimDuration::from_secs(10));
    let response = sim
        .node_ref::<Probe>(probe)
        .unwrap()
        .response
        .clone()
        .expect("ontology fetched");
    let rebuilt = dimmer::ontology::Ontology::from_value(&response.body).unwrap();
    let live = sim.node_ref::<MasterNode>(deployment.master).unwrap();
    assert_eq!(rebuilt.district_count(), live.ontology().district_count());
    assert_eq!(rebuilt.device_count(), live.ontology().device_count());
    assert_eq!(rebuilt.entity_count(), live.ontology().entity_count());
}

#[test]
fn triples_export_covers_the_deployment() {
    let (sim, deployment, scenario) = multi_district();
    let master = sim.node_ref::<MasterNode>(deployment.master).unwrap();
    let triples = dimmer::ontology::triple::export(master.ontology());
    let devices = dimmer::ontology::triple::query(
        &triples,
        &dimmer::ontology::triple::TriplePattern::any()
            .with_predicate("rdf:type")
            .with_object("dimmer:Device"),
    );
    assert_eq!(devices.len(), scenario.device_count());
    let districts = dimmer::ontology::triple::query(
        &triples,
        &dimmer::ontology::triple::TriplePattern::any()
            .with_predicate("rdf:type")
            .with_object("dimmer:District"),
    );
    assert_eq!(districts.len(), 2);
}

#[test]
fn deterministic_replay_of_the_full_stack() {
    let run = || {
        let scenario = ScenarioConfig::small().build();
        let mut sim = Simulator::new(SimConfig::default());
        let deployment = Deployment::build(&mut sim, &scenario);
        sim.run_for(SimDuration::from_secs(300));
        let client = ClientNode::spawn(
            &mut sim,
            &deployment,
            scenario.districts[0].district.clone(),
            scenario.districts[0].bbox(),
        );
        sim.run_for(SimDuration::from_secs(30));
        let snapshot = sim
            .node_ref::<ClientNode>(client)
            .unwrap()
            .latest_snapshot()
            .unwrap()
            .clone();
        (
            snapshot.measurements.len(),
            snapshot.latency().as_nanos(),
            sim.metrics().packets_delivered,
            dimmer::core::json::to_string(&Value::object([(
                "m",
                snapshot.measurements.to_value(),
            )])),
        )
    };
    assert_eq!(run(), run(), "same seed, same everything");
}
