//! Fig. 1(b) per protocol: every device family flows through its
//! Device-proxy's three layers into the integrated view.

use dimmer::district::client::ClientNode;
use dimmer::district::deploy::Deployment;
use dimmer::district::scenario::{ProtocolMix, ScenarioConfig};
use dimmer::protocols::ProtocolKind;
use dimmer::proxy::device_proxy::DeviceProxyNode;
use dimmer::simnet::{SimConfig, SimDuration, Simulator};

fn single_protocol_run(protocol: ProtocolKind) -> (Simulator, Deployment, usize) {
    let mut config = ScenarioConfig::small();
    config.protocol_mix = ProtocolMix::only(protocol);
    config.buildings_per_district = 2;
    config.devices_per_building = 2;
    let scenario = config.build();
    let devices = scenario.device_count();
    let mut sim = Simulator::new(SimConfig::default());
    let deployment = Deployment::build(&mut sim, &scenario);
    sim.run_for(SimDuration::from_secs(600));

    // End-user query on top.
    let client = ClientNode::spawn(
        &mut sim,
        &deployment,
        scenario.districts[0].district.clone(),
        scenario.districts[0].bbox(),
    );
    sim.run_for(SimDuration::from_secs(30));
    let snapshot = sim
        .node_ref::<ClientNode>(client)
        .unwrap()
        .latest_snapshot()
        .unwrap()
        .clone();
    assert_eq!(snapshot.errors, 0, "{protocol}: {snapshot:?}");
    assert!(
        !snapshot.measurements.is_empty(),
        "{protocol}: no data reached the client"
    );
    (sim, deployment, devices)
}

fn assert_all_proxies_ingested(
    sim: &Simulator,
    deployment: &Deployment,
    devices: usize,
    protocol: ProtocolKind,
) {
    let mut proxies_with_data = 0;
    for p in deployment.device_proxies() {
        let proxy = sim.node_ref::<DeviceProxyNode>(p).unwrap();
        assert_eq!(
            proxy.stats().decode_errors,
            0,
            "{protocol}: decode errors at {}",
            sim.node_name(p)
        );
        if proxy.stats().samples_ingested > 0 {
            proxies_with_data += 1;
        }
    }
    assert_eq!(
        proxies_with_data, devices,
        "{protocol}: every proxy must ingest"
    );
}

#[test]
fn ieee802154_end_to_end() {
    let (sim, deployment, devices) = single_protocol_run(ProtocolKind::Ieee802154);
    assert_all_proxies_ingested(&sim, &deployment, devices, ProtocolKind::Ieee802154);
}

#[test]
fn zigbee_end_to_end() {
    let (sim, deployment, devices) = single_protocol_run(ProtocolKind::Zigbee);
    assert_all_proxies_ingested(&sim, &deployment, devices, ProtocolKind::Zigbee);
}

#[test]
fn enocean_end_to_end() {
    let (sim, deployment, devices) = single_protocol_run(ProtocolKind::EnOcean);
    assert_all_proxies_ingested(&sim, &deployment, devices, ProtocolKind::EnOcean);
}

#[test]
fn opcua_end_to_end() {
    // OPC UA is the polled (wired legacy) path: the proxy pulls.
    let (sim, deployment, devices) = single_protocol_run(ProtocolKind::OpcUa);
    assert_all_proxies_ingested(&sim, &deployment, devices, ProtocolKind::OpcUa);
}

#[test]
fn coap_end_to_end() {
    // CoAP is the second polled path (the IoT direction of §III).
    let (sim, deployment, devices) = single_protocol_run(ProtocolKind::Coap);
    assert_all_proxies_ingested(&sim, &deployment, devices, ProtocolKind::Coap);
}

#[test]
fn local_store_supports_downsampled_retrieval() {
    use dimmer::core::{MeasurementBatch, Value};
    use dimmer::proxy::webservice::{WsClient, WsClientEvent, WsRequest, WsResponse};
    use dimmer::simnet::{Context, Node, Packet, TimerTag};

    let mut config = ScenarioConfig::small();
    config.protocol_mix = ProtocolMix::only(ProtocolKind::Zigbee);
    config.buildings_per_district = 1;
    config.devices_per_building = 1;
    config.sample_interval = SimDuration::from_secs(10);
    let scenario = config.build();
    let epoch = scenario.config.epoch_offset_millis;
    let quantity = scenario.districts[0].buildings[0].devices[0].quantity;
    let mut sim = Simulator::new(SimConfig::default());
    let deployment = Deployment::build(&mut sim, &scenario);
    sim.run_for(SimDuration::from_secs(3600));

    struct Probe {
        client: WsClient,
        target: dimmer::simnet::NodeId,
        request: WsRequest,
        response: Option<WsResponse>,
    }
    impl Node for Probe {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let request = self.request.clone();
            self.client.request(ctx, self.target, &request);
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
            if let Some(WsClientEvent::Response { response, .. }) = self.client.accept(&pkt) {
                self.response = Some(response);
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
            self.client.on_timer(ctx, tag);
        }
    }

    let proxy = deployment.districts[0].device_proxies[0];
    // 1 hour of 10 s samples, downsampled to 10-minute means: 6 buckets.
    let probe = sim.add_node(
        "probe",
        Probe {
            client: WsClient::new(1000),
            target: proxy,
            request: WsRequest::get("/data")
                .with_query("quantity", quantity.as_str())
                .with_query("from", epoch.to_string())
                .with_query("to", (epoch + 3_600_000).to_string())
                .with_query("bucket", "600000")
                .with_query("agg", "mean"),
            response: None,
        },
    );
    sim.run_for(SimDuration::from_secs(10));
    let response = sim
        .node_ref::<Probe>(probe)
        .unwrap()
        .response
        .clone()
        .expect("proxy answered");
    assert!(response.is_ok(), "{response:?}");
    let batch = MeasurementBatch::from_value(&response.body).unwrap();
    assert_eq!(batch.len(), 6, "six 10-minute buckets in one hour");

    // Raw retrieval of the same window yields ~360 points.
    let raw_probe = sim.add_node(
        "raw-probe",
        Probe {
            client: WsClient::new(1000),
            target: proxy,
            request: WsRequest::get("/data")
                .with_query("quantity", quantity.as_str())
                .with_query("from", epoch.to_string())
                .with_query("to", (epoch + 3_600_000).to_string()),
            response: None,
        },
    );
    sim.run_for(SimDuration::from_secs(10));
    let raw = sim
        .node_ref::<Probe>(raw_probe)
        .unwrap()
        .response
        .clone()
        .expect("proxy answered");
    let raw_batch = MeasurementBatch::from_value(&raw.body).unwrap();
    assert!(
        (350..=361).contains(&raw_batch.len()),
        "raw points: {}",
        raw_batch.len()
    );

    // Invalid parameters surface as 400s.
    let bad = sim.add_node(
        "bad-probe",
        Probe {
            client: WsClient::new(1000),
            target: proxy,
            request: WsRequest::get("/data")
                .with_query("quantity", quantity.as_str())
                .with_query("bucket", "-5"),
            response: None,
        },
    );
    sim.run_for(SimDuration::from_secs(10));
    let bad_response = sim
        .node_ref::<Probe>(bad)
        .unwrap()
        .response
        .clone()
        .unwrap();
    assert_eq!(bad_response.status, 400);
    assert!(bad_response
        .body
        .get("error")
        .and_then(Value::as_str)
        .is_some());
}
