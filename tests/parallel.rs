//! Differential determinism tests for the sharded parallel runner: the
//! same seeded city, deployed through `Deployment::build_parallel` on a
//! 4-shard `ParallelSimulator`, must produce bit-identical results at
//! `--threads 1` and `--threads N` — delivery streams `(time, seq)`
//! equal, per-broker `BridgeStats` ledgers equal, flight-recorder
//! digests equal — including with a broker shard crashing mid-run.
//!
//! `DIMMER_THREADS` picks the parallel thread count (default 4); the CI
//! thread matrix runs this suite at 1 and 4. `DIMMER_SEED` shifts the
//! seed like every other seeded suite.

use dimmer::district::deploy::Deployment;
use dimmer::district::scenario::{FederationSpec, Scenario, ScenarioConfig};
use dimmer::master::MasterNode;
use dimmer::pubsub::{BridgeStats, BrokerNode, PubSubClient, PubSubEvent, QoS, TopicFilter};
use dimmer::simnet::chaos::{ChaosRunner, Fault, FaultPlan};
use dimmer::simnet::{
    Context, Node, Packet, ParallelConfig, ParallelSimulator, SimDuration, SimTime, TimerTag,
};

const SHARDS: usize = 4;

fn env_threads() -> usize {
    std::env::var("DIMMER_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(4)
        .max(1)
}

fn seed(base: u64) -> u64 {
    let offset = std::env::var("DIMMER_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    base + offset
}

fn city() -> Scenario {
    let mut config = ScenarioConfig::small();
    config.districts = SHARDS;
    config.buildings_per_district = 2;
    config.devices_per_building = 2;
    config.sample_interval = SimDuration::from_secs(5);
    config.publish_qos = QoS::AtLeastOnce;
    config.federation = Some(FederationSpec::sharded(SHARDS));
    config.build()
}

/// Subscribes `district/#` on broker shard 0 and records every delivery
/// as `(arrival_ns, topic, payload_len)` in arrival order — messages
/// from the other shards reach it through the federation bridge, so the
/// record doubles as a cross-shard delivery stream.
struct StreamRecorder {
    client: PubSubClient,
    stream: Vec<(u64, String, usize)>,
}

impl Node for StreamRecorder {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.client.subscribe(
            ctx,
            TopicFilter::new("district/#").expect("valid"),
            QoS::AtLeastOnce,
        );
        self.client.start_keepalive(ctx, SimDuration::from_secs(1));
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if let Some(PubSubEvent::Message { topic, payload, .. }) = self.client.accept(ctx, &pkt) {
            self.stream.push((
                ctx.now().as_nanos(),
                topic.as_str().to_string(),
                payload.len(),
            ));
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        self.client.on_timer(ctx, tag);
    }
}

/// Everything a run leaves behind that must be thread-count invariant.
#[derive(PartialEq, Debug)]
struct Fingerprint {
    stream: Vec<(u64, String, usize)>,
    bridges: Vec<BridgeStats>,
    device_count: usize,
    digest: u64,
    now_ns: u64,
}

fn run_city(base_seed: u64, threads: usize, crash_broker: bool) -> Fingerprint {
    let scenario = city();
    let mut sim = ParallelSimulator::new(ParallelConfig {
        seed: seed(base_seed),
        shards: SHARDS,
        threads,
        ..ParallelConfig::default()
    });
    let deployment = Deployment::build_parallel(&mut sim, &scenario);
    let recorder = sim.add_node_on(
        0,
        "stream-recorder",
        StreamRecorder {
            client: PubSubClient::new(deployment.brokers[0], 100),
            stream: Vec::new(),
        },
    );

    let mut plan = FaultPlan::new();
    if crash_broker {
        plan = plan.at(
            SimTime::ZERO + SimDuration::from_secs(40),
            Fault::CrashFor {
                node: deployment.brokers[1],
                down: SimDuration::from_secs(15),
            },
        );
    }
    let mut chaos = ChaosRunner::new(plan);
    chaos.run_for(&mut sim, SimDuration::from_secs(120));

    assert!(
        sim.stats().cross_packets > 0,
        "a federated 4-shard city must generate cross-shard traffic"
    );
    let stream = sim
        .node_ref::<StreamRecorder>(recorder)
        .expect("recorder")
        .stream
        .clone();
    assert!(
        !stream.is_empty(),
        "recorder saw no deliveries from the federated city"
    );
    let bridges: Vec<BridgeStats> = deployment
        .brokers
        .iter()
        .map(|&b| {
            sim.node_ref::<BrokerNode>(b)
                .expect("broker")
                .bridge_stats()
        })
        .collect();
    if crash_broker {
        assert!(
            sim.is_up(deployment.brokers[1]),
            "crashed broker shard should be back up after CrashFor elapses"
        );
    }
    let device_count = sim
        .node_ref::<MasterNode>(deployment.master)
        .expect("master")
        .ontology()
        .device_count();
    assert!(device_count > 0, "no devices registered with the master");
    Fingerprint {
        stream,
        bridges,
        device_count,
        digest: sim.flight_digest(),
        now_ns: sim.now().as_nanos(),
    }
}

#[test]
fn sharded_deployment_identical_across_thread_counts() {
    let single = run_city(0x9A11, 1, false);
    let multi = run_city(0x9A11, env_threads(), false);
    assert_eq!(single, multi);
}

#[test]
fn broker_crash_mid_run_stays_deterministic() {
    let single = run_city(0xC4A5, 1, true);
    let multi = run_city(0xC4A5, env_threads(), true);
    assert_eq!(single, multi);
}
