//! Remote actuation end-to-end: "allow the remote control of actuator
//! devices" — discovered through the ontology, commanded through the
//! Device-proxy's Web Service, delivered as a native protocol frame.

use dimmer::core::Value;
use dimmer::district::deploy::Deployment;
use dimmer::district::scenario::{ProtocolMix, ScenarioConfig};
use dimmer::ontology::AreaResolution;
use dimmer::protocols::ProtocolKind;
use dimmer::proxy::devices::UplinkDeviceNode;
use dimmer::proxy::uri_node;
use dimmer::proxy::webservice::{WsClient, WsClientEvent, WsRequest, WsResponse};
use dimmer::simnet::{Context, Node, NodeId, Packet, SimConfig, SimDuration, Simulator, TimerTag};

/// An operator application: resolves the area, then actuates every
/// switchable device it finds.
struct Operator {
    client: WsClient,
    master: NodeId,
    district: String,
    bbox: String,
    resolution: Option<AreaResolution>,
    actuation_results: Vec<WsResponse>,
    phase_resolve: Option<u64>,
}

impl Node for Operator {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let request = WsRequest::get(format!("/district/{}/area", self.district))
            .with_query("bbox", self.bbox.clone());
        self.phase_resolve = Some(self.client.request(ctx, self.master, &request));
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if let Some(WsClientEvent::Response { id, response }) = self.client.accept(&pkt) {
            if Some(id) == self.phase_resolve {
                let resolution =
                    AreaResolution::from_value(&response.body).expect("valid resolution");
                for device in &resolution.devices {
                    // Switch-state devices are the actuatable ones here.
                    if device.quantity() == dimmer::core::QuantityKind::SwitchState {
                        if let Some(node) = uri_node(device.proxy()) {
                            let request = WsRequest::post(
                                "/actuate",
                                Value::object([("value", Value::from(1.0))]),
                            );
                            self.client.request(ctx, node, &request);
                        }
                    }
                }
                self.resolution = Some(resolution);
            } else {
                self.actuation_results.push(response);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        self.client.on_timer(ctx, tag);
    }
}

#[test]
fn operator_actuates_discovered_switches() {
    // ZigBee-only district: every switch-state device accepts On/Off.
    let mut config = ScenarioConfig::small()
        .with_buildings(4)
        .with_devices_per_building(4)
        .with_seed(0xACDC);
    config.protocol_mix = ProtocolMix::only(ProtocolKind::Zigbee);
    let scenario = config.build();
    let switch_devices: usize = scenario.districts[0]
        .buildings
        .iter()
        .flat_map(|b| &b.devices)
        .filter(|d| d.quantity == dimmer::core::QuantityKind::SwitchState)
        .count();
    assert!(switch_devices > 0, "seed must generate some switches");

    let mut sim = Simulator::new(SimConfig::default());
    let deployment = Deployment::build(&mut sim, &scenario);
    sim.run_for(SimDuration::from_secs(120));

    let operator = sim.add_node(
        "operator",
        Operator {
            client: WsClient::new(1000),
            master: deployment.master,
            district: scenario.districts[0].district.to_string(),
            bbox: scenario.districts[0].bbox().to_query(),
            resolution: None,
            actuation_results: vec![],
            phase_resolve: None,
        },
    );
    sim.run_for(SimDuration::from_secs(30));

    let op = sim.node_ref::<Operator>(operator).unwrap();
    assert!(op.resolution.is_some());
    assert_eq!(op.actuation_results.len(), switch_devices);
    assert!(
        op.actuation_results.iter().all(WsResponse::is_ok),
        "{:?}",
        op.actuation_results
    );

    // Every targeted device physically received a downlink frame that
    // decodes as a ZigBee On/Off command.
    let mut actuated = 0;
    for &device_node in &deployment.districts[0].devices {
        let device = sim.node_ref::<UplinkDeviceNode>(device_node).unwrap();
        for frame in &device.actuations {
            let decoded =
                dimmer::protocols::zigbee::ZigbeeFrame::decode(frame).expect("valid downlink");
            assert_eq!(
                decoded.cluster,
                dimmer::protocols::zigbee::ClusterId::ON_OFF
            );
            assert_eq!(
                decoded.attributes[0].value,
                dimmer::protocols::zigbee::ZclValue::Bool(true)
            );
            actuated += 1;
        }
    }
    assert_eq!(actuated, switch_devices);
}
