//! Ops-plane integration: scraping `/metrics` and `/health` over the
//! Web-Service wire, and the master's merged `/fleet/health` view —
//! including a crashed proxy showing up as down.

use dimmer_core::Value;
use district::deploy::Deployment;
use district::scenario::ScenarioConfig;
use master::MasterNode;
use proxy::webservice::{WsClient, WsClientEvent, WsRequest};
use simnet::{Context, Node, NodeId, Packet, SimConfig, SimDuration, Simulator, TimerTag};

const SCRAPE_EVERY: SimDuration = SimDuration::from_secs(5);

/// Periodically GETs one path from one server, keeping every successful
/// response body in arrival order.
struct Scraper {
    client: WsClient,
    server: NodeId,
    path: &'static str,
    interval: SimDuration,
    bodies: Vec<Value>,
}

impl Scraper {
    fn new(server: NodeId, path: &'static str, interval: SimDuration) -> Self {
        Scraper {
            client: WsClient::new(1_000_000),
            server,
            path,
            interval,
            bodies: Vec::new(),
        }
    }
}

impl Node for Scraper {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.interval, TimerTag(1));
    }
    fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
        if let Some(WsClientEvent::Response { response, .. }) = self.client.accept(&pkt) {
            if response.is_ok() {
                self.bodies.push(response.body);
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        if tag == TimerTag(1) {
            self.client
                .request(ctx, self.server, &WsRequest::get(self.path));
            ctx.set_timer(self.interval, TimerTag(1));
        } else {
            self.client.on_timer(ctx, tag);
        }
    }
}

fn fleet_node<'a>(body: &'a Value, name: &str) -> Option<&'a Value> {
    body.get("nodes")?
        .as_array()?
        .iter()
        .find(|n| n.get("name").and_then(Value::as_str) == Some(name))
}

#[test]
fn metrics_and_health_scrape_round_trip() {
    let mut sim = Simulator::new(SimConfig::default());
    let scenario = ScenarioConfig::small().build();
    let deployment = Deployment::build(&mut sim, &scenario);
    let device_proxy = deployment.districts[0].device_proxies[0];

    let proxy_metrics = sim.add_node(
        "scrape-proxy-metrics",
        Scraper::new(device_proxy, "/metrics", SCRAPE_EVERY),
    );
    let proxy_health = sim.add_node(
        "scrape-proxy-health",
        Scraper::new(device_proxy, "/health", SCRAPE_EVERY),
    );
    let master_metrics = sim.add_node(
        "scrape-master-metrics",
        Scraper::new(deployment.master, "/metrics", SCRAPE_EVERY),
    );
    sim.run_for(SimDuration::from_secs(60));

    // The proxy's exposition is Prometheus text carrying middleware
    // counters that only exist because traffic actually flowed.
    let bodies = &sim.node_ref::<Scraper>(proxy_metrics).expect("node").bodies;
    assert!(!bodies.is_empty(), "no /metrics scrape succeeded");
    let text = bodies.last().unwrap().as_str().expect("text exposition");
    assert!(
        text.contains("# TYPE"),
        "not exposition format: {text:.100}"
    );
    assert!(
        text.contains("pubsub_publish"),
        "missing middleware counter"
    );

    // Exposition is deterministic: rendering twice with the sim paused
    // is byte-stable, and each section (counters, gauges) within it is
    // name-sorted.
    assert_eq!(
        sim.telemetry().exposition(),
        sim.telemetry().exposition(),
        "exposition not byte-stable"
    );
    let counter_names: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("# TYPE") && l.ends_with("counter"))
        .filter_map(|l| l.split_whitespace().nth(2))
        .collect();
    let mut sorted = counter_names.clone();
    sorted.sort_unstable();
    assert_eq!(counter_names, sorted, "counter families not name-sorted");

    // The proxy self-reports healthy.
    let health = sim.node_ref::<Scraper>(proxy_health).expect("node");
    let body = health.bodies.last().expect("no /health scrape succeeded");
    assert_eq!(body.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(body.get("kind").and_then(Value::as_str), Some("device"));
    assert_eq!(body.get("registered").and_then(Value::as_bool), Some(true));

    // The master serves its own exposition from the same telemetry.
    let m = sim.node_ref::<Scraper>(master_metrics).expect("node");
    let mtext = m.bodies.last().expect("master scrape").as_str().unwrap();
    assert!(mtext.contains("pubsub_publish"));
}

#[test]
fn fleet_health_marks_crashed_proxy_down() {
    let mut sim = Simulator::new(SimConfig::default());
    let scenario = ScenarioConfig::small().build();
    let deployment = Deployment::build(&mut sim, &scenario);
    {
        let master = sim
            .node_mut::<MasterNode>(deployment.master)
            .expect("master");
        master.enable_fleet_scrape(SCRAPE_EVERY);
        master.track_broker("b0", deployment.broker);
    }
    let fleet = sim.add_node(
        "scrape-fleet",
        Scraper::new(
            deployment.master,
            "/fleet/health",
            SimDuration::from_secs(7),
        ),
    );
    let victim = deployment.districts[0].device_proxies[0];
    let victim_health = sim.add_node(
        "scrape-victim-health",
        Scraper::new(victim, "/health", SCRAPE_EVERY),
    );
    sim.run_for(SimDuration::from_secs(60));

    // Everything that registered is up, broker included.
    let body = sim
        .node_ref::<Scraper>(fleet)
        .expect("node")
        .bodies
        .last()
        .expect("no fleet scrape succeeded")
        .clone();
    assert_eq!(body.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(body.get("down").and_then(Value::as_i64), Some(0));
    assert!(body.get("up").and_then(Value::as_i64).unwrap_or(0) > 1);
    let broker = fleet_node(&body, "b0").expect("broker record");
    assert_eq!(broker.get("up").and_then(Value::as_bool), Some(true));
    assert_eq!(broker.get("kind").and_then(Value::as_str), Some("broker"));

    // Crash one device proxy; within two scrape rounds the fleet view
    // must show it down and the overall status degrade. Its fleet
    // record is keyed by its proxy id, self-reported at /health.
    let victim_name = sim
        .node_ref::<Scraper>(victim_health)
        .expect("node")
        .bodies
        .last()
        .expect("victim /health scrape")
        .get("proxy")
        .and_then(Value::as_str)
        .expect("proxy id in health body")
        .to_string();
    let before = fleet_node(&body, &victim_name).expect("victim in fleet view");
    assert_eq!(before.get("up").and_then(Value::as_bool), Some(true));
    sim.crash(victim);
    sim.run_for(SimDuration::from_secs(30));

    let after = sim
        .node_ref::<Scraper>(fleet)
        .expect("node")
        .bodies
        .last()
        .expect("fleet scrape after crash")
        .clone();
    assert_eq!(
        after.get("status").and_then(Value::as_str),
        Some("degraded")
    );
    assert!(after.get("down").and_then(Value::as_i64).unwrap_or(0) >= 1);
    let dead = fleet_node(&after, &victim_name).expect("victim still listed");
    assert_eq!(dead.get("up").and_then(Value::as_bool), Some(false));
    let broker_after = fleet_node(&after, "b0").expect("broker record");
    assert_eq!(broker_after.get("up").and_then(Value::as_bool), Some(true));

    // The scrape sweep also feeds the ops gauges.
    let snapshot = sim.telemetry().metrics.snapshot();
    assert!(snapshot
        .gauges
        .iter()
        .any(|(n, v)| n == &format!("ops.up.{victim_name}") && *v == 0.0));
    assert!(snapshot
        .gauges
        .iter()
        .any(|(n, _)| n.starts_with("ops.scrape_age_ns.")));
    assert!(snapshot.counters.iter().any(|(n, _)| n == "ops.scrapes"));
}
