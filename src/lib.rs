//! # dimmer — a distributed framework for integration of district energy data from heterogeneous devices
//!
//! A full reproduction of Brundu et al., *“A new distributed framework
//! for integration of district energy data from heterogeneous devices”*
//! (DATE 2015): the master node + ontology, Device-proxies for IEEE
//! 802.15.4 / ZigBee / EnOcean / OPC UA, Database-proxies for BIM / SIM /
//! GIS / measurement archives, the publish/subscribe middleware, the
//! JSON/XML common data format — all running on a deterministic
//! discrete-event network simulation.
//!
//! This crate is the facade: it re-exports every subsystem under one
//! name. See the [`district`] module for the quickest entry point and
//! `examples/quickstart.rs` for a complete walkthrough.
//!
//! ```
//! use dimmer::district::scenario::ScenarioConfig;
//! use dimmer::district::deploy::Deployment;
//! use dimmer::simnet::{Simulator, SimConfig, SimDuration};
//!
//! let scenario = ScenarioConfig::small().build();
//! let mut sim = Simulator::new(SimConfig::default());
//! let deployment = Deployment::build(&mut sim, &scenario);
//! sim.run_for(SimDuration::from_secs(60));
//! assert_eq!(deployment.node_count(), sim.node_count());
//! ```

pub use dimmer_core as core;
pub use district;
pub use gis;
pub use master;
pub use models;
pub use ontology;
pub use protocols;
pub use proxy;
pub use pubsub;
pub use simnet;
pub use storage;
pub use streams;
