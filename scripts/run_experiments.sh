#!/usr/bin/env bash
# Regenerates every table of EXPERIMENTS.md into results/.
# Usage: scripts/run_experiments.sh [results-dir]
set -euo pipefail

out="${1:-results}"
mkdir -p "$out"

# Preflight: don't burn experiment time on a tree that fails CI.
# Skip with DIMMER_SKIP_CI=1 when iterating on a single experiment.
if [[ "${DIMMER_SKIP_CI:-0}" != "1" ]]; then
  "$(dirname "$0")/ci.sh"
fi

bins=(
  e1_query_scaling
  e2_ingest_throughput
  e3_protocol_translation
  e4_format_comparison
  e5_redirect_vs_relay
  e6_ontology_scaling
  e7_local_store
  e8_pubsub_fanout
  e9_centralized_baseline
  e10_chaos
  e11_aggregation
  e12_federation
  f1a_infrastructure
  f1b_device_proxy
)

cargo build --release -p dimmer-bench --bins

for bin in "${bins[@]}"; do
  echo "== $bin"
  cargo run -q --release -p dimmer-bench --bin "$bin" > "$out/$bin.txt"
done

echo "done: $out/"
