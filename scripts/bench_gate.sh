#!/usr/bin/env bash
# CI perf-regression gate over the hot-path micro-benches.
#
# Runs the topic-matching, windowed-stream, wire-codec and tskv benches
# in quick mode (DIMMER_BENCH_QUICK: ~5 ms calibration windows, median of
# five samples per bench), takes the per-bench minimum over
# GATE_PASSES=3 passes (the minimum is robust to scheduler noise on a
# loaded box, and a real regression raises the minimum too), and
# compares it against the committed baseline in results/BENCH_pr9.json.
# A bench fails the gate when its minimum exceeds baseline * 1.25 +
# 100 ns — the flat 100 ns term keeps sub-microsecond benches from
# tripping on jitter.
#
# The gate also runs the E13 smoke once (at --threads 4, which makes it
# measure the parallel-runner speedup against a single-threaded re-run
# of the same seed) and records its SLO attainment fields (one
# `{"slo":...}` line per objective) plus one `{"e13":"speedup"}` record
# alongside the bench medians; a run whose SLO comes back unmet fails
# the gate outright, and the measured speedup may not fall below 75% of
# the committed value.
# The E14 overload smoke rides along the same way: its per-load-point
# records are kept in the baseline, any `"conserved":false` fails the
# gate immediately, and goodput at the 2x-capacity point may not
# regress more than 25% against the committed value. The E15 storage
# smoke gates the tskv engine: the quantized-corpus compression ratio
# must stay >= 8x, sealed borrowed scans must stay within 2x of the
# flat store, and the crash sweep must lose zero acknowledged points.
#
# Usage:
#   scripts/bench_gate.sh            compare against the baseline
#   scripts/bench_gate.sh --update   re-measure and rewrite the baseline
set -euo pipefail

cd "$(dirname "$0")/.."

BASELINE="results/BENCH_pr10.json"
BENCHES=(topic_matching streams wire_codecs tskv)

raw="$(mktemp)"
out="$(mktemp)"
slo="$(mktemp)"
e14="$(mktemp)"
e15="$(mktemp)"
trap 'rm -f "$raw" "$out" "$slo" "$e14" "$e15"' EXIT

passes="${GATE_PASSES:-3}"
echo "== bench_gate: measuring (${BENCHES[*]}), min of $passes passes"
for _ in $(seq 1 "$passes"); do
    for b in "${BENCHES[@]}"; do
        DIMMER_BENCH_QUICK=1 DIMMER_BENCH_JSON="$raw" \
            cargo bench -q -p dimmer-bench --bench "$b" >/dev/null
    done
done

echo "== bench_gate: E13 smoke for SLO attainment + parallel speedup"
DIMMER_E13_SMOKE=1 DIMMER_E13_JSON="$slo" \
    cargo run -q --release -p dimmer-bench --bin e13_city_scale -- --threads 4 >/dev/null
if [[ ! -s "$slo" ]]; then
    echo "bench_gate: E13 emitted no SLO records" >&2
    exit 1
fi
if grep -q '"met":false' "$slo"; then
    echo "bench_gate: SLO missed in the E13 smoke run:" >&2
    grep '"met":false' "$slo" >&2
    exit 1
fi

echo "== bench_gate: E14 overload smoke for goodput + conservation"
DIMMER_E14_SMOKE=1 DIMMER_E14_JSON="$e14" \
    cargo run -q --release -p dimmer-bench --bin e14_overload >/dev/null
if [[ ! -s "$e14" ]]; then
    echo "bench_gate: E14 emitted no records" >&2
    exit 1
fi
if grep -q '"conserved":false' "$e14"; then
    echo "bench_gate: E14 lost request conservation:" >&2
    grep '"conserved":false' "$e14" >&2
    exit 1
fi

echo "== bench_gate: E15 storage smoke for compression + scans + recovery"
DIMMER_E15_SMOKE=1 DIMMER_E15_JSON="$e15" \
    cargo run -q --release -p dimmer-bench --bin e15_storage >/dev/null
if [[ ! -s "$e15" ]]; then
    echo "bench_gate: E15 emitted no records" >&2
    exit 1
fi
if ! awk -F'"ratio":' '/"e15":"compress".*"corpus":"quantized"/ \
        { exit ($2 + 0 >= 8.0) ? 0 : 1 }' "$e15"; then
    echo "bench_gate: E15 quantized compression ratio fell below 8x:" >&2
    grep '"corpus":"quantized"' "$e15" >&2
    exit 1
fi
if ! awk -F'"rel":' '/"e15":"scan"/ { exit ($2 + 0 <= 2.0) ? 0 : 1 }' "$e15"; then
    echo "bench_gate: E15 sealed scan slower than 2x the flat store:" >&2
    grep '"e15":"scan"' "$e15" >&2
    exit 1
fi
if ! grep -q '"e15":"crash_sweep".*"lost":0[,}]' "$e15"; then
    echo "bench_gate: E15 crash sweep lost acknowledged points:" >&2
    grep '"e15":"crash_sweep"' "$e15" >&2
    exit 1
fi

# Reduce the repeated passes to one per-bench minimum, preserving
# first-seen order so baseline diffs stay readable.
awk -F'"' '
    {
        split($0, a, /"median_ns":/); sub(/}.*/, "", a[2])
        v = a[2] + 0
        if (!($4 in best)) { order[++n] = $4; best[$4] = v }
        else if (v < best[$4]) best[$4] = v
    }
    END {
        for (i = 1; i <= n; i++)
            printf "{\"bench\":\"%s\",\"median_ns\":%s}\n", order[i], best[order[i]]
    }
' "$raw" > "$out"
cat "$slo" >> "$out"
cat "$e14" >> "$out"
cat "$e15" >> "$out"

if [[ "${1:-}" == "--update" ]]; then
    cp "$out" "$BASELINE"
    echo "bench_gate: baseline rewritten ($BASELINE)"
    exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
    echo "bench_gate: no baseline at $BASELINE — run scripts/bench_gate.sh --update" >&2
    exit 1
fi

# Goodput gate: at the 2x-capacity load point the overload tier must
# still serve at least 75% of the committed goodput.
base_goodput="$(grep -E '"e14":"sweep".*"mult":2\.0' "$BASELINE" \
    | sed -E 's/.*"goodput_qps":([0-9.]+).*/\1/' | head -n1)"
now_goodput="$(grep -E '"e14":"sweep".*"mult":2\.0' "$e14" \
    | sed -E 's/.*"goodput_qps":([0-9.]+).*/\1/' | head -n1)"
if [[ -z "$now_goodput" ]]; then
    echo "bench_gate: E14 smoke produced no 2x load point" >&2
    exit 1
fi
if [[ -z "$base_goodput" ]]; then
    echo "new      e14_goodput_at_2x $now_goodput qps (no baseline — commit one with --update)"
elif awk -v b="$base_goodput" -v n="$now_goodput" \
        'BEGIN { exit (n < b * 0.75) ? 0 : 1 }'; then
    echo "bench_gate: E14 goodput at 2x regressed >25%: $base_goodput -> $now_goodput qps" >&2
    exit 1
else
    printf 'ok       %-40s %12s -> %12s qps (limit %s)\n' \
        e14_goodput_at_2x "$base_goodput" "$now_goodput" \
        "$(awk -v b="$base_goodput" 'BEGIN { printf "%.1f", b * 0.75 }')"
fi

# Parallel-speedup gate: the 4-thread E13 smoke may not lose more than
# 25% of the committed wall-clock speedup over --threads 1. (On a
# single-core runner the committed value is ~1x or below — barrier
# overhead with no parallelism — so the gate stays self-consistent;
# multi-core speedups are gated once a multi-core baseline is
# committed.)
base_speedup="$(grep '"e13":"speedup"' "$BASELINE" \
    | sed -E 's/.*"speedup":([0-9.]+).*/\1/' | head -n1)"
now_speedup="$(grep '"e13":"speedup"' "$slo" \
    | sed -E 's/.*"speedup":([0-9.]+).*/\1/' | head -n1)"
if [[ -z "$now_speedup" ]]; then
    echo "bench_gate: E13 smoke produced no speedup record" >&2
    exit 1
fi
if [[ -z "$base_speedup" ]]; then
    echo "new      e13_parallel_speedup $now_speedup x (no baseline — commit one with --update)"
elif awk -v b="$base_speedup" -v n="$now_speedup" \
        'BEGIN { exit (n < b * 0.75) ? 0 : 1 }'; then
    echo "bench_gate: E13 parallel speedup regressed >25%: ${base_speedup}x -> ${now_speedup}x" >&2
    exit 1
else
    printf 'ok       %-40s %12s -> %12s x   (limit %s)\n' \
        e13_parallel_speedup "$base_speedup" "$now_speedup" \
        "$(awk -v b="$base_speedup" 'BEGIN { printf "%.2f", b * 0.75 }')"
fi

if awk -F'"' '
    # SLO and E14 records carry no median; both are gated above, not
    # compared here.
    !/"median_ns":/ { next }
    FNR == NR {
        split($0, a, /"median_ns":/); sub(/}.*/, "", a[2])
        base[$4] = a[2] + 0
        next
    }
    {
        split($0, a, /"median_ns":/); sub(/}.*/, "", a[2])
        now = a[2] + 0
        if (!($4 in base)) {
            printf "new      %-40s %38.1f ns (no baseline — commit one with --update)\n", $4, now
            next
        }
        limit = base[$4] * 1.25 + 100
        verdict = (now > limit) ? "REGRESS" : "ok"
        printf "%-8s %-40s %12.1f -> %12.1f ns (limit %12.1f)\n", verdict, $4, base[$4], now, limit
        if (now > limit) bad++
    }
    END { exit bad > 0 ? 1 : 0 }
' "$BASELINE" "$out"; then
    echo "bench_gate: ok"
else
    echo "bench_gate: REGRESSION — a hot path slowed >25% vs $BASELINE" >&2
    echo "bench_gate: if intentional, refresh with scripts/bench_gate.sh --update" >&2
    exit 1
fi
