#!/usr/bin/env bash
# Offline CI gate: formatting, lints, docs, examples and the full test
# suite.
# Usage: scripts/ci.sh
#
# Knobs:
#   DIMMER_SEEDS=n   sweep the failure-injection suites
#                    (tests/resilience.rs, tests/chaos.rs,
#                    tests/streams.rs) across n simulation seeds — each
#                    run shifts every sim seed by DIMMER_SEED, shaking
#                    out assertions that only hold for one timing.
#                    Defaults to 2; set 0 to skip.
#   DIMMER_BENCH=1   additionally run the perf-regression gate
#                    (scripts/bench_gate.sh) against the committed
#                    baseline in results/BENCH_pr9.json.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== metric-name lint (docs/metrics.txt)"
# Static metric names used in crates/*/src (test mods stripped — the
# convention puts `#[cfg(test)]` last in a file) must match the
# checked-in inventory exactly, both ways: no ad-hoc names in code, no
# stale names in the inventory. Dynamic label/SLO families are
# documented as comments in the inventory and invisible to this grep.
used="$(mktemp)"
listed="$(mktemp)"
trap 'rm -f "$used" "$listed"' EXIT
for f in $(find crates -path '*/src/*.rs' | sort); do
    awk '/#\[cfg\(test\)\]/{exit} {print}' "$f"
done | tr '\n' ' ' \
    | grep -oE '\.(incr|add|set_gauge|observe|observe_ns)\(([^"();]{0,40},)?[[:space:]]*"[^"]+"' \
    | sed -E 's/.*"([^"]+)"$/\1/' | sort -u > "$used"
grep -v '^#' docs/metrics.txt | grep -v '^$' | sort -u > "$listed"
if ! diff -u "$listed" "$used"; then
    echo "metric lint: code and docs/metrics.txt disagree" >&2
    echo "metric lint: lines prefixed '+' are unregistered names in code," >&2
    echo "metric lint: lines prefixed '-' are stale inventory entries" >&2
    exit 1
fi

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy -D warnings"
cargo clippy --all-targets -- -D warnings

echo "== cargo build --examples"
cargo build --examples

echo "== cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "== cargo test -q"
cargo test -q

seeds="${DIMMER_SEEDS:-2}"
if [[ "$seeds" -gt 0 ]]; then
    echo "== seed sweep: resilience + chaos + streams under $seeds seeds"
    for s in $(seq 1 "$seeds"); do
        echo "-- DIMMER_SEED=$s"
        DIMMER_SEED="$s" cargo test -q --test resilience --test chaos --test streams
    done
fi

echo "== e13 city-scale smoke (500 buildings)"
DIMMER_E13_SMOKE=1 cargo run -q -p dimmer-bench --bin e13_city_scale

echo "== e14 overload smoke (sweep + gray failure)"
DIMMER_E14_SMOKE=1 cargo run -q -p dimmer-bench --bin e14_overload

echo "== e15 storage smoke (compression + recovery + crash sweep)"
DIMMER_E15_SMOKE=1 cargo run -q -p dimmer-bench --bin e15_storage

if [[ "${DIMMER_BENCH:-0}" == "1" ]]; then
    echo "== perf-regression gate"
    scripts/bench_gate.sh
fi

echo "ci: ok"
