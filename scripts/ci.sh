#!/usr/bin/env bash
# Offline CI gate: formatting, lints, docs, examples and the full test
# suite.
# Usage: scripts/ci.sh
#
# Knobs:
#   DIMMER_SEEDS=n   sweep the failure-injection suites
#                    (tests/resilience.rs, tests/chaos.rs,
#                    tests/streams.rs) across n simulation seeds — each
#                    run shifts every sim seed by DIMMER_SEED, shaking
#                    out assertions that only hold for one timing.
#                    Defaults to 2; set 0 to skip.
#   DIMMER_BENCH=1   additionally run the perf-regression gate
#                    (scripts/bench_gate.sh) against the committed
#                    baseline it names in its BASELINE variable.
set -euo pipefail

cd "$(dirname "$0")/.."

# The perf baseline lives in one place: bench_gate.sh's BASELINE line.
baseline="$(sed -n 's/^BASELINE="\(.*\)"$/\1/p' scripts/bench_gate.sh)"

echo "== metric-name lint (docs/metrics.txt)"
# Static metric names used in crates/*/src (test mods stripped — the
# convention puts `#[cfg(test)]` last in a file) must match the
# checked-in inventory exactly, both ways: no ad-hoc names in code, no
# stale names in the inventory. Dynamic label/SLO families are
# documented as comments in the inventory and invisible to this grep.
used="$(mktemp)"
listed="$(mktemp)"
e13a="$(mktemp)"
e13b="$(mktemp)"
trap 'rm -f "$used" "$listed" "$e13a" "$e13b"' EXIT
for f in $(find crates -path '*/src/*.rs' | sort); do
    awk '/#\[cfg\(test\)\]/{exit} {print}' "$f"
done | tr '\n' ' ' \
    | grep -oE '\.(incr|add|set_gauge|observe|observe_ns)\(([^"();]{0,40},)?[[:space:]]*"[^"]+"' \
    | sed -E 's/.*"([^"]+)"$/\1/' | sort -u > "$used"
grep -v '^#' docs/metrics.txt | grep -v '^$' | sort -u > "$listed"
if ! diff -u "$listed" "$used"; then
    echo "metric lint: code and docs/metrics.txt disagree" >&2
    echo "metric lint: lines prefixed '+' are unregistered names in code," >&2
    echo "metric lint: lines prefixed '-' are stale inventory entries" >&2
    exit 1
fi

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy -D warnings"
cargo clippy --all-targets -- -D warnings

echo "== cargo build --examples"
cargo build --examples

echo "== cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "== cargo test -q"
cargo test -q

seeds="${DIMMER_SEEDS:-2}"
if [[ "$seeds" -gt 0 ]]; then
    echo "== seed sweep: resilience + chaos + streams under $seeds seeds"
    for s in $(seq 1 "$seeds"); do
        echo "-- DIMMER_SEED=$s"
        DIMMER_SEED="$s" cargo test -q --test resilience --test chaos --test streams
    done
fi

echo "== thread matrix: chaos + parallel suites under 1 and 4 worker threads"
for t in 1 4; do
    echo "-- DIMMER_THREADS=$t"
    DIMMER_THREADS="$t" cargo test -q --test chaos --test parallel
done

echo "== e13 city-scale smoke + determinism gate (--threads 1 vs 4, same seed)"
DIMMER_E13_SMOKE=1 DIMMER_SEED="${DIMMER_SEED:-0}" \
    cargo run -q -p dimmer-bench --bin e13_city_scale -- --threads 1 | tee "$e13a"
DIMMER_E13_SMOKE=1 DIMMER_SEED="${DIMMER_SEED:-0}" \
    cargo run -q -p dimmer-bench --bin e13_city_scale -- --threads 4 > "$e13b"
d1="$(grep '^e13-digest' "$e13a" | sed -E 's/.* digest=(0x[0-9a-f]+).*/\1/')"
d4="$(grep '^e13-digest' "$e13b" | sed -E 's/.* digest=(0x[0-9a-f]+).*/\1/')"
if [[ -z "$d1" || "$d1" != "$d4" ]]; then
    echo "determinism gate: flight-recorder digests differ across thread counts" >&2
    echo "  --threads 1: ${d1:-<missing>}" >&2
    echo "  --threads 4: ${d4:-<missing>}" >&2
    exit 1
fi
echo "determinism gate: ok (digest $d1 at both --threads 1 and --threads 4)"

echo "== e14 overload smoke (sweep + gray failure)"
DIMMER_E14_SMOKE=1 cargo run -q -p dimmer-bench --bin e14_overload

echo "== e15 storage smoke (compression + recovery + crash sweep)"
DIMMER_E15_SMOKE=1 cargo run -q -p dimmer-bench --bin e15_storage

if [[ "${DIMMER_BENCH:-0}" == "1" ]]; then
    echo "== perf-regression gate (baseline: $baseline)"
    scripts/bench_gate.sh
fi

echo "ci: ok"
