#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the full test suite.
# Usage: scripts/ci.sh
#
# Set DIMMER_SEEDS=n to additionally sweep the failure-injection suites
# (tests/resilience.rs, tests/chaos.rs, tests/streams.rs) across n
# simulation seeds — each run shifts every sim seed by DIMMER_SEED,
# shaking out assertions that only hold for one timing.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy -D warnings"
cargo clippy --all-targets -- -D warnings

echo "== cargo test -q"
cargo test -q

seeds="${DIMMER_SEEDS:-0}"
if [[ "$seeds" -gt 0 ]]; then
    echo "== seed sweep: resilience + chaos + streams under $seeds seeds"
    for s in $(seq 1 "$seeds"); do
        echo "-- DIMMER_SEED=$s"
        DIMMER_SEED="$s" cargo test -q --test resilience --test chaos --test streams
    done
fi

echo "ci: ok"
