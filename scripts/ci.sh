#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the full test suite.
# Usage: scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy -D warnings"
cargo clippy --all-targets -- -D warnings

echo "== cargo test -q"
cargo test -q

echo "ci: ok"
