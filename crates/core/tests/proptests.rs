//! Randomized tests on the common data format codecs.
//!
//! Driven by `simnet::rng::DeterministicRng` instead of an external
//! property-testing crate so the workspace builds with no network
//! access; the fixed seeds make every run reproducible.

use dimmer_core::codec::{self, DataFormat};
use dimmer_core::{json, xml, Timestamp, Uri, Value};
use simnet::rng::DeterministicRng;

const CASES: usize = 256;

fn string_from(rng: &mut DeterministicRng, charset: &str, lo: usize, hi: usize) -> String {
    let chars: Vec<char> = charset.chars().collect();
    let len = rng.next_range(lo as u64, hi as u64) as usize;
    (0..len)
        .map(|_| chars[rng.next_bounded(chars.len() as u64) as usize])
        .collect()
}

/// Printable text including escapes, quotes and non-ASCII.
fn printable_string(rng: &mut DeterministicRng, max_len: usize) -> String {
    let len = rng.next_bounded(max_len as u64 + 1) as usize;
    (0..len)
        .map(|_| match rng.next_bounded(8) {
            0 => '"',
            1 => '\\',
            2..=5 => char::from_u32(0x20 + rng.next_bounded(0x5f) as u32).unwrap(),
            6 => char::from_u32(0x00A1 + rng.next_bounded(0x500) as u32).unwrap(),
            _ => ['é', '✓', '中', 'Ω', 'ß', '€', 'λ', '→'][rng.next_bounded(8) as usize],
        })
        .collect()
}

/// Arbitrary text, including control characters, for parser-robustness.
fn any_text(rng: &mut DeterministicRng, max_len: usize) -> String {
    let len = rng.next_bounded(max_len as u64 + 1) as usize;
    (0..len)
        .filter_map(|_| char::from_u32(rng.next_bounded(0x3000) as u32))
        .collect()
}

/// An arbitrary common-data-format value with nesting up to `depth`.
fn rand_value(rng: &mut DeterministicRng, depth: u32) -> Value {
    let pick = rng.next_bounded(if depth == 0 { 5 } else { 7 });
    match pick {
        0 => Value::Null,
        1 => Value::Bool(rng.next_u64() & 1 == 0),
        2 => Value::Int(rng.next_u64() as i64),
        3 => {
            // Finite, non-NaN floats only: the format forbids NaN.
            let f = f64::from_bits(rng.next_u64());
            Value::Float(if f.is_finite() {
                f
            } else {
                rng.next_f64_range(-1e9, 1e9)
            })
        }
        4 => Value::from(printable_string(rng, 20)),
        5 => Value::Array(
            (0..rng.next_bounded(5))
                .map(|_| rand_value(rng, depth - 1))
                .collect(),
        ),
        _ => Value::Object(
            (0..rng.next_bounded(5))
                .map(|_| {
                    (
                        string_from(rng, "abcXYZ019 _<>&\"'", 0, 12),
                        rand_value(rng, depth - 1),
                    )
                })
                .collect(),
        ),
    }
}

#[test]
fn json_round_trip() {
    let mut rng = DeterministicRng::seed_from(0xC0DE_0001);
    for _ in 0..CASES {
        let v = rand_value(&mut rng, 3);
        let back = json::from_str(&json::to_string(&v)).unwrap();
        assert_eq!(back, v);
    }
}

#[test]
fn json_pretty_round_trip() {
    let mut rng = DeterministicRng::seed_from(0xC0DE_0002);
    for _ in 0..CASES {
        let v = rand_value(&mut rng, 3);
        let back = json::from_str(&json::to_string_pretty(&v)).unwrap();
        assert_eq!(back, v);
    }
}

#[test]
fn xml_round_trip() {
    let mut rng = DeterministicRng::seed_from(0xC0DE_0003);
    for _ in 0..CASES {
        let v = rand_value(&mut rng, 3);
        let back = xml::from_str(&xml::to_string(&v)).unwrap();
        assert_eq!(back, v);
    }
}

#[test]
fn xml_pretty_round_trip() {
    let mut rng = DeterministicRng::seed_from(0xC0DE_0004);
    for _ in 0..CASES {
        let v = rand_value(&mut rng, 3);
        let back = xml::from_str(&xml::to_string_pretty(&v)).unwrap();
        assert_eq!(back, v);
    }
}

#[test]
fn both_formats_agree() {
    let mut rng = DeterministicRng::seed_from(0xC0DE_0005);
    for _ in 0..CASES {
        let v = rand_value(&mut rng, 3);
        // Encoding through either format must preserve the same value.
        let via_json =
            codec::decode_value(&codec::encode_value(&v, DataFormat::Json), DataFormat::Json)
                .unwrap();
        let via_xml =
            codec::decode_value(&codec::encode_value(&v, DataFormat::Xml), DataFormat::Xml)
                .unwrap();
        assert_eq!(via_json, via_xml);
    }
}

#[test]
fn json_parser_never_panics() {
    let mut rng = DeterministicRng::seed_from(0xC0DE_0006);
    for _ in 0..CASES {
        let _ = json::from_str(&any_text(&mut rng, 64));
    }
}

#[test]
fn xml_parser_never_panics() {
    let mut rng = DeterministicRng::seed_from(0xC0DE_0007);
    for _ in 0..CASES {
        let _ = xml::from_str(&any_text(&mut rng, 64));
    }
}

#[test]
fn timestamp_civil_round_trip() {
    let mut rng = DeterministicRng::seed_from(0xC0DE_0008);
    for _ in 0..CASES {
        // 1840..2100 roughly.
        let span = 2 * 4_102_444_800_000u64;
        let millis = rng.next_bounded(span) as i64 - 4_102_444_800_000;
        let t = Timestamp::from_unix_millis(millis);
        let back = Timestamp::parse(&t.to_string()).unwrap();
        assert_eq!(back, t);
    }
}

#[test]
fn uri_display_parse_round_trip() {
    let mut rng = DeterministicRng::seed_from(0xC0DE_0009);
    for _ in 0..CASES {
        let host = format!(
            "{}{}",
            string_from(&mut rng, "abcdefghij", 1, 1),
            string_from(&mut rng, "abcxyz019.-", 0, 12)
        );
        let port = if rng.chance(0.5) {
            Some(rng.next_u64() as u16)
        } else {
            None
        };
        let segments = rng.next_bounded(4);
        let path: String = (0..segments)
            .map(|_| format!("/{}", string_from(&mut rng, "abcXYZ019._-", 1, 8)))
            .collect();
        let mut uri = Uri::new("sim", host, port, path).unwrap();
        for _ in 0..rng.next_bounded(4) {
            uri = uri.with_query(
                string_from(&mut rng, "abcdef", 1, 6),
                string_from(&mut rng, "abcXYZ019,._-", 0, 8),
            );
        }
        let back = Uri::parse(&uri.to_string()).unwrap();
        assert_eq!(back, uri);
    }
}
