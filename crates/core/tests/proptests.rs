//! Property-based tests on the common data format codecs.

use dimmer_core::codec::{self, DataFormat};
use dimmer_core::{json, xml, Timestamp, Uri, Value};
use proptest::prelude::*;

/// A strategy producing arbitrary common-data-format values.
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite, non-NaN floats only: the format forbids NaN.
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::Float),
        // Strings including escapes, control chars and non-ASCII.
        "\\PC{0,20}".prop_map(Value::from),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..8).prop_map(Value::Array),
            prop::collection::btree_map("[a-zA-Z0-9 _<>&\"']{0,12}", inner, 0..8)
                .prop_map(Value::Object),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn json_round_trip(v in value_strategy()) {
        let text = json::to_string(&v);
        let back = json::from_str(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn json_pretty_round_trip(v in value_strategy()) {
        let text = json::to_string_pretty(&v);
        let back = json::from_str(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn xml_round_trip(v in value_strategy()) {
        let text = xml::to_string(&v);
        let back = xml::from_str(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn xml_pretty_round_trip(v in value_strategy()) {
        let text = xml::to_string_pretty(&v);
        let back = xml::from_str(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn both_formats_agree(v in value_strategy()) {
        // Encoding through either format must preserve the same value.
        let via_json = codec::decode_value(
            &codec::encode_value(&v, DataFormat::Json), DataFormat::Json).unwrap();
        let via_xml = codec::decode_value(
            &codec::encode_value(&v, DataFormat::Xml), DataFormat::Xml).unwrap();
        prop_assert_eq!(via_json, via_xml);
    }

    #[test]
    fn json_parser_never_panics(text in "\\PC{0,64}") {
        let _ = json::from_str(&text);
    }

    #[test]
    fn xml_parser_never_panics(text in "\\PC{0,64}") {
        let _ = xml::from_str(&text);
    }

    #[test]
    fn timestamp_civil_round_trip(millis in -4_102_444_800_000i64..4_102_444_800_000i64) {
        // 1840..2100 roughly.
        let t = Timestamp::from_unix_millis(millis);
        let text = t.to_string();
        let back = Timestamp::parse(&text).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn uri_display_parse_round_trip(
        host in "[a-z][a-z0-9.-]{0,12}",
        port in proptest::option::of(any::<u16>()),
        path in "(/[a-zA-Z0-9._-]{1,8}){0,3}",
        params in prop::collection::btree_map("[a-z]{1,6}", "[a-zA-Z0-9,._-]{0,8}", 0..4),
    ) {
        let mut uri = Uri::new("sim", host, port, path).unwrap();
        for (k, v) in params {
            uri = uri.with_query(k, v);
        }
        let text = uri.to_string();
        let back = Uri::parse(&text).unwrap();
        prop_assert_eq!(back, uri);
    }
}
