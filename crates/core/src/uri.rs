//! URIs — the addressing currency of the infrastructure.
//!
//! The master node answers area queries with the URIs of the relevant
//! proxies' Web Services; clients then dereference those URIs directly.
//! This module implements the small URI subset the framework needs:
//! `scheme://host[:port]/path[?key=value&…]`.

use std::collections::BTreeMap;
use std::fmt;

use crate::CoreError;

/// A parsed service URI.
///
/// ```
/// use dimmer_core::Uri;
/// # fn main() -> Result<(), dimmer_core::CoreError> {
/// let uri = Uri::parse("ws://proxy-7.district.example:8080/data?from=0&to=100")?;
/// assert_eq!(uri.scheme(), "ws");
/// assert_eq!(uri.host(), "proxy-7.district.example");
/// assert_eq!(uri.port(), Some(8080));
/// assert_eq!(uri.path(), "/data");
/// assert_eq!(uri.query("from"), Some("0"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Uri {
    scheme: String,
    host: String,
    port: Option<u16>,
    path: String,
    query: BTreeMap<String, String>,
}

impl Uri {
    /// Builds a URI from parts.
    ///
    /// `path` is normalized to start with `/`; an empty path becomes `/`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidUri`] if scheme or host are empty or
    /// contain separator characters.
    pub fn new(
        scheme: impl Into<String>,
        host: impl Into<String>,
        port: Option<u16>,
        path: impl Into<String>,
    ) -> Result<Self, CoreError> {
        let scheme = scheme.into();
        let host = host.into();
        let mut path = path.into();
        let check = |part: &str, what: &'static str| -> Result<(), CoreError> {
            if part.is_empty() {
                return Err(CoreError::InvalidUri {
                    input: part.to_owned(),
                    reason: match what {
                        "scheme" => "empty scheme",
                        _ => "empty host",
                    },
                });
            }
            if part.contains([':', '/', '?', '&', '=', '#', ' ']) {
                return Err(CoreError::InvalidUri {
                    input: part.to_owned(),
                    reason: "separator character in scheme or host",
                });
            }
            Ok(())
        };
        check(&scheme, "scheme")?;
        check(&host, "host")?;
        if path.is_empty() {
            path.push('/');
        }
        if !path.starts_with('/') {
            path.insert(0, '/');
        }
        if path.contains(['?', '#', ' ']) {
            return Err(CoreError::InvalidUri {
                input: path,
                reason: "path must not contain '?', '#' or spaces",
            });
        }
        Ok(Uri {
            scheme,
            host,
            port,
            path,
            query: BTreeMap::new(),
        })
    }

    /// Parses a URI of the form `scheme://host[:port]/path[?k=v&…]`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidUri`] describing the first violation.
    pub fn parse(input: &str) -> Result<Self, CoreError> {
        let err = |reason: &'static str| CoreError::InvalidUri {
            input: input.to_owned(),
            reason,
        };
        let (scheme, rest) = input
            .split_once("://")
            .ok_or_else(|| err("missing '://'"))?;
        let (authority, path_query) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => {
                let port: u16 = p.parse().map_err(|_| err("invalid port"))?;
                (h, Some(port))
            }
            None => (authority, None),
        };
        let (path, query_str) = match path_query.split_once('?') {
            Some((p, q)) => (p, Some(q)),
            None => (path_query, None),
        };
        let mut uri = Uri::new(scheme, host, port, path)?;
        if let Some(q) = query_str {
            for pair in q.split('&').filter(|p| !p.is_empty()) {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| err("query pair missing '='"))?;
                if k.is_empty() {
                    return Err(err("empty query key"));
                }
                uri.query.insert(k.to_owned(), v.to_owned());
            }
        }
        Ok(uri)
    }

    /// The scheme, e.g. `ws`.
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// The host name.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The explicit port, if any.
    pub fn port(&self) -> Option<u16> {
        self.port
    }

    /// The path, always starting with `/`.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The value of query parameter `key`, if present.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query.get(key).map(String::as_str)
    }

    /// All query parameters in key order.
    pub fn query_pairs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.query.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Returns a copy with query parameter `key` set to `value`.
    pub fn with_query(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.query.insert(key.into(), value.into());
        self
    }

    /// Returns a copy with the path replaced.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidUri`] under the same rules as
    /// [`Uri::new`].
    pub fn with_path(&self, path: impl Into<String>) -> Result<Self, CoreError> {
        let mut u = Uri::new(self.scheme.clone(), self.host.clone(), self.port, path)?;
        u.query = self.query.clone();
        Ok(u)
    }
}

impl fmt::Display for Uri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}", self.scheme, self.host)?;
        if let Some(p) = self.port {
            write!(f, ":{p}")?;
        }
        f.write_str(&self.path)?;
        for (i, (k, v)) in self.query.iter().enumerate() {
            write!(f, "{}{k}={v}", if i == 0 { '?' } else { '&' })?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Uri {
    type Err = CoreError;
    fn from_str(s: &str) -> Result<Self, CoreError> {
        Uri::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_uri() {
        let u = Uri::parse("http://master:9000/ontology/area?bbox=1,2,3,4&fmt=json").unwrap();
        assert_eq!(u.scheme(), "http");
        assert_eq!(u.host(), "master");
        assert_eq!(u.port(), Some(9000));
        assert_eq!(u.path(), "/ontology/area");
        assert_eq!(u.query("bbox"), Some("1,2,3,4"));
        assert_eq!(u.query("fmt"), Some("json"));
        assert_eq!(u.query("missing"), None);
    }

    #[test]
    fn parse_minimal_uri() {
        let u = Uri::parse("ws://node7").unwrap();
        assert_eq!(u.path(), "/");
        assert_eq!(u.port(), None);
        assert_eq!(u.query_pairs().count(), 0);
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "ws://node7/",
            "http://master:9000/ontology/area?bbox=1,2,3,4&fmt=json",
            "sim://n42:7/data",
        ] {
            let u = Uri::parse(s).unwrap();
            assert_eq!(Uri::parse(&u.to_string()).unwrap(), u);
        }
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "no-scheme",
            "://host/",
            "http://",
            "http://host:70000/",
            "http://host:abc/",
            "http://host/p?novalue",
            "http://host/p?=v",
            "http://ho st/p",
        ] {
            assert!(Uri::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn with_query_and_path() {
        let u = Uri::parse("sim://n1/data").unwrap();
        let v = u.clone().with_query("from", "10");
        assert_eq!(v.query("from"), Some("10"));
        let w = v.with_path("/latest").unwrap();
        assert_eq!(w.path(), "/latest");
        assert_eq!(w.query("from"), Some("10"), "query survives path change");
    }

    #[test]
    fn new_normalizes_path() {
        let u = Uri::new("sim", "n1", None, "data").unwrap();
        assert_eq!(u.path(), "/data");
        let v = Uri::new("sim", "n1", None, "").unwrap();
        assert_eq!(v.path(), "/");
    }

    #[test]
    fn query_order_is_deterministic() {
        let u = Uri::parse("s://h/p?z=1&a=2").unwrap();
        assert_eq!(u.to_string(), "s://h/p?a=2&z=1");
    }
}
