//! The crate-wide error type.

use std::fmt;

/// Errors produced by the common data model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// An identifier string violated the identifier grammar.
    InvalidId {
        /// What kind of identifier was being parsed.
        kind: &'static str,
        /// The offending input.
        input: String,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// A URI string could not be parsed.
    InvalidUri {
        /// The offending input.
        input: String,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// JSON text could not be parsed.
    ParseJson {
        /// Byte offset of the failure.
        offset: usize,
        /// Why parsing failed.
        reason: String,
    },
    /// XML text could not be parsed.
    ParseXml {
        /// Byte offset of the failure.
        offset: usize,
        /// Why parsing failed.
        reason: String,
    },
    /// A decoded [`Value`](crate::Value) did not have the shape required
    /// by the target type.
    Shape {
        /// What was being decoded.
        target: &'static str,
        /// What was wrong.
        reason: String,
    },
    /// A timestamp string could not be parsed.
    ParseTimestamp {
        /// The offending input.
        input: String,
    },
    /// A unit conversion between incompatible units was requested.
    IncompatibleUnits {
        /// The source unit symbol.
        from: &'static str,
        /// The destination unit symbol.
        to: &'static str,
    },
    /// An enum symbol (unit, quantity kind, …) was not recognized.
    UnknownSymbol {
        /// Which vocabulary was searched.
        vocabulary: &'static str,
        /// The unknown symbol.
        symbol: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidId {
                kind,
                input,
                reason,
            } => write!(f, "invalid {kind} identifier {input:?}: {reason}"),
            CoreError::InvalidUri { input, reason } => {
                write!(f, "invalid uri {input:?}: {reason}")
            }
            CoreError::ParseJson { offset, reason } => {
                write!(f, "json parse error at byte {offset}: {reason}")
            }
            CoreError::ParseXml { offset, reason } => {
                write!(f, "xml parse error at byte {offset}: {reason}")
            }
            CoreError::Shape { target, reason } => {
                write!(f, "value does not describe a {target}: {reason}")
            }
            CoreError::ParseTimestamp { input } => {
                write!(f, "invalid timestamp {input:?}")
            }
            CoreError::IncompatibleUnits { from, to } => {
                write!(f, "cannot convert {from} to {to}")
            }
            CoreError::UnknownSymbol { vocabulary, symbol } => {
                write!(f, "unknown {vocabulary} symbol {symbol:?}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = CoreError::InvalidUri {
            input: "::".into(),
            reason: "missing scheme",
        };
        assert_eq!(e.to_string(), "invalid uri \"::\": missing scheme");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
