//! Physical units used in district energy monitoring.
//!
//! The unit set covers what the four device families report: temperatures,
//! electrical quantities, thermal energy, flow, illuminance, humidity and
//! air quality. Conversions are provided inside each dimension; a
//! conversion across dimensions is an error, which is how the integration
//! layer detects mislabelled source data.

use std::fmt;

use crate::CoreError;

/// A physical unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Unit {
    // Temperature
    /// Degree Celsius.
    Celsius,
    /// Kelvin.
    Kelvin,
    // Power
    /// Watt.
    Watt,
    /// Kilowatt.
    Kilowatt,
    // Energy
    /// Watt-hour.
    WattHour,
    /// Kilowatt-hour.
    KilowattHour,
    /// Megajoule.
    Megajoule,
    // Electrical
    /// Volt.
    Volt,
    /// Ampere.
    Ampere,
    // Flow
    /// Cubic metre per hour.
    CubicMetrePerHour,
    /// Litre per second.
    LitrePerSecond,
    // Environment
    /// Lux.
    Lux,
    /// Relative humidity in percent.
    PercentRelativeHumidity,
    /// CO₂ concentration, parts per million.
    PartsPerMillion,
    // Dimensionless
    /// A bare count (pulses, occupancy, on/off).
    Count,
}

/// The physical dimension a unit measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Dimension {
    /// Thermodynamic temperature.
    Temperature,
    /// Power.
    Power,
    /// Energy.
    Energy,
    /// Electric potential.
    Voltage,
    /// Electric current.
    Current,
    /// Volumetric flow.
    Flow,
    /// Illuminance.
    Illuminance,
    /// Relative humidity.
    Humidity,
    /// Gas concentration.
    Concentration,
    /// Dimensionless count.
    Dimensionless,
}

impl Unit {
    /// The dimension this unit measures.
    pub fn dimension(self) -> Dimension {
        match self {
            Unit::Celsius | Unit::Kelvin => Dimension::Temperature,
            Unit::Watt | Unit::Kilowatt => Dimension::Power,
            Unit::WattHour | Unit::KilowattHour | Unit::Megajoule => Dimension::Energy,
            Unit::Volt => Dimension::Voltage,
            Unit::Ampere => Dimension::Current,
            Unit::CubicMetrePerHour | Unit::LitrePerSecond => Dimension::Flow,
            Unit::Lux => Dimension::Illuminance,
            Unit::PercentRelativeHumidity => Dimension::Humidity,
            Unit::PartsPerMillion => Dimension::Concentration,
            Unit::Count => Dimension::Dimensionless,
        }
    }

    /// The unit symbol used in the common data format.
    pub fn symbol(self) -> &'static str {
        match self {
            Unit::Celsius => "degC",
            Unit::Kelvin => "K",
            Unit::Watt => "W",
            Unit::Kilowatt => "kW",
            Unit::WattHour => "Wh",
            Unit::KilowattHour => "kWh",
            Unit::Megajoule => "MJ",
            Unit::Volt => "V",
            Unit::Ampere => "A",
            Unit::CubicMetrePerHour => "m3/h",
            Unit::LitrePerSecond => "L/s",
            Unit::Lux => "lx",
            Unit::PercentRelativeHumidity => "%RH",
            Unit::PartsPerMillion => "ppm",
            Unit::Count => "count",
        }
    }

    /// Parses a symbol produced by [`Unit::symbol`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownSymbol`] for anything else.
    pub fn parse(symbol: &str) -> Result<Self, CoreError> {
        Unit::all()
            .iter()
            .copied()
            .find(|u| u.symbol() == symbol)
            .ok_or_else(|| CoreError::UnknownSymbol {
                vocabulary: "unit",
                symbol: symbol.to_owned(),
            })
    }

    /// All units.
    pub fn all() -> &'static [Unit] {
        &[
            Unit::Celsius,
            Unit::Kelvin,
            Unit::Watt,
            Unit::Kilowatt,
            Unit::WattHour,
            Unit::KilowattHour,
            Unit::Megajoule,
            Unit::Volt,
            Unit::Ampere,
            Unit::CubicMetrePerHour,
            Unit::LitrePerSecond,
            Unit::Lux,
            Unit::PercentRelativeHumidity,
            Unit::PartsPerMillion,
            Unit::Count,
        ]
    }

    /// Converts `value` from `self` to `to`.
    ///
    /// ```
    /// use dimmer_core::Unit;
    /// # fn main() -> Result<(), dimmer_core::CoreError> {
    /// assert_eq!(Unit::Kilowatt.convert(1.5, Unit::Watt)?, 1500.0);
    /// assert_eq!(Unit::Celsius.convert(0.0, Unit::Kelvin)?, 273.15);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IncompatibleUnits`] when the dimensions differ.
    pub fn convert(self, value: f64, to: Unit) -> Result<f64, CoreError> {
        if self.dimension() != to.dimension() {
            return Err(CoreError::IncompatibleUnits {
                from: self.symbol(),
                to: to.symbol(),
            });
        }
        if self == to {
            return Ok(value);
        }
        // Convert through the dimension's base unit.
        let base = self.to_base(value);
        Ok(to.convert_from_base(base))
    }

    /// Converts a value in `self` to the dimension's base unit
    /// (K, W, Wh, m³/h; identity for single-unit dimensions).
    fn to_base(self, v: f64) -> f64 {
        match self {
            Unit::Celsius => v + 273.15,
            Unit::Kelvin => v,
            Unit::Watt => v,
            Unit::Kilowatt => v * 1_000.0,
            Unit::WattHour => v,
            Unit::KilowattHour => v * 1_000.0,
            Unit::Megajoule => v * (1_000_000.0 / 3_600.0),
            Unit::CubicMetrePerHour => v,
            Unit::LitrePerSecond => v * 3.6,
            _ => v,
        }
    }

    /// Converts a value in the dimension's base unit to `self`.
    fn convert_from_base(self, v: f64) -> f64 {
        match self {
            Unit::Celsius => v - 273.15,
            Unit::Kelvin => v,
            Unit::Watt => v,
            Unit::Kilowatt => v / 1_000.0,
            Unit::WattHour => v,
            Unit::KilowattHour => v / 1_000.0,
            Unit::Megajoule => v * (3_600.0 / 1_000_000.0),
            Unit::CubicMetrePerHour => v,
            Unit::LitrePerSecond => v / 3.6,
            _ => v,
        }
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_round_trip() {
        for &u in Unit::all() {
            assert_eq!(Unit::parse(u.symbol()).unwrap(), u);
        }
        assert!(Unit::parse("furlongs").is_err());
    }

    #[test]
    fn symbols_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &u in Unit::all() {
            assert!(seen.insert(u.symbol()), "duplicate symbol {}", u.symbol());
        }
    }

    #[test]
    fn temperature_conversions() {
        assert_eq!(Unit::Celsius.convert(25.0, Unit::Kelvin).unwrap(), 298.15);
        assert!((Unit::Kelvin.convert(300.0, Unit::Celsius).unwrap() - 26.85).abs() < 1e-9);
    }

    #[test]
    fn energy_conversions() {
        assert_eq!(
            Unit::KilowattHour.convert(2.0, Unit::WattHour).unwrap(),
            2000.0
        );
        // 1 kWh = 3.6 MJ
        assert!((Unit::KilowattHour.convert(1.0, Unit::Megajoule).unwrap() - 3.6).abs() < 1e-9);
        assert!((Unit::Megajoule.convert(3.6, Unit::KilowattHour).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn flow_conversions() {
        // 1 L/s = 3.6 m3/h
        assert!(
            (Unit::LitrePerSecond
                .convert(1.0, Unit::CubicMetrePerHour)
                .unwrap()
                - 3.6)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn identity_conversion() {
        assert_eq!(Unit::Lux.convert(410.0, Unit::Lux).unwrap(), 410.0);
    }

    #[test]
    fn cross_dimension_rejected() {
        let err = Unit::Celsius.convert(20.0, Unit::Watt).unwrap_err();
        assert!(matches!(err, CoreError::IncompatibleUnits { .. }));
    }

    #[test]
    fn conversion_round_trip_is_stable() {
        for &(a, b) in &[
            (Unit::Celsius, Unit::Kelvin),
            (Unit::Kilowatt, Unit::Watt),
            (Unit::KilowattHour, Unit::Megajoule),
            (Unit::LitrePerSecond, Unit::CubicMetrePerHour),
        ] {
            let x = 123.456;
            let there = a.convert(x, b).unwrap();
            let back = b.convert(there, a).unwrap();
            assert!((back - x).abs() < 1e-9, "{a} <-> {b}");
        }
    }
}
