//! The dynamic value tree of the common data format.
//!
//! Every proxy translates its source representation into a [`Value`];
//! the [`json`](crate::json) and [`xml`](crate::xml) codecs serialize it.
//! `Value` mirrors the JSON data model (null, bool, integer/float, string,
//! array, object) with objects keeping deterministic (sorted) key order so
//! encodings are reproducible.

use std::collections::BTreeMap;
use std::fmt;

use crate::CoreError;

/// A dynamically typed value in the common data format.
///
/// ```
/// use dimmer_core::Value;
/// let v = Value::object([
///     ("name", Value::from("building-7")),
///     ("floors", Value::from(4)),
///     ("heated", Value::from(true)),
/// ]);
/// assert_eq!(v.get("floors").and_then(Value::as_i64), Some(4));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// The absent value.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float. Never NaN (constructors reject it).
    Float(f64),
    /// A UTF-8 string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// A key-sorted map.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K, I>(pairs: I) -> Value
    where
        K: Into<String>,
        I: IntoIterator<Item = (K, Value)>,
    {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::Array(items.into_iter().collect())
    }

    /// The member `key` of an object, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The element at `index` of an array, if in range.
    pub fn at(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// Follows a `/`-separated path of object keys and array indices.
    ///
    /// ```
    /// use dimmer_core::Value;
    /// let v = Value::object([("rooms", Value::array([Value::from("r1")]))]);
    /// assert_eq!(v.pointer("rooms/0").and_then(Value::as_str), Some("r1"));
    /// ```
    pub fn pointer(&self, path: &str) -> Option<&Value> {
        let mut cur = self;
        for seg in path.split('/').filter(|s| !s.is_empty()) {
            cur = match cur {
                Value::Object(map) => map.get(seg)?,
                Value::Array(items) => items.get(seg.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// This value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as an integer (exact floats included).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(*f as i64),
            _ => None,
        }
    }

    /// This value as a float (integers widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// This value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// This value as an object map, if it is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Required-member accessor used when decoding structured types.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] naming `target` when the member is
    /// absent or `self` is not an object.
    pub fn require(&self, target: &'static str, key: &str) -> Result<&Value, CoreError> {
        self.get(key).ok_or_else(|| CoreError::Shape {
            target,
            reason: format!("missing member {key:?}"),
        })
    }

    /// Required string member.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] if absent or not a string.
    pub fn require_str(&self, target: &'static str, key: &str) -> Result<&str, CoreError> {
        self.require(target, key)?
            .as_str()
            .ok_or_else(|| CoreError::Shape {
                target,
                reason: format!("member {key:?} is not a string"),
            })
    }

    /// Required numeric member.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] if absent or not numeric.
    pub fn require_f64(&self, target: &'static str, key: &str) -> Result<f64, CoreError> {
        self.require(target, key)?
            .as_f64()
            .ok_or_else(|| CoreError::Shape {
                target,
                reason: format!("member {key:?} is not a number"),
            })
    }

    /// Required integer member.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] if absent or not an integer.
    pub fn require_i64(&self, target: &'static str, key: &str) -> Result<i64, CoreError> {
        self.require(target, key)?
            .as_i64()
            .ok_or_else(|| CoreError::Shape {
                target,
                reason: format!("member {key:?} is not an integer"),
            })
    }

    /// Required array member.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] if absent or not an array.
    pub fn require_array(&self, target: &'static str, key: &str) -> Result<&[Value], CoreError> {
        self.require(target, key)?
            .as_array()
            .ok_or_else(|| CoreError::Shape {
                target,
                reason: format!("member {key:?} is not an array"),
            })
    }

    /// Inserts `key` into an object value, turning `Null` into an empty
    /// object first. Returns the previous value, if any.
    ///
    /// # Panics
    ///
    /// Panics if `self` is neither an object nor `Null`.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        if self.is_null() {
            *self = Value::Object(BTreeMap::new());
        }
        match self {
            Value::Object(map) => map.insert(key.into(), value),
            other => panic!("cannot insert into {}", other.type_name()),
        }
    }

    /// A short name of the variant, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Deep size: the number of leaf values in the tree.
    pub fn leaf_count(&self) -> usize {
        match self {
            Value::Array(items) => items.iter().map(Value::leaf_count).sum(),
            Value::Object(map) => map.values().map(Value::leaf_count).sum(),
            _ => 1,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    /// # Panics
    ///
    /// Panics if `f` is NaN; the common data format has no NaN.
    fn from(f: f64) -> Self {
        assert!(!f.is_nan(), "NaN cannot enter the common data format");
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl<V: Into<Value>> FromIterator<V> for Value {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        Value::Array(iter.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Value {
    /// Displays as compact JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::json::to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::object([
            ("id", Value::from("b1")),
            ("floors", Value::from(4)),
            ("area", Value::from(1250.5)),
            (
                "rooms",
                Value::array([Value::from("r1"), Value::from("r2")]),
            ),
            ("meta", Value::object([("heated", Value::from(true))])),
        ])
    }

    #[test]
    fn accessors() {
        let v = sample();
        assert_eq!(v.get("id").and_then(Value::as_str), Some("b1"));
        assert_eq!(v.get("floors").and_then(Value::as_i64), Some(4));
        assert_eq!(v.get("area").and_then(Value::as_f64), Some(1250.5));
        assert_eq!(
            v.get("rooms").and_then(|r| r.at(1)).and_then(Value::as_str),
            Some("r2")
        );
        assert!(v.get("nope").is_none());
        assert!(Value::Null.is_null());
    }

    #[test]
    fn pointer_paths() {
        let v = sample();
        assert_eq!(
            v.pointer("meta/heated").and_then(Value::as_bool),
            Some(true)
        );
        assert_eq!(v.pointer("rooms/0").and_then(Value::as_str), Some("r1"));
        assert!(v.pointer("rooms/7").is_none());
        assert!(v.pointer("rooms/x").is_none());
        assert_eq!(v.pointer(""), Some(&v));
    }

    #[test]
    fn int_float_bridging() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(3.0).as_i64(), Some(3));
        assert_eq!(Value::Float(3.5).as_i64(), None);
        assert_eq!(Value::Str("3".into()).as_i64(), None);
    }

    #[test]
    fn require_reports_shape_errors() {
        let v = sample();
        assert!(v.require_str("building", "id").is_ok());
        let err = v.require_str("building", "floors").unwrap_err();
        assert!(err.to_string().contains("not a string"));
        let err = v.require("building", "ghost").unwrap_err();
        assert!(err.to_string().contains("missing member"));
    }

    #[test]
    fn insert_upgrades_null() {
        let mut v = Value::Null;
        v.insert("a", Value::from(1));
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(1));
        let old = v.insert("a", Value::from(2));
        assert_eq!(old.and_then(|o| o.as_i64()), Some(1));
    }

    #[test]
    #[should_panic(expected = "cannot insert")]
    fn insert_into_scalar_panics() {
        Value::from(1).insert("x", Value::Null);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Value::from(f64::NAN);
    }

    #[test]
    fn leaf_count_counts_scalars() {
        assert_eq!(sample().leaf_count(), 6);
        assert_eq!(Value::Null.leaf_count(), 1);
    }

    #[test]
    fn from_iterator_collects_array() {
        let v: Value = (1..=3).map(Value::from).collect();
        assert_eq!(v.as_array().map(<[Value]>::len), Some(3));
    }

    #[test]
    fn object_keys_sorted() {
        let v = Value::object([("z", Value::Null), ("a", Value::Null)]);
        let keys: Vec<&str> = v.as_object().unwrap().keys().map(String::as_str).collect();
        assert_eq!(keys, vec!["a", "z"]);
    }
}
