//! # dimmer-core — the common data model
//!
//! The paper's central problem is heterogeneity: BIM, SIM, GIS and
//! measurement databases plus four device protocols, each with its own
//! representation. Every proxy translates its source into *one* shared
//! model, serialized in an open standard format (JSON or XML). This crate
//! is that shared model:
//!
//! * typed identifiers for districts, buildings, networks, devices and
//!   proxies ([`id`]);
//! * [`Uri`]s, the addressing currency the master node hands out;
//! * physical [`units`] and [`quantity`] kinds;
//! * [`Measurement`]s and batches thereof;
//! * civil [`Timestamp`]s;
//! * the dynamic [`Value`] tree plus [`json`] and [`xml`] codecs and the
//!   format-agnostic [`codec`] entry points.
//!
//! ## Example: translating to the common format
//!
//! ```
//! use dimmer_core::{Measurement, QuantityKind, Unit, Timestamp, DeviceId};
//! use dimmer_core::codec::{self, DataFormat};
//!
//! # fn main() -> Result<(), dimmer_core::CoreError> {
//! let m = Measurement::new(
//!     DeviceId::new("urn:dev:0042")?,
//!     QuantityKind::Temperature,
//!     21.5,
//!     Unit::Celsius,
//!     Timestamp::from_unix_seconds(1_420_070_400),
//! );
//! let json = codec::encode_measurement(&m, DataFormat::Json);
//! let back = codec::decode_measurement(&json, DataFormat::Json)?;
//! assert_eq!(m, back);
//! # Ok(())
//! # }
//! ```

pub mod codec;
pub mod id;
pub mod json;
pub mod measure;
pub mod quantity;
pub mod timestamp;
pub mod units;
pub mod uri;
pub mod value;
pub mod xml;

mod error;

pub use error::CoreError;
pub use id::{BuildingId, DeviceId, DistrictId, EntityKind, NetworkId, ProxyId};
pub use measure::{Measurement, MeasurementBatch};
pub use quantity::QuantityKind;
pub use timestamp::Timestamp;
pub use units::Unit;
pub use uri::Uri;
pub use value::Value;
