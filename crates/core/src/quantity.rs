//! Quantity kinds — *what* a measurement describes.
//!
//! A [`QuantityKind`] names the observed phenomenon
//! (indoor temperature, active power, …) independently of the unit it was
//! reported in; the ontology indexes device leaves by it so a user can ask
//! for "all power measurements in this area".

use std::fmt;

use crate::units::{Dimension, Unit};
use crate::CoreError;

/// The observed phenomenon of a measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum QuantityKind {
    /// Air temperature.
    Temperature,
    /// Instantaneous active electrical power.
    ActivePower,
    /// Accumulated electrical energy.
    ElectricalEnergy,
    /// Accumulated thermal energy (district heating).
    ThermalEnergy,
    /// RMS voltage.
    Voltage,
    /// RMS current.
    Current,
    /// Water/heat-carrier flow rate.
    FlowRate,
    /// Illuminance.
    Illuminance,
    /// Relative humidity.
    Humidity,
    /// CO₂ concentration.
    Co2,
    /// Occupancy / presence count.
    Occupancy,
    /// Binary actuator or contact state (0/1).
    SwitchState,
}

impl QuantityKind {
    /// The canonical name used in the common data format.
    pub fn as_str(self) -> &'static str {
        match self {
            QuantityKind::Temperature => "temperature",
            QuantityKind::ActivePower => "active_power",
            QuantityKind::ElectricalEnergy => "electrical_energy",
            QuantityKind::ThermalEnergy => "thermal_energy",
            QuantityKind::Voltage => "voltage",
            QuantityKind::Current => "current",
            QuantityKind::FlowRate => "flow_rate",
            QuantityKind::Illuminance => "illuminance",
            QuantityKind::Humidity => "humidity",
            QuantityKind::Co2 => "co2",
            QuantityKind::Occupancy => "occupancy",
            QuantityKind::SwitchState => "switch_state",
        }
    }

    /// Parses a canonical name produced by [`QuantityKind::as_str`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownSymbol`] for anything else.
    pub fn parse(s: &str) -> Result<Self, CoreError> {
        QuantityKind::all()
            .iter()
            .copied()
            .find(|q| q.as_str() == s)
            .ok_or_else(|| CoreError::UnknownSymbol {
                vocabulary: "quantity kind",
                symbol: s.to_owned(),
            })
    }

    /// All quantity kinds.
    pub fn all() -> &'static [QuantityKind] {
        &[
            QuantityKind::Temperature,
            QuantityKind::ActivePower,
            QuantityKind::ElectricalEnergy,
            QuantityKind::ThermalEnergy,
            QuantityKind::Voltage,
            QuantityKind::Current,
            QuantityKind::FlowRate,
            QuantityKind::Illuminance,
            QuantityKind::Humidity,
            QuantityKind::Co2,
            QuantityKind::Occupancy,
            QuantityKind::SwitchState,
        ]
    }

    /// The physical dimension measurements of this kind must have.
    pub fn dimension(self) -> Dimension {
        match self {
            QuantityKind::Temperature => Dimension::Temperature,
            QuantityKind::ActivePower => Dimension::Power,
            QuantityKind::ElectricalEnergy | QuantityKind::ThermalEnergy => Dimension::Energy,
            QuantityKind::Voltage => Dimension::Voltage,
            QuantityKind::Current => Dimension::Current,
            QuantityKind::FlowRate => Dimension::Flow,
            QuantityKind::Illuminance => Dimension::Illuminance,
            QuantityKind::Humidity => Dimension::Humidity,
            QuantityKind::Co2 => Dimension::Concentration,
            QuantityKind::Occupancy | QuantityKind::SwitchState => Dimension::Dimensionless,
        }
    }

    /// The unit this kind is canonically reported in inside the common
    /// data format.
    pub fn canonical_unit(self) -> Unit {
        match self {
            QuantityKind::Temperature => Unit::Celsius,
            QuantityKind::ActivePower => Unit::Watt,
            QuantityKind::ElectricalEnergy => Unit::KilowattHour,
            QuantityKind::ThermalEnergy => Unit::KilowattHour,
            QuantityKind::Voltage => Unit::Volt,
            QuantityKind::Current => Unit::Ampere,
            QuantityKind::FlowRate => Unit::CubicMetrePerHour,
            QuantityKind::Illuminance => Unit::Lux,
            QuantityKind::Humidity => Unit::PercentRelativeHumidity,
            QuantityKind::Co2 => Unit::PartsPerMillion,
            QuantityKind::Occupancy | QuantityKind::SwitchState => Unit::Count,
        }
    }

    /// Whether `unit` is acceptable for this quantity kind.
    pub fn accepts(self, unit: Unit) -> bool {
        unit.dimension() == self.dimension()
    }
}

impl fmt::Display for QuantityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for &q in QuantityKind::all() {
            assert_eq!(QuantityKind::parse(q.as_str()).unwrap(), q);
        }
        assert!(QuantityKind::parse("vibes").is_err());
    }

    #[test]
    fn canonical_unit_matches_dimension() {
        for &q in QuantityKind::all() {
            assert!(
                q.accepts(q.canonical_unit()),
                "{q}: canonical unit has wrong dimension"
            );
        }
    }

    #[test]
    fn accepts_checks_dimension() {
        assert!(QuantityKind::Temperature.accepts(Unit::Kelvin));
        assert!(!QuantityKind::Temperature.accepts(Unit::Watt));
        assert!(QuantityKind::ElectricalEnergy.accepts(Unit::Megajoule));
    }

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &q in QuantityKind::all() {
            assert!(seen.insert(q.as_str()));
        }
    }
}
