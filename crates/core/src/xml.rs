//! XML encoding of the common data format.
//!
//! The paper offers XML as the second open-standard encoding next to
//! JSON. [`Value`] trees map onto a small, self-describing XML dialect:
//!
//! ```xml
//! <value type="object">
//!   <member name="floors" type="int">4</member>
//!   <member name="rooms" type="array">
//!     <item type="string">r1</item>
//!   </member>
//! </value>
//! ```
//!
//! Every element carries a `type` attribute (`null`, `bool`, `int`,
//! `float`, `string`, `array`, `object`); object members carry `name`.
//! The parser is a hand-written pull tokenizer that also skips XML
//! declarations and comments, and decodes the five named entities plus
//! numeric character references.

use std::collections::BTreeMap;

use crate::{CoreError, Value};

/// Serializes a value as a compact XML document.
///
/// ```
/// use dimmer_core::{xml, Value};
/// let v = Value::from(4);
/// assert_eq!(xml::to_string(&v), r#"<value type="int">4</value>"#);
/// ```
pub fn to_string(value: &Value) -> String {
    let mut out = String::with_capacity(128);
    write_element(value, "value", None, &mut out);
    out
}

/// Serializes a value as an XML document with a declaration and
/// two-space indentation.
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    write_element_pretty(value, "value", None, &mut out, 0);
    out.push('\n');
    out
}

fn type_name(value: &Value) -> &'static str {
    value.type_name()
}

fn write_open(tag: &str, name: Option<&str>, ty: &'static str, out: &mut String) {
    out.push('<');
    out.push_str(tag);
    if let Some(n) = name {
        out.push_str(" name=\"");
        escape_into(n, true, out);
        out.push('"');
    }
    out.push_str(" type=\"");
    out.push_str(ty);
    out.push('"');
}

fn write_element(value: &Value, tag: &str, name: Option<&str>, out: &mut String) {
    write_open(tag, name, type_name(value), out);
    match value {
        Value::Null => {
            out.push_str("/>");
        }
        Value::Bool(b) => {
            out.push('>');
            out.push_str(if *b { "true" } else { "false" });
            close(tag, out);
        }
        Value::Int(i) => {
            out.push('>');
            out.push_str(&i.to_string());
            close(tag, out);
        }
        Value::Float(f) => {
            out.push('>');
            out.push_str(&float_text(*f));
            close(tag, out);
        }
        Value::Str(s) => {
            out.push('>');
            escape_into(s, false, out);
            close(tag, out);
        }
        Value::Array(items) => {
            out.push('>');
            for item in items {
                write_element(item, "item", None, out);
            }
            close(tag, out);
        }
        Value::Object(map) => {
            out.push('>');
            for (k, v) in map {
                write_element(v, "member", Some(k), out);
            }
            close(tag, out);
        }
    }
}

fn write_element_pretty(
    value: &Value,
    tag: &str,
    name: Option<&str>,
    out: &mut String,
    indent: usize,
) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            write_open(tag, name, "array", out);
            out.push('>');
            for item in items {
                out.push('\n');
                push_indent(out, indent + 1);
                write_element_pretty(item, "item", None, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            close(tag, out);
        }
        Value::Object(map) if !map.is_empty() => {
            write_open(tag, name, "object", out);
            out.push('>');
            for (k, v) in map {
                out.push('\n');
                push_indent(out, indent + 1);
                write_element_pretty(v, "member", Some(k), out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            close(tag, out);
        }
        other => write_element(other, tag, name, out),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn close(tag: &str, out: &mut String) {
    out.push_str("</");
    out.push_str(tag);
    out.push('>');
}

fn float_text(f: f64) -> String {
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

fn escape_into(s: &str, attribute: bool, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if attribute => out.push_str("&quot;"),
            c if (c as u32) < 0x20 && c != '\n' && c != '\t' && c != '\r' => {
                out.push_str(&format!("&#x{:x};", c as u32));
            }
            '\n' | '\r' | '\t' if attribute => {
                out.push_str(&format!("&#x{:x};", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Parses an XML document in the dialect produced by [`to_string`].
///
/// # Errors
///
/// Returns [`CoreError::ParseXml`] with the byte offset of the first
/// violation.
pub fn from_str(text: &str) -> Result<Value, CoreError> {
    let mut p = XmlParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_misc();
    let (value, tag) = p.parse_element(0)?;
    if tag != "value" {
        return Err(p.err(format!("root element must be <value>, got <{tag}>")));
    }
    p.skip_misc();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value.value)
}

const MAX_DEPTH: usize = 128;

struct Named {
    value: Value,
    name: Option<String>,
}

struct XmlParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl XmlParser<'_> {
    fn err(&self, reason: impl Into<String>) -> CoreError {
        CoreError::ParseXml {
            offset: self.pos,
            reason: reason.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, the XML declaration and comments.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                match self.bytes[self.pos..].windows(2).position(|w| w == b"?>") {
                    Some(i) => self.pos += i + 2,
                    None => {
                        self.pos = self.bytes.len();
                        return;
                    }
                }
            } else if self.starts_with("<!--") {
                match self.bytes[self.pos..].windows(3).position(|w| w == b"-->") {
                    Some(i) => self.pos += i + 3,
                    None => {
                        self.pos = self.bytes.len();
                        return;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, CoreError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b':' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8(self.bytes[start..self.pos].to_vec()).expect("name bytes are ascii"))
    }

    /// Parses one element, returning the value and the element tag.
    fn parse_element(&mut self, depth: usize) -> Result<(Named, String), CoreError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let tag = self.parse_name()?;
        let mut name_attr: Option<String> = None;
        let mut type_attr: Option<String> = None;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    // Self-closing element: only valid for null.
                    let ty = type_attr.as_deref().unwrap_or("null");
                    if ty != "null" {
                        return Err(self.err("self-closing element must be type=\"null\""));
                    }
                    return Ok((
                        Named {
                            value: Value::Null,
                            name: name_attr,
                        },
                        tag,
                    ));
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let attr = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self.peek();
                    if quote != Some(b'"') && quote != Some(b'\'') {
                        return Err(self.err("attribute value must be quoted"));
                    }
                    let quote = quote.expect("peeked");
                    self.pos += 1;
                    let raw_start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = std::str::from_utf8(&self.bytes[raw_start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let decoded = self.decode_entities(raw)?;
                    self.pos += 1;
                    match attr.as_str() {
                        "name" => name_attr = Some(decoded),
                        "type" => type_attr = Some(decoded),
                        _ => {} // unknown attributes are ignored
                    }
                }
                None => return Err(self.err("unexpected end inside tag")),
            }
        }
        let ty = type_attr.ok_or_else(|| self.err("missing type attribute"))?;
        let value = match ty.as_str() {
            "array" | "object" => {
                let mut items = Vec::new();
                let mut map = BTreeMap::new();
                loop {
                    self.skip_ws();
                    if self.starts_with("</") {
                        break;
                    }
                    if self.peek() != Some(b'<') {
                        return Err(self.err("unexpected text inside container"));
                    }
                    let (child, child_tag) = self.parse_element(depth + 1)?;
                    if ty == "array" {
                        if child_tag != "item" {
                            return Err(self.err("array children must be <item>"));
                        }
                        items.push(child.value);
                    } else {
                        if child_tag != "member" {
                            return Err(self.err("object children must be <member>"));
                        }
                        let key = child
                            .name
                            .ok_or_else(|| self.err("member missing name attribute"))?;
                        map.insert(key, child.value);
                    }
                }
                if ty == "array" {
                    Value::Array(items)
                } else {
                    Value::Object(map)
                }
            }
            scalar => {
                let raw_start = self.pos;
                while let Some(b) = self.peek() {
                    if b == b'<' {
                        break;
                    }
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.bytes[raw_start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?;
                let text = self.decode_entities(raw)?;
                match scalar {
                    "null" => {
                        if !text.trim().is_empty() {
                            return Err(self.err("null element must be empty"));
                        }
                        Value::Null
                    }
                    "bool" => match text.as_str() {
                        "true" => Value::Bool(true),
                        "false" => Value::Bool(false),
                        _ => return Err(self.err("bool must be 'true' or 'false'")),
                    },
                    "int" => Value::Int(text.parse::<i64>().map_err(|_| self.err("invalid int"))?),
                    "float" => {
                        let f: f64 = text.parse().map_err(|_| self.err("invalid float"))?;
                        if f.is_nan() {
                            return Err(self.err("invalid float"));
                        }
                        Value::Float(f)
                    }
                    "string" => Value::Str(text),
                    other => return Err(self.err(format!("unknown type {other:?}"))),
                }
            }
        };
        // Closing tag.
        if !self.starts_with("</") {
            return Err(self.err("expected closing tag"));
        }
        self.pos += 2;
        let closing = self.parse_name()?;
        if closing != tag {
            return Err(self.err(format!("mismatched closing tag </{closing}> for <{tag}>")));
        }
        self.skip_ws();
        if self.peek() != Some(b'>') {
            return Err(self.err("expected '>' to end closing tag"));
        }
        self.pos += 1;
        Ok((
            Named {
                value,
                name: name_attr,
            },
            tag,
        ))
    }

    fn decode_entities(&self, raw: &str) -> Result<String, CoreError> {
        if !raw.contains('&') {
            return Ok(raw.to_owned());
        }
        let mut out = String::with_capacity(raw.len());
        let mut rest = raw;
        while let Some(i) = rest.find('&') {
            out.push_str(&rest[..i]);
            rest = &rest[i..];
            let end = rest
                .find(';')
                .ok_or_else(|| self.err("unterminated entity"))?;
            let entity = &rest[1..end];
            match entity {
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "amp" => out.push('&'),
                "quot" => out.push('"'),
                "apos" => out.push('\''),
                _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                    let code = u32::from_str_radix(&entity[2..], 16)
                        .map_err(|_| self.err("invalid character reference"))?;
                    out.push(char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?);
                }
                _ if entity.starts_with('#') => {
                    let code: u32 = entity[1..]
                        .parse()
                        .map_err(|_| self.err("invalid character reference"))?;
                    out.push(char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?);
                }
                other => return Err(self.err(format!("unknown entity &{other};"))),
            }
            rest = &rest[end + 1..];
        }
        out.push_str(rest);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) {
        let text = to_string(v);
        assert_eq!(&from_str(&text).unwrap(), v, "compact: {text}");
        let pretty = to_string_pretty(v);
        assert_eq!(&from_str(&pretty).unwrap(), v, "pretty: {pretty}");
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Float(2.5),
            Value::Float(-1e-3),
            Value::Str(String::new()),
            Value::Str("a & b < c > d \" e ' f".into()),
            Value::Str("unicode ü 🌍 and\nnewline".into()),
        ] {
            round_trip(&v);
        }
    }

    #[test]
    fn containers_round_trip() {
        round_trip(&Value::array([]));
        round_trip(&Value::object::<&str, _>([]));
        round_trip(&Value::object([
            ("floors", Value::from(4)),
            (
                "rooms",
                Value::array([Value::from("r1"), Value::Null, Value::from(2.5)]),
            ),
            ("nested", Value::object([("k", Value::from(true))])),
        ]));
    }

    #[test]
    fn exact_compact_form() {
        let v = Value::object([("t", Value::from(21.5))]);
        assert_eq!(
            to_string(&v),
            r#"<value type="object"><member name="t" type="float">21.5</member></value>"#
        );
    }

    #[test]
    fn null_is_self_closing() {
        assert_eq!(to_string(&Value::Null), r#"<value type="null"/>"#);
        assert_eq!(from_str(r#"<value type="null"/>"#).unwrap(), Value::Null);
        assert_eq!(
            from_str(r#"<value type="null"></value>"#).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn declaration_and_comments_skipped() {
        let text = "<?xml version=\"1.0\"?>\n<!-- header -->\n<value type=\"int\">7</value>\n<!-- trailer -->";
        assert_eq!(from_str(text).unwrap(), Value::Int(7));
    }

    #[test]
    fn escaped_names_round_trip() {
        let v = Value::object([("weird \"key\" <&>", Value::from(1))]);
        round_trip(&v);
    }

    #[test]
    fn numeric_entities_decoded() {
        assert_eq!(
            from_str(r#"<value type="string">&#65;&#x42;</value>"#).unwrap(),
            Value::Str("AB".into())
        );
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "<value>",
            r#"<value type="int">7"#,
            r#"<wrong type="int">7</wrong>"#,
            r#"<value type="int">x</value>"#,
            r#"<value type="bool">yes</value>"#,
            r#"<value type="mystery">7</value>"#,
            r#"<value type="int">7</other>"#,
            r#"<value type="object"><item type="int">1</item></value>"#,
            r#"<value type="array"><member type="int">1</member></value>"#,
            r#"<value type="object"><member type="int">1</member></value>"#,
            r#"<value type="string">&bogus;</value>"#,
            r#"<value type="string">&#xFFFFFFFF;</value>"#,
            r#"<value type="int" >7</value> junk"#,
        ] {
            assert!(from_str(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn attribute_quotes_both_styles() {
        assert_eq!(
            from_str("<value type='int'>7</value>").unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn whitespace_tolerated_between_elements() {
        let text = "<value type=\"array\">\n  <item type=\"int\">1</item>\n  <item type=\"int\">2</item>\n</value>";
        assert_eq!(
            from_str(text).unwrap(),
            Value::array([Value::from(1), Value::from(2)])
        );
    }

    #[test]
    fn deep_nesting_bounded() {
        let mut text = String::new();
        for _ in 0..200 {
            text.push_str("<value type=\"array\"><item type=\"array\">");
        }
        assert!(from_str(&text).is_err());
    }

    #[test]
    fn xml_is_larger_than_json() {
        // Documented size trade-off exercised by experiment E4.
        let v = Value::object([
            ("a", Value::from(1)),
            ("b", Value::from("text")),
            ("c", Value::array([Value::from(1.5), Value::from(2.5)])),
        ]);
        assert!(to_string(&v).len() > crate::json::to_string(&v).len());
    }
}
