//! Typed identifiers for district entities.
//!
//! Every entity in the ontology — district, building, distribution
//! network, device, proxy — is addressed by a string identifier with a
//! common grammar: non-empty, at most 128 bytes, drawn from
//! `[A-Za-z0-9._:-]`. The newtypes prevent a building id from being used
//! where a device id is expected ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

use crate::CoreError;

fn validate(kind: &'static str, s: &str) -> Result<(), CoreError> {
    if s.is_empty() {
        return Err(CoreError::InvalidId {
            kind,
            input: s.to_owned(),
            reason: "empty",
        });
    }
    if s.len() > 128 {
        return Err(CoreError::InvalidId {
            kind,
            input: s.to_owned(),
            reason: "longer than 128 bytes",
        });
    }
    if let Some(bad) = s
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | ':' | '-')))
    {
        let _ = bad;
        return Err(CoreError::InvalidId {
            kind,
            input: s.to_owned(),
            reason: "contains a character outside [A-Za-z0-9._:-]",
        });
    }
    Ok(())
}

macro_rules! string_id {
    ($(#[$doc:meta])* $name:ident, $kind:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(String);

        impl $name {
            /// Creates the identifier, validating the grammar.
            ///
            /// # Errors
            ///
            /// Returns [`CoreError::InvalidId`] if the string is empty,
            /// longer than 128 bytes, or contains a character outside
            /// `[A-Za-z0-9._:-]`.
            pub fn new(s: impl Into<String>) -> Result<Self, CoreError> {
                let s = s.into();
                validate($kind, &s)?;
                Ok($name(s))
            }

            /// The identifier as a string slice.
            pub fn as_str(&self) -> &str {
                &self.0
            }

            /// Consumes the identifier, returning the inner string.
            pub fn into_inner(self) -> String {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }

        impl std::str::FromStr for $name {
            type Err = CoreError;
            fn from_str(s: &str) -> Result<Self, CoreError> {
                $name::new(s)
            }
        }
    };
}

string_id!(
    /// Identifies one city district.
    DistrictId,
    "district"
);
string_id!(
    /// Identifies one building within a district.
    BuildingId,
    "building"
);
string_id!(
    /// Identifies one energy-distribution network (electricity feeder,
    /// district-heating loop, …).
    NetworkId,
    "network"
);
string_id!(
    /// Identifies one sensing or actuating device.
    DeviceId,
    "device"
);
string_id!(
    /// Identifies one proxy instance registered on the master node.
    ProxyId,
    "proxy"
);

/// The kind of entity an ontology node describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EntityKind {
    /// A district tree root.
    District,
    /// A building intermediate node.
    Building,
    /// An energy-distribution-network intermediate node.
    Network,
    /// A device leaf.
    Device,
}

impl EntityKind {
    /// The canonical lowercase name used in the common data format.
    pub fn as_str(self) -> &'static str {
        match self {
            EntityKind::District => "district",
            EntityKind::Building => "building",
            EntityKind::Network => "network",
            EntityKind::Device => "device",
        }
    }

    /// Parses the canonical name produced by [`EntityKind::as_str`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownSymbol`] for anything else.
    pub fn parse(s: &str) -> Result<Self, CoreError> {
        match s {
            "district" => Ok(EntityKind::District),
            "building" => Ok(EntityKind::Building),
            "network" => Ok(EntityKind::Network),
            "device" => Ok(EntityKind::Device),
            other => Err(CoreError::UnknownSymbol {
                vocabulary: "entity kind",
                symbol: other.to_owned(),
            }),
        }
    }

    /// All entity kinds, root first.
    pub fn all() -> [EntityKind; 4] {
        [
            EntityKind::District,
            EntityKind::Building,
            EntityKind::Network,
            EntityKind::Device,
        ]
    }
}

impl fmt::Display for EntityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_reasonable_ids() {
        for ok in ["b1", "urn:dev:0042", "campus.north_wing-2", "A:B:c.9"] {
            assert!(BuildingId::new(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn rejects_bad_ids() {
        assert!(DeviceId::new("").is_err());
        assert!(DeviceId::new("has space").is_err());
        assert!(DeviceId::new("slash/id").is_err());
        assert!(DeviceId::new("é").is_err());
        assert!(DeviceId::new("x".repeat(129)).is_err());
        assert!(DeviceId::new("x".repeat(128)).is_ok());
    }

    #[test]
    fn ids_round_trip_through_str() {
        let id: DistrictId = "turin-north".parse().unwrap();
        assert_eq!(id.as_str(), "turin-north");
        assert_eq!(id.to_string(), "turin-north");
        assert_eq!(id.clone().into_inner(), "turin-north");
        assert_eq!(id.as_ref(), "turin-north");
    }

    #[test]
    fn distinct_types_do_not_compare() {
        // Compile-time property: BuildingId and DeviceId are different
        // types; this test just documents the intent.
        let b = BuildingId::new("x").unwrap();
        let d = DeviceId::new("x").unwrap();
        assert_eq!(b.as_str(), d.as_str());
    }

    #[test]
    fn entity_kind_round_trip() {
        for kind in EntityKind::all() {
            assert_eq!(EntityKind::parse(kind.as_str()).unwrap(), kind);
        }
        assert!(EntityKind::parse("sensorz").is_err());
    }

    #[test]
    fn error_mentions_kind() {
        let err = NetworkId::new("bad id").unwrap_err();
        assert!(err.to_string().contains("network"));
    }
}
