//! Civil timestamps for measurement data.
//!
//! A [`Timestamp`] is a count of milliseconds since the Unix epoch (UTC).
//! It formats to and parses from the ISO 8601 profile used in the common
//! data format: `YYYY-MM-DDThh:mm:ss[.mmm]Z`. The civil-date conversion
//! uses Howard Hinnant's `days_from_civil` algorithm, exact over the whole
//! supported range.

use std::fmt;
use std::ops::{Add, Sub};

use crate::CoreError;

/// Milliseconds since `1970-01-01T00:00:00Z`.
///
/// ```
/// use dimmer_core::Timestamp;
/// let t = Timestamp::from_unix_seconds(1_425_859_200); // 2015-03-09
/// assert_eq!(t.to_string(), "2015-03-09T00:00:00Z");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(i64);

/// Broken-down UTC civil time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CivilTime {
    /// Full year, e.g. 2015.
    pub year: i32,
    /// Month 1–12.
    pub month: u8,
    /// Day of month 1–31.
    pub day: u8,
    /// Hour 0–23.
    pub hour: u8,
    /// Minute 0–59.
    pub minute: u8,
    /// Second 0–59.
    pub second: u8,
    /// Millisecond 0–999.
    pub millisecond: u16,
}

/// Days since epoch of civil date (Hinnant's `days_from_civil`).
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m as i32 + 9) % 12); // [0, 11]
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date from days since epoch (Hinnant's `civil_from_days`).
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

impl Timestamp {
    /// The Unix epoch.
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Creates a timestamp from milliseconds since the Unix epoch.
    pub const fn from_unix_millis(millis: i64) -> Self {
        Timestamp(millis)
    }

    /// Creates a timestamp from whole seconds since the Unix epoch.
    pub const fn from_unix_seconds(secs: i64) -> Self {
        Timestamp(secs * 1000)
    }

    /// Creates a timestamp from a civil UTC date and time.
    ///
    /// # Panics
    ///
    /// Panics if a field is out of range (month 1–12, day 1–31, hour < 24,
    /// minute/second < 60, millisecond < 1000). Day overflow within a
    /// month (e.g. Feb 30) is *not* detected; use [`Timestamp::civil`] to
    /// normalize if needed.
    pub fn from_civil(civil: CivilTime) -> Self {
        let CivilTime {
            year,
            month,
            day,
            hour,
            minute,
            second,
            millisecond,
        } = civil;
        assert!((1..=12).contains(&month), "month out of range");
        assert!((1..=31).contains(&day), "day out of range");
        assert!(hour < 24 && minute < 60 && second < 60, "time out of range");
        assert!(millisecond < 1000, "millisecond out of range");
        let days = days_from_civil(year, month, day);
        let secs =
            days * 86_400 + i64::from(hour) * 3_600 + i64::from(minute) * 60 + i64::from(second);
        Timestamp(secs * 1000 + i64::from(millisecond))
    }

    /// Milliseconds since the Unix epoch.
    pub const fn as_unix_millis(self) -> i64 {
        self.0
    }

    /// Whole seconds since the Unix epoch (truncating).
    pub const fn as_unix_seconds(self) -> i64 {
        self.0.div_euclid(1000)
    }

    /// The broken-down UTC representation.
    pub fn civil(self) -> CivilTime {
        let millis = self.0.rem_euclid(1000) as u16;
        let secs = self.0.div_euclid(1000);
        let days = secs.div_euclid(86_400);
        let sod = secs.rem_euclid(86_400);
        let (year, month, day) = civil_from_days(days);
        CivilTime {
            year,
            month,
            day,
            hour: (sod / 3600) as u8,
            minute: (sod % 3600 / 60) as u8,
            second: (sod % 60) as u8,
            millisecond: millis,
        }
    }

    /// Parses the ISO 8601 profile `YYYY-MM-DDThh:mm:ss[.mmm]Z`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ParseTimestamp`] on any deviation.
    pub fn parse(s: &str) -> Result<Self, CoreError> {
        let err = || CoreError::ParseTimestamp {
            input: s.to_owned(),
        };
        let bytes = s.as_bytes();
        if bytes.len() < 20 || bytes[bytes.len() - 1] != b'Z' {
            return Err(err());
        }
        let body = &s[..s.len() - 1];
        let (date, time) = body.split_once('T').ok_or_else(err)?;
        let mut dp = date.split('-');
        let year: i32 = dp.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let month: u8 = dp.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let day: u8 = dp.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        if dp.next().is_some() {
            return Err(err());
        }
        let (hms, millis) = match time.split_once('.') {
            Some((hms, frac)) => {
                if frac.len() != 3 {
                    return Err(err());
                }
                (hms, frac.parse::<u16>().map_err(|_| err())?)
            }
            None => (time, 0),
        };
        let mut tp = hms.split(':');
        let hour: u8 = tp.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let minute: u8 = tp.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let second: u8 = tp.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        if tp.next().is_some() {
            return Err(err());
        }
        if !(1..=12).contains(&month)
            || !(1..=31).contains(&day)
            || hour >= 24
            || minute >= 60
            || second >= 60
        {
            return Err(err());
        }
        Ok(Timestamp::from_civil(CivilTime {
            year,
            month,
            day,
            hour,
            minute,
            second,
            millisecond: millis,
        }))
    }
}

impl Add<i64> for Timestamp {
    type Output = Timestamp;
    /// Adds `millis` milliseconds.
    fn add(self, millis: i64) -> Timestamp {
        Timestamp(self.0 + millis)
    }
}

impl Sub for Timestamp {
    type Output = i64;
    /// The difference in milliseconds.
    fn sub(self, rhs: Timestamp) -> i64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.civil();
        write!(
            f,
            "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}",
            c.year, c.month, c.day, c.hour, c.minute, c.second
        )?;
        if c.millisecond != 0 {
            write!(f, ".{:03}", c.millisecond)?;
        }
        f.write_str("Z")
    }
}

impl std::str::FromStr for Timestamp {
    type Err = CoreError;
    fn from_str(s: &str) -> Result<Self, CoreError> {
        Timestamp::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        let c = Timestamp::EPOCH.civil();
        assert_eq!((c.year, c.month, c.day), (1970, 1, 1));
        assert_eq!((c.hour, c.minute, c.second, c.millisecond), (0, 0, 0, 0));
    }

    #[test]
    fn known_dates() {
        // DATE 2015 opened 2015-03-09 in Grenoble.
        let t = Timestamp::from_civil(CivilTime {
            year: 2015,
            month: 3,
            day: 9,
            hour: 9,
            minute: 30,
            second: 0,
            millisecond: 0,
        });
        assert_eq!(t.as_unix_seconds(), 1_425_893_400);
        assert_eq!(t.to_string(), "2015-03-09T09:30:00Z");
    }

    #[test]
    fn display_parse_round_trip() {
        for s in [
            "1970-01-01T00:00:00Z",
            "2015-03-09T09:30:00Z",
            "1999-12-31T23:59:59.999Z",
            "2038-01-19T03:14:08Z",
            "1969-07-20T20:17:40Z",
        ] {
            let t = Timestamp::parse(s).unwrap();
            assert_eq!(t.to_string(), s, "{s}");
        }
    }

    #[test]
    fn civil_round_trip_across_years() {
        // Every 1000th second over ~4 months, plus leap-year boundaries.
        for secs in (0..10_000_000i64).step_by(997_003) {
            let t = Timestamp::from_unix_seconds(secs);
            let c = t.civil();
            assert_eq!(Timestamp::from_civil(c), t);
        }
        // 2000 was a leap year (divisible by 400), 1900 was not.
        let feb29 = Timestamp::parse("2000-02-29T12:00:00Z").unwrap();
        assert_eq!(feb29.civil().day, 29);
    }

    #[test]
    fn negative_times_before_epoch() {
        let t = Timestamp::from_unix_seconds(-1);
        let c = t.civil();
        assert_eq!((c.year, c.month, c.day), (1969, 12, 31));
        assert_eq!((c.hour, c.minute, c.second), (23, 59, 59));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "2015-03-09",
            "2015-03-09T09:30:00",
            "2015-13-09T09:30:00Z",
            "2015-03-32T09:30:00Z",
            "2015-03-09T24:30:00Z",
            "2015-03-09T09:61:00Z",
            "2015-03-09T09:30:00.12Z",
            "2015-03-09 09:30:00Z",
            "garbage",
        ] {
            assert!(Timestamp::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_unix_seconds(100);
        assert_eq!(t + 500, Timestamp::from_unix_millis(100_500));
        assert_eq!((t + 500) - t, 500);
    }

    #[test]
    #[should_panic(expected = "month")]
    fn from_civil_validates() {
        Timestamp::from_civil(CivilTime {
            year: 2015,
            month: 0,
            day: 1,
            hour: 0,
            minute: 0,
            second: 0,
            millisecond: 0,
        });
    }
}
