//! Format-agnostic encode/decode entry points.
//!
//! The infrastructure lets every client pick its open-standard encoding —
//! JSON or XML — per request (`?fmt=`). This module is the single switch
//! point so higher layers never match on the format themselves.

use std::fmt;

use crate::{json, xml, CoreError, Measurement, MeasurementBatch, Value};

/// An open-standard encoding of the common data format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum DataFormat {
    /// JSON (RFC 8259), the default.
    #[default]
    Json,
    /// The XML dialect of [`crate::xml`].
    Xml,
}

impl DataFormat {
    /// The lowercase name used in `fmt=` query parameters.
    pub fn as_str(self) -> &'static str {
        match self {
            DataFormat::Json => "json",
            DataFormat::Xml => "xml",
        }
    }

    /// Parses a `fmt=` query value.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownSymbol`] for anything but `json`/`xml`.
    pub fn parse(s: &str) -> Result<Self, CoreError> {
        match s {
            "json" => Ok(DataFormat::Json),
            "xml" => Ok(DataFormat::Xml),
            other => Err(CoreError::UnknownSymbol {
                vocabulary: "data format",
                symbol: other.to_owned(),
            }),
        }
    }

    /// Both formats.
    pub fn all() -> [DataFormat; 2] {
        [DataFormat::Json, DataFormat::Xml]
    }
}

impl fmt::Display for DataFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Encodes a value in the chosen format.
pub fn encode_value(value: &Value, format: DataFormat) -> String {
    match format {
        DataFormat::Json => json::to_string(value),
        DataFormat::Xml => xml::to_string(value),
    }
}

/// Decodes text in the chosen format.
///
/// # Errors
///
/// Returns the format's parse error.
pub fn decode_value(text: &str, format: DataFormat) -> Result<Value, CoreError> {
    match format {
        DataFormat::Json => json::from_str(text),
        DataFormat::Xml => xml::from_str(text),
    }
}

/// Encodes a measurement in the chosen format.
pub fn encode_measurement(m: &Measurement, format: DataFormat) -> String {
    encode_value(&m.to_value(), format)
}

/// Decodes a measurement from text in the chosen format.
///
/// # Errors
///
/// Returns a parse error or a [`CoreError::Shape`] error.
pub fn decode_measurement(text: &str, format: DataFormat) -> Result<Measurement, CoreError> {
    Measurement::from_value(&decode_value(text, format)?)
}

/// Encodes a measurement batch in the chosen format.
pub fn encode_batch(batch: &MeasurementBatch, format: DataFormat) -> String {
    encode_value(&batch.to_value(), format)
}

/// Decodes a measurement batch from text in the chosen format.
///
/// # Errors
///
/// Returns a parse error or a [`CoreError::Shape`] error.
pub fn decode_batch(text: &str, format: DataFormat) -> Result<MeasurementBatch, CoreError> {
    MeasurementBatch::from_value(&decode_value(text, format)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceId, QuantityKind, Timestamp, Unit};

    fn sample() -> Measurement {
        Measurement::new(
            DeviceId::new("dev-9").unwrap(),
            QuantityKind::Co2,
            417.0,
            Unit::PartsPerMillion,
            Timestamp::from_unix_seconds(1_425_900_000),
        )
    }

    #[test]
    fn format_names_round_trip() {
        for f in DataFormat::all() {
            assert_eq!(DataFormat::parse(f.as_str()).unwrap(), f);
        }
        assert!(DataFormat::parse("yaml").is_err());
        assert_eq!(DataFormat::default(), DataFormat::Json);
    }

    #[test]
    fn measurement_round_trips_in_both_formats() {
        let m = sample();
        for f in DataFormat::all() {
            let text = encode_measurement(&m, f);
            assert_eq!(decode_measurement(&text, f).unwrap(), m, "{f}");
        }
    }

    #[test]
    fn batch_round_trips_in_both_formats() {
        let batch: MeasurementBatch = (0..3).map(|_| sample()).collect();
        for f in DataFormat::all() {
            let text = encode_batch(&batch, f);
            assert_eq!(decode_batch(&text, f).unwrap(), batch, "{f}");
        }
    }

    #[test]
    fn cross_format_decode_fails_cleanly() {
        let m = sample();
        let as_json = encode_measurement(&m, DataFormat::Json);
        assert!(decode_measurement(&as_json, DataFormat::Xml).is_err());
        let as_xml = encode_measurement(&m, DataFormat::Xml);
        assert!(decode_measurement(&as_xml, DataFormat::Json).is_err());
    }

    #[test]
    fn value_switch_points_agree_with_direct_codecs() {
        let v = Value::object([("x", Value::from(1))]);
        assert_eq!(encode_value(&v, DataFormat::Json), json::to_string(&v));
        assert_eq!(encode_value(&v, DataFormat::Xml), xml::to_string(&v));
        assert_eq!(
            decode_value(&json::to_string(&v), DataFormat::Json).unwrap(),
            v
        );
    }
}
