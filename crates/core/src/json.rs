//! JSON encoding of the common data format.
//!
//! A complete, dependency-free JSON writer and recursive-descent parser
//! for [`Value`]. The paper names JSON as one of the two open standards
//! proxies translate into; owning the codec keeps the translation cost
//! measurable (experiment E4).
//!
//! Conformance notes: the writer emits UTF-8 with minimal escaping; the
//! parser accepts RFC 8259 JSON with the usual limits (numbers are `i64`
//! when lossless, `f64` otherwise; `\uXXXX` escapes including surrogate
//! pairs are decoded; duplicate keys keep the last occurrence).

use std::collections::BTreeMap;

use crate::{CoreError, Value};

/// Serializes a value as compact JSON.
///
/// ```
/// use dimmer_core::{json, Value};
/// let v = Value::object([("t", Value::from(21.5))]);
/// assert_eq!(json::to_string(&v), r#"{"t":21.5}"#);
/// ```
pub fn to_string(value: &Value) -> String {
    let mut out = String::with_capacity(128);
    write_value(value, &mut out);
    out
}

/// Serializes a value as human-readable JSON with two-space indentation.
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::with_capacity(256);
    write_pretty(value, &mut out, 0);
    out
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(value: &Value, out: &mut String, indent: usize) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(v, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_float(f: f64, out: &mut String) {
    if f.is_infinite() {
        // JSON has no infinity; clamp to the largest finite value.
        out.push_str(if f > 0.0 {
            "1.7976931348623157e308"
        } else {
            "-1.7976931348623157e308"
        });
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a trailing ".0" so the value round-trips as a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        let text = format!("{f}");
        out.push_str(&text);
        // Very large integral floats format without '.' or 'e'; mark them
        // as floats so they do not reparse as integers.
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns [`CoreError::ParseJson`] with the byte offset of the first
/// violation.
pub fn from_str(text: &str) -> Result<Value, CoreError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: impl Into<String>) -> CoreError {
        CoreError::ParseJson {
            offset: self.pos,
            reason: reason.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), CoreError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, CoreError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, CoreError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid keyword (expected {word})")))
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, CoreError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, CoreError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, CoreError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                s.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?,
                );
            }
            match self.bump() {
                Some(b'"') => return Ok(s),
                Some(b'\\') => {
                    let esc = self.bump().ok_or_else(|| self.err("unterminated escape"))?;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                            };
                            s.push(c);
                        }
                        other => {
                            return Err(self.err(format!("invalid escape \\{}", other as char)))
                        }
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, CoreError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, CoreError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        let f: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        if f.is_nan() || f.is_infinite() {
            return Err(self.err("number out of range"));
        }
        Ok(Value::Float(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) {
        let text = to_string(v);
        let back = from_str(&text).unwrap();
        assert_eq!(&back, v, "compact: {text}");
        let pretty = to_string_pretty(v);
        let back = from_str(&pretty).unwrap();
        assert_eq!(&back, v, "pretty: {pretty}");
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Float(1.5),
            Value::Float(-0.001),
            Value::Float(1e300),
            Value::Str(String::new()),
            Value::Str("plain".into()),
            Value::Str("esc \" \\ \n \t \r \u{08} \u{0C} ü 🌍".into()),
        ] {
            round_trip(&v);
        }
    }

    #[test]
    fn containers_round_trip() {
        round_trip(&Value::array([]));
        round_trip(&Value::object::<&str, _>([]));
        round_trip(&Value::object([
            ("a", Value::array([Value::from(1), Value::Null])),
            ("b", Value::object([("c", Value::from("d"))])),
        ]));
    }

    #[test]
    fn float_integers_stay_floats() {
        let v = Value::Float(4.0);
        let text = to_string(&v);
        assert_eq!(text, "4.0");
        assert_eq!(from_str(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = from_str(" { \"a\" : [ 1 , 2.5 , \"x\" ] , \"b\" : null } ").unwrap();
        assert_eq!(v.pointer("a/1").and_then(Value::as_f64), Some(2.5));
        assert!(v.get("b").unwrap().is_null());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str(r#""Aé🌍""#).unwrap(), Value::Str("Aé🌍".into()));
    }

    #[test]
    fn rejects_bad_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "tru",
            "01",
            "1.",
            "1e",
            "--1",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800\"",
            "[1] trailing",
            "+1",
            "'single'",
            "\u{0}",
        ] {
            assert!(from_str(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn error_carries_offset() {
        let err = from_str("[1, x]").unwrap_err();
        match err {
            CoreError::ParseJson { offset, .. } => assert_eq!(offset, 4),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn deep_nesting_bounded() {
        let mut text = String::new();
        for _ in 0..200 {
            text.push('[');
        }
        for _ in 0..200 {
            text.push(']');
        }
        assert!(from_str(&text).is_err());
    }

    #[test]
    fn duplicate_keys_keep_last() {
        let v = from_str(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(2));
    }

    #[test]
    fn big_integers_fall_back_to_float() {
        let v = from_str("123456789012345678901234567890").unwrap();
        assert!(matches!(v, Value::Float(_)));
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::object([("a", Value::array([Value::from(1)]))]);
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains("\n  \"a\": [\n    1\n  ]\n"));
    }

    #[test]
    fn control_chars_escaped() {
        let v = Value::Str("\u{01}".into());
        assert_eq!(to_string(&v), "\"\\u0001\"");
        round_trip(&v);
    }
}
