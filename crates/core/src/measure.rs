//! Measurements — the payload the whole infrastructure moves.

use std::fmt;

use crate::{CoreError, DeviceId, QuantityKind, Timestamp, Unit, Value};

/// One sample reported by a device, in the common data format.
///
/// ```
/// use dimmer_core::{Measurement, DeviceId, QuantityKind, Unit, Timestamp};
/// # fn main() -> Result<(), dimmer_core::CoreError> {
/// let m = Measurement::new(
///     DeviceId::new("dev-1")?,
///     QuantityKind::ActivePower,
///     1.2,
///     Unit::Kilowatt,
///     Timestamp::from_unix_seconds(1_000_000),
/// );
/// // Normalization converts to the quantity's canonical unit.
/// let n = m.normalized()?;
/// assert_eq!(n.unit(), Unit::Watt);
/// assert_eq!(n.value(), 1200.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    device: DeviceId,
    quantity: QuantityKind,
    value: f64,
    unit: Unit,
    timestamp: Timestamp,
}

impl Measurement {
    /// Creates a measurement.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN or if `unit`'s dimension does not match
    /// `quantity` — both indicate a bug in the calling translation layer,
    /// not bad external data (translators validate before constructing).
    pub fn new(
        device: DeviceId,
        quantity: QuantityKind,
        value: f64,
        unit: Unit,
        timestamp: Timestamp,
    ) -> Self {
        assert!(!value.is_nan(), "measurement value must not be NaN");
        assert!(
            quantity.accepts(unit),
            "unit {unit} has the wrong dimension for {quantity}"
        );
        Measurement {
            device,
            quantity,
            value,
            unit,
            timestamp,
        }
    }

    /// The reporting device.
    pub fn device(&self) -> &DeviceId {
        &self.device
    }

    /// The observed phenomenon.
    pub fn quantity(&self) -> QuantityKind {
        self.quantity
    }

    /// The numeric value, in [`Measurement::unit`].
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The unit of [`Measurement::value`].
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// When the sample was taken.
    pub fn timestamp(&self) -> Timestamp {
        self.timestamp
    }

    /// Returns the measurement converted to its quantity's canonical unit.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IncompatibleUnits`] only if the type-level
    /// invariant was somehow violated; for values constructed through
    /// [`Measurement::new`] this cannot happen.
    pub fn normalized(&self) -> Result<Measurement, CoreError> {
        let target = self.quantity.canonical_unit();
        let value = self.unit.convert(self.value, target)?;
        Ok(Measurement {
            device: self.device.clone(),
            quantity: self.quantity,
            value,
            unit: target,
            timestamp: self.timestamp,
        })
    }

    /// Translates to the common data format [`Value`].
    pub fn to_value(&self) -> Value {
        Value::object([
            ("device", Value::from(self.device.as_str())),
            ("quantity", Value::from(self.quantity.as_str())),
            ("value", Value::from(self.value)),
            ("unit", Value::from(self.unit.symbol())),
            ("timestamp", Value::from(self.timestamp.to_string())),
        ])
    }

    /// Decodes a [`Value`] produced by [`Measurement::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] (or a more specific error) when the
    /// value does not describe a measurement.
    pub fn from_value(v: &Value) -> Result<Self, CoreError> {
        const T: &str = "measurement";
        let device = DeviceId::new(v.require_str(T, "device")?)?;
        let quantity = QuantityKind::parse(v.require_str(T, "quantity")?)?;
        let value = v.require_f64(T, "value")?;
        let unit = Unit::parse(v.require_str(T, "unit")?)?;
        let timestamp = Timestamp::parse(v.require_str(T, "timestamp")?)?;
        if value.is_nan() {
            return Err(CoreError::Shape {
                target: T,
                reason: "value is NaN".into(),
            });
        }
        if !quantity.accepts(unit) {
            return Err(CoreError::Shape {
                target: T,
                reason: format!("unit {unit} does not fit quantity {quantity}"),
            });
        }
        Ok(Measurement {
            device,
            quantity,
            value,
            unit,
            timestamp,
        })
    }
}

impl fmt::Display for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}={} {} @ {}",
            self.device, self.quantity, self.value, self.unit, self.timestamp
        )
    }
}

/// An ordered batch of measurements, as served by proxy data endpoints.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MeasurementBatch {
    items: Vec<Measurement>,
}

impl MeasurementBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        MeasurementBatch::default()
    }

    /// Appends a measurement.
    pub fn push(&mut self, m: Measurement) {
        self.items.push(m);
    }

    /// Number of measurements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the batch holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over the measurements.
    pub fn iter(&self) -> std::slice::Iter<'_, Measurement> {
        self.items.iter()
    }

    /// Borrows the measurements as a slice.
    pub fn as_slice(&self) -> &[Measurement] {
        &self.items
    }

    /// Translates to the common data format.
    pub fn to_value(&self) -> Value {
        Value::object([(
            "measurements",
            Value::Array(self.items.iter().map(Measurement::to_value).collect()),
        )])
    }

    /// Decodes a [`Value`] produced by [`MeasurementBatch::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] when the value has the wrong shape.
    pub fn from_value(v: &Value) -> Result<Self, CoreError> {
        let items = v
            .require_array("measurement batch", "measurements")?
            .iter()
            .map(Measurement::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MeasurementBatch { items })
    }
}

impl FromIterator<Measurement> for MeasurementBatch {
    fn from_iter<I: IntoIterator<Item = Measurement>>(iter: I) -> Self {
        MeasurementBatch {
            items: iter.into_iter().collect(),
        }
    }
}

impl Extend<Measurement> for MeasurementBatch {
    fn extend<I: IntoIterator<Item = Measurement>>(&mut self, iter: I) {
        self.items.extend(iter);
    }
}

impl IntoIterator for MeasurementBatch {
    type Item = Measurement;
    type IntoIter = std::vec::IntoIter<Measurement>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a> IntoIterator for &'a MeasurementBatch {
    type Item = &'a Measurement;
    type IntoIter = std::slice::Iter<'a, Measurement>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Measurement {
        Measurement::new(
            DeviceId::new("dev-1").unwrap(),
            QuantityKind::Temperature,
            21.5,
            Unit::Celsius,
            Timestamp::from_unix_seconds(1_425_900_000),
        )
    }

    #[test]
    fn value_round_trip() {
        let m = sample();
        assert_eq!(Measurement::from_value(&m.to_value()).unwrap(), m);
    }

    #[test]
    fn normalization_converts_units() {
        let m = Measurement::new(
            DeviceId::new("dev-2").unwrap(),
            QuantityKind::ElectricalEnergy,
            3.6,
            Unit::Megajoule,
            Timestamp::EPOCH,
        );
        let n = m.normalized().unwrap();
        assert_eq!(n.unit(), Unit::KilowattHour);
        assert!((n.value() - 1.0).abs() < 1e-9);
        assert_eq!(n.device(), m.device());
        assert_eq!(n.timestamp(), m.timestamp());
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn unit_quantity_mismatch_panics() {
        Measurement::new(
            DeviceId::new("d").unwrap(),
            QuantityKind::Temperature,
            1.0,
            Unit::Watt,
            Timestamp::EPOCH,
        );
    }

    #[test]
    fn from_value_validates() {
        let mut v = sample().to_value();
        v.insert("unit", Value::from("W"));
        let err = Measurement::from_value(&v).unwrap_err();
        assert!(err.to_string().contains("does not fit"));

        let mut v = sample().to_value();
        v.insert("timestamp", Value::from("yesterday"));
        assert!(Measurement::from_value(&v).is_err());

        let v = Value::object([("device", Value::from("d"))]);
        assert!(Measurement::from_value(&v).is_err());
    }

    #[test]
    fn batch_round_trip() {
        let batch: MeasurementBatch = (0..5)
            .map(|i| {
                Measurement::new(
                    DeviceId::new(format!("dev-{i}")).unwrap(),
                    QuantityKind::ActivePower,
                    100.0 * i as f64,
                    Unit::Watt,
                    Timestamp::from_unix_seconds(i),
                )
            })
            .collect();
        assert_eq!(batch.len(), 5);
        let back = MeasurementBatch::from_value(&batch.to_value()).unwrap();
        assert_eq!(back, batch);
    }

    #[test]
    fn batch_extend_and_iterate() {
        let mut batch = MeasurementBatch::new();
        assert!(batch.is_empty());
        batch.extend([sample()]);
        batch.push(sample());
        assert_eq!(batch.iter().count(), 2);
        assert_eq!((&batch).into_iter().count(), 2);
        assert_eq!(batch.into_iter().count(), 2);
    }

    #[test]
    fn display_is_informative() {
        let text = sample().to_string();
        assert!(text.contains("dev-1"));
        assert!(text.contains("temperature"));
        assert!(text.contains("degC"));
    }
}
