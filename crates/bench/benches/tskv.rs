//! Criterion micro-benches for the Device-proxy local store (E7
//! companion).

use bench_support::criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use storage::tskv::{Aggregate, TimeSeriesStore};

fn filled(points: usize) -> TimeSeriesStore {
    let mut store = TimeSeriesStore::new();
    for p in 0..points {
        store.insert(
            "dev:temperature",
            p as i64 * 60_000,
            20.0 + (p % 50) as f64 * 0.1,
        );
    }
    store
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("tskv");
    for &points in &[1_000usize, 100_000] {
        let store = filled(points);
        let end = points as i64 * 60_000;
        group.bench_function(format!("insert/{points}_existing"), |b| {
            b.iter_batched(
                || store.clone(),
                |mut s| s.insert("dev:temperature", end + 1, 21.0),
                BatchSize::LargeInput,
            )
        });
        group.bench_function(format!("range_1h/{points}_points"), |b| {
            b.iter(|| {
                store
                    .range("dev:temperature", black_box(end - 3_600_000), end)
                    .len()
            })
        });
        group.bench_function(format!("downsample_24h/{points}_points"), |b| {
            b.iter(|| {
                store
                    .downsample(
                        "dev:temperature",
                        black_box(end - 86_400_000),
                        end,
                        3_600_000,
                        Aggregate::Mean,
                    )
                    .len()
            })
        });
        group.bench_function(format!("latest/{points}_points"), |b| {
            b.iter(|| store.latest(black_box("dev:temperature")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
