//! Criterion micro-benches for the Device-proxy local store (E7
//! companion).

use bench_support::criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use storage::tskv::{Aggregate, TimeSeriesStore, TskvConfig};

fn filled(points: usize) -> TimeSeriesStore {
    // A flat store: everything stays in the mutable head.
    let mut store = TimeSeriesStore::with_config(TskvConfig {
        seal_threshold: usize::MAX,
        wal_checkpoint_records: usize::MAX,
        ..TskvConfig::default()
    });
    for p in 0..points {
        store.insert(
            "dev:temperature",
            p as i64 * 60_000,
            20.0 + (p % 50) as f64 * 0.1,
        );
    }
    store
}

fn sealed(points: usize) -> TimeSeriesStore {
    let mut store = filled(points);
    store.seal_all();
    store.maintain();
    store
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("tskv");
    for &points in &[1_000usize, 100_000] {
        let store = filled(points);
        let end = points as i64 * 60_000;
        group.bench_function(format!("insert/{points}_existing"), |b| {
            b.iter_batched(
                || store.clone(),
                |mut s| s.insert("dev:temperature", end + 1, 21.0),
                BatchSize::LargeInput,
            )
        });
        group.bench_function(format!("range_1h/{points}_points"), |b| {
            b.iter(|| {
                store
                    .range("dev:temperature", black_box(end - 3_600_000), end)
                    .len()
            })
        });
        group.bench_function(format!("downsample_24h/{points}_points"), |b| {
            b.iter(|| {
                store
                    .downsample(
                        "dev:temperature",
                        black_box(end - 86_400_000),
                        end,
                        3_600_000,
                        Aggregate::Mean,
                    )
                    .len()
            })
        });
        group.bench_function(format!("latest/{points}_points"), |b| {
            b.iter(|| store.latest(black_box("dev:temperature")))
        });
        group.bench_function(format!("for_each_1h/{points}_points"), |b| {
            b.iter(|| {
                let mut sum = 0u64;
                store.for_each_in(
                    "dev:temperature",
                    black_box(end - 3_600_000),
                    end,
                    |t, v| {
                        sum = sum.wrapping_add(t as u64 ^ v.to_bits());
                    },
                );
                sum
            })
        });

        let cold = sealed(points);
        group.bench_function(format!("sealed_range_1h/{points}_points"), |b| {
            b.iter(|| {
                cold.range("dev:temperature", black_box(end - 3_600_000), end)
                    .len()
            })
        });
        group.bench_function(format!("sealed_for_each_full/{points}_points"), |b| {
            b.iter(|| {
                let mut sum = 0u64;
                cold.for_each_in("dev:temperature", black_box(i64::MIN), i64::MAX, |t, v| {
                    sum = sum.wrapping_add(t as u64 ^ v.to_bits());
                });
                sum
            })
        });
        // Bucket-aligned hourly means over compacted data are answered
        // from the materialized rollup levels, not the raw points.
        group.bench_function(format!("sealed_downsample_aligned/{points}_points"), |b| {
            b.iter(|| {
                cold.downsample(
                    "dev:temperature",
                    black_box(0),
                    end,
                    3_600_000,
                    Aggregate::Mean,
                )
                .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
