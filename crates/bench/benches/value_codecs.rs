//! Criterion micro-benches for the common-data-format codecs (E4
//! companion).

use bench_support::criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dimmer_core::codec::{self, DataFormat};
use dimmer_core::{DeviceId, Measurement, MeasurementBatch, QuantityKind, Timestamp};
use std::hint::black_box;

fn batch(n: usize) -> MeasurementBatch {
    (0..n)
        .map(|i| {
            Measurement::new(
                DeviceId::new(format!("dev-{i}")).expect("valid"),
                QuantityKind::ActivePower,
                412.5 + i as f64,
                QuantityKind::ActivePower.canonical_unit(),
                Timestamp::from_unix_millis(1_425_859_200_000 + i as i64 * 60_000),
            )
        })
        .collect()
}

fn bench_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("value_codecs");
    for &n in &[10usize, 100] {
        let value = batch(n).to_value();
        for format in DataFormat::all() {
            let text = codec::encode_value(&value, format);
            group.bench_function(format!("encode/{format}/batch_{n}"), |b| {
                b.iter(|| codec::encode_value(black_box(&value), format))
            });
            group.bench_function(format!("decode/{format}/batch_{n}"), |b| {
                b.iter(|| codec::decode_value(black_box(&text), format).expect("valid"))
            });
        }
    }
    group.finish();
}

fn bench_measurement_round_trip(c: &mut Criterion) {
    let m = Measurement::new(
        DeviceId::new("dev-1").expect("valid"),
        QuantityKind::Temperature,
        21.5,
        QuantityKind::Temperature.canonical_unit(),
        Timestamp::from_unix_millis(1_425_859_200_000),
    );
    c.bench_function("measurement/to_value+from_value", |b| {
        b.iter_batched(
            || m.clone(),
            |m| Measurement::from_value(&m.to_value()).expect("round trip"),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_codecs, bench_measurement_round_trip);
criterion_main!(benches);
