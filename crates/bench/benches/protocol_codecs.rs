//! Criterion micro-benches for the protocol codecs (E3 companion).

use bench_support::criterion::{criterion_group, criterion_main, Criterion};
use dimmer_core::QuantityKind;
use protocols::device::{EnoceanSensor, Ieee802154Sensor, UplinkDevice, ZigbeeSensor};
use protocols::enocean::{Eep, Erp1Telegram};
use protocols::ieee802154::{MacFrame, PanId};
use protocols::opcua::{AttributeId, DataValue, Message, NodeId, ReadValueId, Variant};
use protocols::zigbee::ZigbeeFrame;
use std::hint::black_box;

fn bench_frames(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_codecs");

    let mut dev = Ieee802154Sensor::new(PanId(0x23), 0x42, QuantityKind::Temperature);
    let frame = dev.emit(21.5);
    group.bench_function("ieee802154/decode", |b| {
        b.iter(|| MacFrame::decode(black_box(&frame)).expect("valid"))
    });
    let decoded = MacFrame::decode(&frame).expect("valid");
    group.bench_function("ieee802154/encode", |b| {
        b.iter(|| black_box(&decoded).encode())
    });

    let mut dev = ZigbeeSensor::new(0x42, QuantityKind::Temperature);
    let frame = dev.emit(21.5);
    group.bench_function("zigbee/decode", |b| {
        b.iter(|| ZigbeeFrame::decode(black_box(&frame)).expect("valid"))
    });
    let decoded = ZigbeeFrame::decode(&frame).expect("valid");
    group.bench_function("zigbee/encode", |b| b.iter(|| black_box(&decoded).encode()));

    let mut dev = EnoceanSensor::new(0xAB, Eep::A50401);
    let packet = dev.emit(21.5);
    group.bench_function("enocean/from_esp3", |b| {
        b.iter(|| Erp1Telegram::from_esp3(black_box(&packet)).expect("valid"))
    });
    let telegram = Erp1Telegram::from_esp3(&packet).expect("valid");
    group.bench_function("enocean/to_esp3", |b| {
        b.iter(|| black_box(&telegram).to_esp3())
    });

    let request = Message::ReadRequest {
        nodes: vec![ReadValueId {
            node_id: NodeId::string(1, "plant.thermal_energy"),
            attribute: AttributeId::Value,
        }],
    };
    let response = Message::ReadResponse {
        results: vec![DataValue::good(Variant::Double(4321.0), 1_425_859_200_000)],
    };
    let request_bytes = request.encode();
    let response_bytes = response.encode();
    group.bench_function("opcua/decode_request", |b| {
        b.iter(|| Message::decode(black_box(&request_bytes)).expect("valid"))
    });
    group.bench_function("opcua/decode_response", |b| {
        b.iter(|| Message::decode(black_box(&response_bytes)).expect("valid"))
    });
    group.bench_function("opcua/encode_response", |b| {
        b.iter(|| black_box(&response).encode())
    });

    group.finish();
}

criterion_group!(benches, bench_frames);
criterion_main!(benches);
