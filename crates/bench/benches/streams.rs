//! Criterion micro-benches for the windowed stream operators (E11
//! companion): the per-sample observe path, multi-pane sliding
//! assignment, the close drain, and accumulator merging.

use bench_support::criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use simnet::rng::DeterministicRng;
use simnet::telemetry::NO_TRACE;
use std::hint::black_box;
use streams::{Accumulator, WindowSpec, WindowedAggregator};

/// `(key, event time, value)` samples with bounded disorder, the shape
/// the aggregator sees from a district of staggered devices.
fn samples(n: usize, keys: u64, jitter: i64) -> Vec<(u64, i64, f64)> {
    let mut rng = DeterministicRng::seed_from(0xBE7C);
    (0..n)
        .map(|i| {
            let t = i as i64 * 50 + rng.next_range(0, jitter as u64) as i64;
            (rng.next_bounded(keys), t, rng.next_f64_range(-50.0, 50.0))
        })
        .collect()
}

fn bench_streams(c: &mut Criterion) {
    let mut group = c.benchmark_group("streams");
    let feed = samples(10_000, 16, 400);

    group.bench_function("observe_tumbling/10k_samples_16_keys", |b| {
        b.iter_batched(
            || WindowedAggregator::new(WindowSpec::tumbling(60_000), 1_000),
            |mut agg| {
                for &(key, t, value) in &feed {
                    agg.observe(key, t, value, NO_TRACE);
                }
                black_box(agg.stats())
            },
            BatchSize::LargeInput,
        )
    });

    // Sliding with a 4× overlap: every sample lands in four panes.
    group.bench_function("observe_sliding_4x/10k_samples_16_keys", |b| {
        b.iter_batched(
            || WindowedAggregator::new(WindowSpec::sliding(60_000, 15_000), 1_000),
            |mut agg| {
                for &(key, t, value) in &feed {
                    agg.observe(key, t, value, NO_TRACE);
                }
                black_box(agg.stats())
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("observe_then_drain/10k_samples", |b| {
        b.iter_batched(
            || WindowedAggregator::new(WindowSpec::tumbling(60_000), 1_000),
            |mut agg| {
                let mut closed = 0usize;
                for &(key, t, value) in &feed {
                    agg.observe(key, t, value, NO_TRACE);
                    closed += agg.close_ready().len();
                }
                agg.advance_watermark_to(i64::MAX);
                closed += agg.close_ready().len();
                black_box(closed)
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("accumulator_merge/64_buildings", |b| {
        let accs: Vec<Accumulator> = (0..64)
            .map(|i| {
                let mut acc = Accumulator::new();
                for j in 0..32 {
                    acc.add(f64::from(i * 31 + j) * 0.5, NO_TRACE);
                }
                acc
            })
            .collect();
        b.iter(|| {
            let mut district = Accumulator::new();
            for acc in &accs {
                district.merge(acc);
            }
            black_box(district.mean())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_streams);
criterion_main!(benches);
