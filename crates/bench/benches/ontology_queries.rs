//! Criterion micro-benches for ontology resolution (E6 companion).

use bench_support::criterion::{criterion_group, criterion_main, Criterion};
use dimmer_core::{BuildingId, DeviceId, DistrictId, QuantityKind, Uri};
use gis::geo::{BoundingBox, GeoPoint};
use ontology::{DeviceLeaf, EntityNode, Ontology};
use std::hint::black_box;

fn build(buildings: usize, devices_per_building: usize) -> (Ontology, DistrictId) {
    let district = DistrictId::new("bench").expect("valid");
    let mut onto = Ontology::new();
    onto.add_district(district.clone(), "Bench").expect("fresh");
    let grid = (buildings as f64).sqrt().ceil() as usize;
    for b in 0..buildings {
        let lat = 45.0 + 0.001 * (b / grid) as f64;
        let lon = 7.6 + 0.001 * (b % grid) as f64;
        onto.add_building(
            &district,
            EntityNode::building(
                BuildingId::new(format!("b{b}")).expect("valid"),
                Uri::parse(&format!("sim://n{b}/model")).expect("valid"),
            )
            .with_location(GeoPoint::new(lat, lon)),
        )
        .expect("unique");
        for v in 0..devices_per_building {
            onto.add_device(
                &district,
                &format!("b{b}"),
                DeviceLeaf::new(
                    DeviceId::new(format!("b{b}-d{v}")).expect("valid"),
                    "zigbee",
                    if v % 2 == 0 {
                        QuantityKind::Temperature
                    } else {
                        QuantityKind::ActivePower
                    },
                    Uri::parse(&format!("sim://n{b}x{v}/data").replace('x', "0")).expect("valid"),
                ),
            )
            .expect("entity exists");
        }
    }
    (onto, district)
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("ontology_queries");
    for &buildings in &[100usize, 1000] {
        let (onto, district) = build(buildings, 10);
        let small = BoundingBox::new(GeoPoint::new(45.0, 7.6), GeoPoint::new(45.002, 7.602));
        let full = BoundingBox::new(GeoPoint::new(44.9, 7.5), GeoPoint::new(45.2, 7.8));
        group.bench_function(format!("resolve_area_small/{buildings}b"), |b| {
            b.iter(|| {
                onto.resolve_area(black_box(&district), black_box(&small))
                    .expect("exists")
                    .entities
                    .len()
            })
        });
        group.bench_function(format!("resolve_area_full/{buildings}b"), |b| {
            b.iter(|| {
                onto.resolve_area(black_box(&district), black_box(&full))
                    .expect("exists")
                    .devices
                    .len()
            })
        });
        group.bench_function(format!("devices_by_quantity/{buildings}b"), |b| {
            b.iter(|| {
                onto.devices_by_quantity(black_box(&district), QuantityKind::Temperature)
                    .expect("exists")
                    .len()
            })
        });
        group.bench_function(format!("find_device/{buildings}b"), |b| {
            b.iter(|| onto.find_device(black_box("b0-d0")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
