//! Criterion micro-benches for topic matching (E8 companion): the
//! subscription trie against a linear filter scan — the design choice
//! DESIGN.md calls out for the broker.

use bench_support::criterion::{criterion_group, criterion_main, Criterion};
use pubsub::{SubscriptionTrie, Topic, TopicFilter};
use std::hint::black_box;

fn filters(n: usize) -> Vec<TopicFilter> {
    (0..n)
        .map(|i| {
            let text = match i % 4 {
                0 => format!(
                    "district/d{}/entity/b{}/device/dev{}/temperature",
                    i % 3,
                    i % 50,
                    i
                ),
                1 => format!("district/d{}/#", i % 3),
                2 => format!("district/+/entity/b{}/#", i % 50),
                _ => "district/+/entity/+/device/+/active_power".to_owned(),
            };
            TopicFilter::new(text).expect("valid filter")
        })
        .collect()
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("topic_matching");
    let topic = Topic::new("district/d1/entity/b17/device/dev17/temperature").expect("valid topic");
    for &n in &[10usize, 100, 1000] {
        let fs = filters(n);
        let mut trie = SubscriptionTrie::new();
        for (i, f) in fs.iter().enumerate() {
            trie.insert(f, i);
        }
        group.bench_function(format!("trie/{n}_subs"), |b| {
            b.iter(|| trie.matches(black_box(&topic)).len())
        });
        group.bench_function(format!("linear/{n}_subs"), |b| {
            b.iter(|| fs.iter().filter(|f| f.matches(black_box(&topic))).count())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
