//! Criterion micro-benches for the middleware wire codec: the encode
//! and decode paths of a single `Publish` frame and of a batched
//! `BridgeBatch` frame (the federation's O(1)-frames-per-N-publishes
//! claim only pays off if batch encode stays linear and cheap).
//!
//! `wire/decode/*` measures `WirePacketRef::decode` — the borrowed,
//! zero-copy decoder the broker hot path actually runs since PR 6.
//! `wire/decode_owned/*` keeps the materializing `WirePacket::decode`
//! path (borrowed decode + `to_packet`) so the cost of ownership stays
//! visible side by side.

use bench_support::criterion::{criterion_group, criterion_main, Criterion};
use pubsub::{BridgeFrame, QoS, Topic, WirePacket, WirePacketRef};
use std::hint::black_box;

fn publish(i: usize) -> WirePacket {
    WirePacket::Publish {
        id: i as u64,
        topic: Topic::new(format!(
            "district/d{}/entity/b{}/device/dev{}/temperature",
            i % 4,
            i % 50,
            i
        ))
        .expect("valid topic"),
        payload: format!("{{\"value\":{}.25,\"unit\":\"C\",\"seq\":{i}}}", i % 40).into_bytes(),
        retain: i % 2 == 0,
        qos: QoS::AtLeastOnce,
        trace: i as u64,
        span: i as u64 + 1,
    }
}

fn bridge_batch(frames: usize) -> WirePacket {
    WirePacket::BridgeBatch {
        incarnation: 3,
        batch_id: 17,
        frames: (0..frames)
            .map(|i| {
                let WirePacket::Publish {
                    topic,
                    payload,
                    retain,
                    qos,
                    trace,
                    span,
                    ..
                } = publish(i)
                else {
                    unreachable!()
                };
                BridgeFrame {
                    topic,
                    payload,
                    retain,
                    qos,
                    trace,
                    span,
                }
            })
            .collect(),
    }
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");

    let single = publish(17);
    let single_bytes = single.encode();
    group.bench_function("encode/publish", |b| b.iter(|| black_box(&single).encode()));
    group.bench_function("decode/publish", |b| {
        b.iter(|| WirePacketRef::decode(black_box(&single_bytes)).expect("round-trips"))
    });
    group.bench_function("decode_owned/publish", |b| {
        b.iter(|| WirePacket::decode(black_box(&single_bytes)).expect("round-trips"))
    });

    for &n in &[8usize, 64] {
        let batch = bridge_batch(n);
        let batch_bytes = batch.encode();
        group.bench_function(format!("encode/bridge_batch_{n}"), |b| {
            b.iter(|| black_box(&batch).encode())
        });
        group.bench_function(format!("decode/bridge_batch_{n}"), |b| {
            b.iter(|| WirePacketRef::decode(black_box(&batch_bytes)).expect("round-trips"))
        });
        group.bench_function(format!("decode_owned/bridge_batch_{n}"), |b| {
            b.iter(|| WirePacket::decode(black_box(&batch_bytes)).expect("round-trips"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
