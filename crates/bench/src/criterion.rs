//! A minimal, self-contained stand-in for the `criterion` crate.
//!
//! The workspace builds with no network access, so the real `criterion`
//! cannot be fetched from a registry. The `benches/*.rs` targets only
//! use a small slice of its API (`benchmark_group`, `bench_function`,
//! `iter`, `iter_batched`); this module provides that slice with a
//! simple calibrating timer: each benchmark runs with a geometrically
//! growing iteration count until the measured window exceeds ~20 ms,
//! then reports nanoseconds per iteration. It is *not* a statistically
//! rigorous harness — it exists so `cargo bench` keeps producing useful
//! relative numbers offline.
//!
//! Two environment variables serve the CI perf gate
//! (`scripts/bench_gate.sh`):
//!
//! * `DIMMER_BENCH_QUICK=1` shrinks the calibration window to ~5 ms so
//!   a full bench target finishes in seconds;
//! * `DIMMER_BENCH_JSON=<path>` additionally appends one JSON line per
//!   benchmark — `{"bench":"<name>","median_ns":<f64>}` — where the
//!   number is the median of five repeated measurements (the median is
//!   what the gate compares, so one noisy sample cannot fail CI).

use std::fmt::Display;
use std::hint::black_box;
use std::io::Write;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Minimum measured window before a result is accepted.
fn target_window() -> Duration {
    static WINDOW: OnceLock<Duration> = OnceLock::new();
    *WINDOW.get_or_init(|| {
        if std::env::var_os("DIMMER_BENCH_QUICK").is_some() {
            Duration::from_millis(5)
        } else {
            Duration::from_millis(20)
        }
    })
}

/// Where JSON-lines results go, when the gate asked for them.
fn json_path() -> Option<&'static str> {
    static PATH: OnceLock<Option<String>> = OnceLock::new();
    PATH.get_or_init(|| std::env::var("DIMMER_BENCH_JSON").ok())
        .as_deref()
}

/// Iteration-count ceiling, so a sub-nanosecond body cannot spin forever.
const MAX_ITERS: u64 = 1 << 22;
/// Repeated measurements per benchmark in JSON mode; the median is
/// reported.
const JSON_SAMPLES: usize = 5;

/// Mirrors `criterion::BatchSize`; only used as a hint, all variants
/// behave identically here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Drives one benchmark body; handed to the closure of `bench_function`.
#[derive(Debug, Default)]
pub struct Bencher {
    per_iter_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f` back-to-back, auto-scaling the iteration count.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let dt = start.elapsed();
            if dt >= target_window() || n >= MAX_ITERS {
                self.per_iter_ns = dt.as_nanos() as f64 / n as f64;
                self.iters = n;
                return;
            }
            n = n.saturating_mul(4);
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut n: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let dt = start.elapsed();
            if dt >= target_window() || n >= 1 << 14 {
                self.per_iter_ns = dt.as_nanos() as f64 / n as f64;
                self.iters = n;
                return;
            }
            n = n.saturating_mul(4);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let samples = if json_path().is_some() {
        JSON_SAMPLES
    } else {
        1
    };
    let mut measured: Vec<Bencher> = (0..samples)
        .map(|_| {
            let mut b = Bencher::default();
            f(&mut b);
            b
        })
        .collect();
    measured.sort_by(|a, b| a.per_iter_ns.total_cmp(&b.per_iter_ns));
    let mid = &measured[measured.len() / 2];
    println!(
        "{name:<52} {:>12}/iter  ({} iters)",
        fmt_ns(mid.per_iter_ns),
        mid.iters
    );
    if let Some(path) = json_path() {
        // Bench names are plain identifiers with `/` separators; no JSON
        // escaping needed.
        let line = format!(
            "{{\"bench\":\"{name}\",\"median_ns\":{:.1}}}\n",
            mid.per_iter_ns
        );
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut file| file.write_all(line.as_bytes()))
            .unwrap_or_else(|e| panic!("cannot append bench result to {path}: {e}"));
    }
}

/// Mirrors the `criterion::Criterion` entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            _criterion: self,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.to_string(), &mut f);
        self
    }
}

/// Mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Mirrors `criterion::criterion_group!`: bundles bench functions into
/// one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::criterion::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: the bench target entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(7));
        assert!(b.per_iter_ns > 0.0);
        assert!(b.iters >= 1);
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut b = Bencher::default();
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters >= 1);
    }
}
