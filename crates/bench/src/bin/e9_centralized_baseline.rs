//! E9 — distributed proxies vs the centralized union database.
//!
//! Claim tested: "the union of different databases into a single one is
//! usually not feasible"; the distributed design spreads the ingestion
//! and translation load across proxies. Runs the same scenario both ways
//! and compares the traffic concentration at the hottest node and the
//! full-area query cost.

use bench_support::deploy_warm;
use district::baseline::{CentralDeployment, CentralServerNode};
use district::client::ClientNode;
use district::report::{fmt_bytes, fmt_f64, Table};
use district::scenario::ScenarioConfig;
use proxy::device_proxy::DeviceProxyNode;
use proxy::webservice::{WsClient, WsClientEvent, WsRequest};
use simnet::{Context, Node, Packet, SimConfig, SimDuration, SimTime, Simulator, TimerTag};

struct AreaProbe {
    client: WsClient,
    server: simnet::NodeId,
    bbox: String,
    started: SimTime,
    latency: Option<SimDuration>,
    response_bytes: usize,
}

impl Node for AreaProbe {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.started = ctx.now();
        let request = WsRequest::get("/area").with_query("bbox", self.bbox.clone());
        self.client.request(ctx, self.server, &request);
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        let payload_len = pkt.payload.len();
        if let Some(WsClientEvent::Response { .. }) = self.client.accept(&pkt) {
            self.latency = Some(ctx.now().saturating_since(self.started));
            self.response_bytes = payload_len;
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        self.client.on_timer(ctx, tag);
    }
}

fn main() {
    let mut table = Table::new(
        "E9: distributed proxy mesh vs centralized union server",
        [
            "design",
            "devices",
            "ingest_rx_hottest",
            "ingest_rx_total",
            "query_latency_ms",
            "adapters_at_center",
        ],
    );
    let config = ScenarioConfig::small()
        .with_buildings(10)
        .with_devices_per_building(5);
    let horizon = SimDuration::from_secs(600);

    // --- Distributed.
    let (mut sim, deployment, scenario) = deploy_warm(config.clone(), horizon);
    let hottest = deployment
        .device_proxies()
        .map(|p| sim.node_metrics(p).bytes_received)
        .max()
        .unwrap_or(0);
    let total: u64 = deployment
        .device_proxies()
        .map(|p| sim.node_metrics(p).bytes_received)
        .sum();
    let client = ClientNode::spawn(
        &mut sim,
        &deployment,
        scenario.districts[0].district.clone(),
        scenario.districts[0].bbox(),
    );
    sim.run_for(SimDuration::from_secs(60));
    let latency = sim
        .node_ref::<ClientNode>(client)
        .and_then(ClientNode::latest_snapshot)
        .map(|s| s.latency().as_millis_f64())
        .unwrap_or(f64::NAN);
    // Sanity: every proxy decoded cleanly.
    for p in deployment.device_proxies() {
        assert_eq!(
            sim.node_ref::<DeviceProxyNode>(p)
                .expect("proxy")
                .stats()
                .decode_errors,
            0
        );
    }
    table.row([
        "distributed".to_owned(),
        scenario.device_count().to_string(),
        fmt_bytes(hottest),
        fmt_bytes(total),
        fmt_f64(latency, 2),
        "0 (adapters live at the edges)".to_owned(),
    ]);

    // --- Centralized.
    let scenario = config.build();
    let mut sim = Simulator::new(SimConfig::default());
    let deployment = CentralDeployment::build(&mut sim, &scenario);
    sim.run_for(horizon);
    let central_rx = sim.node_metrics(deployment.server).bytes_received;
    let probe = sim.add_node(
        "probe",
        AreaProbe {
            client: WsClient::new(1000),
            server: deployment.server,
            bbox: scenario.districts[0].bbox().to_query(),
            started: SimTime::ZERO,
            latency: None,
            response_bytes: 0,
        },
    );
    sim.run_for(SimDuration::from_secs(60));
    let probe_ref = sim.node_ref::<AreaProbe>(probe).expect("probe");
    let latency = probe_ref
        .latency
        .map(|d| d.as_millis_f64())
        .unwrap_or(f64::NAN);
    let server = sim
        .node_ref::<CentralServerNode>(deployment.server)
        .expect("server");
    table.row([
        "centralized".to_owned(),
        scenario.device_count().to_string(),
        fmt_bytes(central_rx),
        fmt_bytes(central_rx),
        fmt_f64(latency, 2),
        format!("{} (one per device)", deployment.devices.len()),
    ]);
    println!("central server stats: {:?}", server.stats());
    println!("{table}");
    println!("# series (csv)\n{}", table.to_csv());
    println!(
        "note: 'ingest_rx_hottest' is the busiest single node's ingest \
         traffic — the centralization hot-spot the paper avoids."
    );
}
