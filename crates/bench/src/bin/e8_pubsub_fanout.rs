//! E8 — publish/subscribe fan-out.
//!
//! Claim tested: the event-driven middleware delivers to many
//! subscribers without the publisher knowing them. Measures delivery
//! latency and broker load as the subscriber population grows, with
//! exact and wildcard filters.
//!
//! The binary also demonstrates the telemetry stack: each run ends with
//! a metrics snapshot (counters + bounded-histogram percentiles), and a
//! flight-recorder demo deploys a small district and reconstructs one
//! measurement's device → proxy → broker → subscriber journey from its
//! trace id. Set `DIMMER_TRACE=<file|->` to dump the raw trace as JSON
//! lines.

use district::deploy::Deployment;
use district::report::{dump_trace_if_requested, fmt_f64, metrics_report, Table};
use district::scenario::ScenarioConfig;
use pubsub::{BrokerNode, PubSubClient, PubSubEvent, QoS, Topic, TopicFilter, PUBSUB_PORT};
use simnet::stats::Summary;
use simnet::telemetry::flight::reconstruct;
use simnet::telemetry::MetricsSnapshot;
use simnet::{Context, Node, NodeId, Packet, SimConfig, SimDuration, SimTime, Simulator, TimerTag};

struct Sub {
    client: PubSubClient,
    filter: &'static str,
    received: Vec<SimTime>,
}

impl Node for Sub {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.client.subscribe(
            ctx,
            TopicFilter::new(self.filter).expect("valid filter"),
            QoS::AtMostOnce,
        );
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if pkt.port == PUBSUB_PORT {
            if let Some(PubSubEvent::Message { .. }) = self.client.accept(ctx, &pkt) {
                self.received.push(ctx.now());
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        self.client.on_timer(ctx, tag);
    }
}

struct Pub {
    client: PubSubClient,
    publish_at: SimTime,
    published_at: Option<SimTime>,
}

impl Node for Pub {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer_at(self.publish_at, TimerTag(1));
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        self.client.accept(ctx, &pkt);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        if tag == TimerTag(1) {
            self.published_at = Some(ctx.now());
            let trace = ctx.telemetry().tracer.next_trace_id();
            self.client.publish_traced(
                ctx,
                Topic::new("district/d0/entity/b0/device/dev0/temperature").expect("valid"),
                b"{\"value\":21.5}".to_vec(),
                false,
                QoS::AtMostOnce,
                trace,
            );
        } else {
            self.client.on_timer(ctx, tag);
        }
    }
}

fn run(subscribers: usize, wildcard_fraction: usize) -> (f64, f64, u64, MetricsSnapshot) {
    let mut sim = Simulator::new(SimConfig::default());
    let broker = sim.add_node("broker", BrokerNode::new());
    let subs: Vec<NodeId> = (0..subscribers)
        .map(|i| {
            let filter = if wildcard_fraction > 0 && i % wildcard_fraction == 0 {
                "district/+/entity/+/device/+/temperature"
            } else {
                "district/d0/entity/b0/device/dev0/temperature"
            };
            sim.add_node(
                format!("sub{i}"),
                Sub {
                    client: PubSubClient::new(broker, 100),
                    filter,
                    received: vec![],
                },
            )
        })
        .collect();
    let publisher = sim.add_node(
        "pub",
        Pub {
            client: PubSubClient::new(broker, 100),
            publish_at: SimTime::from_secs(1),
            published_at: None,
        },
    );
    sim.run_for(SimDuration::from_secs(10));
    let t0 = sim
        .node_ref::<Pub>(publisher)
        .expect("publisher")
        .published_at
        .expect("published");
    let mut latency = Summary::new("deliver");
    let mut delivered = 0usize;
    for &s in &subs {
        for &t in &sim.node_ref::<Sub>(s).expect("sub").received {
            latency.record_duration(t.saturating_since(t0));
            delivered += 1;
        }
    }
    let broker_stats = sim.node_ref::<BrokerNode>(broker).expect("broker").stats();
    (
        latency.mean(),
        delivered as f64 / subscribers as f64,
        broker_stats.delivered,
        sim.telemetry().metrics.snapshot(),
    )
}

/// Deploys a small district and follows one measurement end to end:
/// device → device-proxy → broker → subscriber, by trace id.
fn flight_recorder_demo() {
    let mut sim = Simulator::new(SimConfig::default());
    let scenario = ScenarioConfig::small().build();
    let deployment = Deployment::build(&mut sim, &scenario);
    let sub = sim.add_node(
        "monitor",
        Sub {
            client: PubSubClient::new(deployment.broker, 100),
            filter: "district/#",
            received: vec![],
        },
    );
    sim.run_for(SimDuration::from_secs(180));

    let received = sim.node_ref::<Sub>(sub).expect("monitor").received.len();
    println!("## E8 flight recorder: small district, 180 s, monitor received {received} messages");
    let telemetry = sim.telemetry();
    print!(
        "{}",
        metrics_report("E8 flight recorder", &telemetry.metrics.snapshot())
    );

    let events = telemetry.tracer.events();
    let full_path = [
        "device.sample",
        "proxy.ingest",
        "broker.publish",
        "broker.deliver",
        "sub.receive",
    ];
    match reconstruct(&events)
        .into_iter()
        .find(|p| p.visits(&full_path))
    {
        Some(path) => {
            println!(
                "one measurement end to end (trace {} of {} recorded, {} dropped):",
                path.trace_id,
                events.len(),
                telemetry.tracer.dropped()
            );
            println!("{path}");
        }
        None => println!("no complete device→proxy→broker→subscriber path recorded"),
    }
    if let Some(dest) = dump_trace_if_requested(telemetry) {
        println!("trace dumped to {dest}");
    }
}

fn main() {
    let mut table = Table::new(
        "E8: pub/sub fan-out (single publication)",
        [
            "subscribers",
            "wildcards",
            "deliveries",
            "coverage",
            "mean_latency_ms",
        ],
    );
    let mut last_snapshot = None;
    for &subscribers in &[1usize, 10, 100, 500, 1000] {
        for &(label, wf) in &[("none", 0usize), ("1_in_4", 4)] {
            let (mean_ms, coverage, deliveries, snapshot) = run(subscribers, wf);
            table.row([
                subscribers.to_string(),
                label.to_owned(),
                deliveries.to_string(),
                fmt_f64(coverage, 2),
                fmt_f64(mean_ms, 3),
            ]);
            last_snapshot = Some(snapshot);
        }
    }
    println!("{table}");
    println!("# series (csv)\n{}", table.to_csv());
    if let Some(snapshot) = last_snapshot {
        print!(
            "{}",
            metrics_report("E8 largest run (1000 subs)", &snapshot)
        );
    }
    flight_recorder_demo();
}
