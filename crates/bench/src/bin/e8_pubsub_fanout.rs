//! E8 — publish/subscribe fan-out.
//!
//! Claim tested: the event-driven middleware delivers to many
//! subscribers without the publisher knowing them. Measures delivery
//! latency and broker load as the subscriber population grows, with
//! exact and wildcard filters.

use district::report::{fmt_f64, Table};
use pubsub::{BrokerNode, PubSubClient, PubSubEvent, QoS, Topic, TopicFilter, PUBSUB_PORT};
use simnet::stats::Summary;
use simnet::{
    Context, Node, NodeId, Packet, SimConfig, SimDuration, SimTime, Simulator, TimerTag,
};

struct Sub {
    client: PubSubClient,
    filter: &'static str,
    received: Vec<SimTime>,
}

impl Node for Sub {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.client.subscribe(
            ctx,
            TopicFilter::new(self.filter).expect("valid filter"),
            QoS::AtMostOnce,
        );
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if pkt.port == PUBSUB_PORT {
            if let Some(PubSubEvent::Message { .. }) = self.client.accept(ctx, &pkt) {
                self.received.push(ctx.now());
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        self.client.on_timer(ctx, tag);
    }
}

struct Pub {
    client: PubSubClient,
    publish_at: SimTime,
    published_at: Option<SimTime>,
}

impl Node for Pub {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer_at(self.publish_at, TimerTag(1));
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        self.client.accept(ctx, &pkt);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        if tag == TimerTag(1) {
            self.published_at = Some(ctx.now());
            self.client.publish(
                ctx,
                Topic::new("district/d0/entity/b0/device/dev0/temperature").expect("valid"),
                b"{\"value\":21.5}".to_vec(),
                false,
                QoS::AtMostOnce,
            );
        } else {
            self.client.on_timer(ctx, tag);
        }
    }
}

fn run(subscribers: usize, wildcard_fraction: usize) -> (f64, f64, u64) {
    let mut sim = Simulator::new(SimConfig::default());
    let broker = sim.add_node("broker", BrokerNode::new());
    let subs: Vec<NodeId> = (0..subscribers)
        .map(|i| {
            let filter = if wildcard_fraction > 0 && i % wildcard_fraction == 0 {
                "district/+/entity/+/device/+/temperature"
            } else {
                "district/d0/entity/b0/device/dev0/temperature"
            };
            sim.add_node(
                format!("sub{i}"),
                Sub {
                    client: PubSubClient::new(broker, 100),
                    filter,
                    received: vec![],
                },
            )
        })
        .collect();
    let publisher = sim.add_node(
        "pub",
        Pub {
            client: PubSubClient::new(broker, 100),
            publish_at: SimTime::from_secs(1),
            published_at: None,
        },
    );
    sim.run_for(SimDuration::from_secs(10));
    let t0 = sim
        .node_ref::<Pub>(publisher)
        .expect("publisher")
        .published_at
        .expect("published");
    let mut latency = Summary::new("deliver");
    let mut delivered = 0usize;
    for &s in &subs {
        for &t in &sim.node_ref::<Sub>(s).expect("sub").received {
            latency.record_duration(t.saturating_since(t0));
            delivered += 1;
        }
    }
    let broker_stats = sim.node_ref::<BrokerNode>(broker).expect("broker").stats();
    (
        latency.mean(),
        delivered as f64 / subscribers as f64,
        broker_stats.delivered,
    )
}

fn main() {
    let mut table = Table::new(
        "E8: pub/sub fan-out (single publication)",
        [
            "subscribers",
            "wildcards",
            "deliveries",
            "coverage",
            "mean_latency_ms",
        ],
    );
    for &subscribers in &[1usize, 10, 100, 500, 1000] {
        for &(label, wf) in &[("none", 0usize), ("1_in_4", 4)] {
            let (mean_ms, coverage, deliveries) = run(subscribers, wf);
            table.row([
                subscribers.to_string(),
                label.to_owned(),
                deliveries.to_string(),
                fmt_f64(coverage, 2),
                fmt_f64(mean_ms, 3),
            ]);
        }
    }
    println!("{table}");
    println!("# series (csv)\n{}", table.to_csv());
}
