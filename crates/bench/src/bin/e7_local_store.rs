//! E7 — the Device-proxy's local database (layer 2).
//!
//! Claim tested: the middle layer decouples device sampling from query
//! load. Measures ingest rate, range/downsample query cost and the
//! retention sweep over realistic store sizes.

use bench_support::time_it;
use district::report::{fmt_f64, Table};
use storage::tskv::{Aggregate, TimeSeriesStore};

fn filled(series: usize, points_per_series: usize) -> TimeSeriesStore {
    let mut store = TimeSeriesStore::new();
    for s in 0..series {
        let name = format!("dev{s}:temperature");
        for p in 0..points_per_series {
            store.insert(&name, p as i64 * 60_000, 20.0 + (p % 50) as f64 * 0.1);
        }
    }
    store
}

fn main() {
    let mut table = Table::new(
        "E7: local time-series store",
        [
            "series",
            "points_total",
            "insert_ns",
            "range_1h_us",
            "downsample_24h_us",
            "latest_ns",
            "retention_ms",
        ],
    );
    for &(series, points) in &[(1usize, 10_000usize), (4, 10_000), (4, 100_000)] {
        let store = filled(series, points);
        let total = store.len();
        let horizon_end = points as i64 * 60_000;

        // Insert cost: appended to a fresh copy each time would measure
        // clone; instead measure insert into a pre-filled clone once.
        let mut insert_target = store.clone();
        let (_, insert_ns) = time_it(20_000, || {
            insert_target.insert("dev0:temperature", horizon_end + 1, 21.0);
        });

        let (_, range_ns) = time_it(2_000, || {
            store
                .range("dev0:temperature", horizon_end - 3_600_000, horizon_end)
                .len()
        });
        let (_, down_ns) = time_it(500, || {
            store
                .downsample(
                    "dev0:temperature",
                    horizon_end - 24 * 3_600_000,
                    horizon_end,
                    3_600_000,
                    Aggregate::Mean,
                )
                .len()
        });
        let (_, latest_ns) = time_it(20_000, || store.latest("dev0:temperature"));
        let (retention_total, _) = time_it(10, || {
            let mut s = store.clone();
            s.apply_retention(horizon_end / 2)
        });
        table.row([
            series.to_string(),
            total.to_string(),
            fmt_f64(insert_ns, 0),
            fmt_f64(range_ns / 1e3, 1),
            fmt_f64(down_ns / 1e3, 1),
            fmt_f64(latest_ns, 0),
            fmt_f64(retention_total * 1000.0 / 10.0, 2),
        ]);
    }
    println!("{table}");
    println!("# series (csv)\n{}", table.to_csv());
    println!("note: retention_ms includes cloning the store (worst case upper bound).");
}
