//! E1 — end-to-end area query latency vs district size.
//!
//! Claim tested: the redirect architecture scales with the number of
//! buildings because the master only resolves, never relays. The table
//! reports, per district size, the query latency percentiles and how
//! many bytes the master versus the proxies contributed to the answer.

use bench_support::{deploy_warm, run_queries};
use district::report::{fmt_bytes, fmt_f64, Table};
use district::scenario::ScenarioConfig;
use simnet::stats::Summary;
use simnet::SimDuration;

fn main() {
    let mut table = Table::new(
        "E1: area query latency vs district size (distributed redirect)",
        [
            "buildings",
            "devices",
            "queries",
            "lat_mean_ms",
            "lat_p95_ms",
            "master_tx",
            "client_rx",
            "requests_per_query",
        ],
    );
    for &buildings in &[5usize, 10, 20, 40, 80] {
        let config = ScenarioConfig::small()
            .with_buildings(buildings)
            .with_devices_per_building(2);
        let (mut sim, deployment, scenario) = deploy_warm(config, SimDuration::from_secs(300));
        sim.reset_metrics();
        let snapshots = run_queries(&mut sim, &deployment, &scenario, 5);
        let mut latency = Summary::new("latency");
        let mut requests = 0u64;
        for s in &snapshots {
            latency.record_duration(s.latency());
            requests += s.requests;
        }
        let master_tx = sim.node_metrics(deployment.master).bytes_sent;
        let client_rx: u64 = (0..5)
            .filter_map(|i| sim.find_node(&format!("probe-client-{i}")))
            .map(|c| sim.node_metrics(c).bytes_received)
            .sum();
        table.row([
            buildings.to_string(),
            scenario.device_count().to_string(),
            snapshots.len().to_string(),
            fmt_f64(latency.mean(), 2),
            fmt_f64(latency.percentile(95.0), 2),
            fmt_bytes(master_tx),
            fmt_bytes(client_rx),
            fmt_f64(requests as f64 / snapshots.len().max(1) as f64, 1),
        ]);
    }
    println!("{table}");
    println!("# series (csv)\n{}", table.to_csv());
}
