//! E10 — chaos and recovery.
//!
//! Claim tested: the distributed integration framework survives the
//! faults a real district deployment sees — broker outages, network
//! partitions, and proxy crashes — without losing buffered QoS 1
//! measurements, and converges back to the full device inventory.
//!
//! A mid-size district (6 buildings, 18 devices, QoS 1 publication)
//! runs under a scripted [`FaultPlan`]:
//!
//! | time | fault |
//! |---|---|
//! | 180 s | broker crashes, restarts after 30 s |
//! | 300 s | two buildings partitioned from the core for 60 s |
//! | 420 s | one Device-proxy crashes, restarts after 150 s (evicted and re-admitted) |
//!
//! The run reports per-phase registry availability, recovery times, the
//! proxy store-and-forward counters, and — from the flight recorder —
//! how many buffered samples were replayed end to end with zero loss.

use district::deploy::Deployment;
use district::report::{dump_trace_if_requested, fmt_f64, metrics_report, Table};
use district::scenario::ScenarioConfig;
use master::MasterNode;
use proxy::device_proxy::DeviceProxyNode;
use pubsub::{PubSubClient, PubSubEvent, QoS, TopicFilter, PUBSUB_PORT};
use simnet::chaos::{ChaosRunner, Fault, FaultPlan};
use simnet::telemetry::flight::reconstruct;
use simnet::{Context, Node, Packet, SimConfig, SimDuration, SimTime, Simulator, TimerTag};

/// Devices in the 6-building scenario (3 per building).
const DEVICES: usize = 18;
/// Sampling cadence of the measurement loop.
const SLICE: SimDuration = SimDuration::from_secs(5);

const BROKER_CRASH: SimTime = SimTime::from_secs(180);
const BROKER_DOWNTIME: SimDuration = SimDuration::from_secs(30);
const PARTITION_AT: SimTime = SimTime::from_secs(300);
const HEAL_AT: SimTime = SimTime::from_secs(360);
const PROXY_CRASH: SimTime = SimTime::from_secs(420);
const PROXY_DOWNTIME: SimDuration = SimDuration::from_secs(150);
const HORIZON: SimTime = SimTime::from_secs(780);

/// A monitoring subscriber with keepalive-based session resumption.
struct Monitor {
    client: PubSubClient,
    received: u64,
    broker_restarts_seen: u64,
}

impl Node for Monitor {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.client.subscribe(
            ctx,
            TopicFilter::new("district/#").expect("valid filter"),
            QoS::AtLeastOnce,
        );
        self.client.start_keepalive(ctx, SimDuration::from_secs(2));
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if pkt.port != PUBSUB_PORT {
            return;
        }
        match self.client.accept(ctx, &pkt) {
            Some(PubSubEvent::Message { .. }) => self.received += 1,
            Some(PubSubEvent::BrokerRestarted { .. }) => self.broker_restarts_seen += 1,
            _ => {}
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        self.client.on_timer(ctx, tag);
    }
}

struct Sample {
    at: SimTime,
    devices: usize,
    received: u64,
    backlog: usize,
}

fn main() {
    let mut config = ScenarioConfig::small().with_buildings(6);
    config.publish_qos = QoS::AtLeastOnce;
    let scenario = config.build();

    let mut sim = Simulator::new(SimConfig::default());
    // The default trace ring is sized for demos; a 13-minute chaos run
    // needs the full history to reconstruct loss afterwards.
    sim.telemetry().tracer.set_capacity(1 << 18);
    let deployment = Deployment::build(&mut sim, &scenario);
    let monitor = sim.add_node(
        "monitor",
        Monitor {
            client: PubSubClient::new(deployment.broker, 100),
            received: 0,
            broker_restarts_seen: 0,
        },
    );

    // Two buildings (their proxies AND their devices, which stay
    // together) are cut off from the core; everything else keeps
    // talking.
    let d0 = &deployment.districts[0];
    let isolated: Vec<_> = d0.device_proxies[12..]
        .iter()
        .chain(&d0.devices[12..])
        .copied()
        .collect();
    let core = vec![deployment.master, deployment.broker, monitor];
    let victim = d0.device_proxies[0];

    let plan = FaultPlan::new()
        .at(
            BROKER_CRASH,
            Fault::CrashFor {
                node: deployment.broker,
                down: BROKER_DOWNTIME,
            },
        )
        .at(
            PARTITION_AT,
            Fault::Partition {
                groups: vec![isolated.clone(), core],
            },
        )
        .at(HEAL_AT, Fault::Heal)
        .at(
            PROXY_CRASH,
            Fault::CrashFor {
                node: victim,
                down: PROXY_DOWNTIME,
            },
        );
    let mut runner = ChaosRunner::new(plan);

    // Drive the run in slices, sampling the registry and the monitor.
    let mut samples: Vec<Sample> = Vec::new();
    let mut t = SimTime::ZERO;
    while t < HORIZON {
        t = t + SLICE;
        runner.run_until(&mut sim, t);
        let devices = sim
            .node_ref::<MasterNode>(deployment.master)
            .expect("master")
            .ontology()
            .device_count();
        let monitor_node = sim.node_ref::<Monitor>(monitor).expect("monitor");
        let backlog: usize = deployment
            .device_proxies()
            .map(|p| {
                sim.node_ref::<DeviceProxyNode>(p)
                    .expect("proxy")
                    .backlog_len()
            })
            .sum();
        samples.push(Sample {
            at: t,
            devices,
            received: monitor_node.received,
            backlog,
        });
    }

    // Per-phase registry availability: fraction of slices at full
    // inventory.
    let phases: [(&str, SimTime, SimTime); 5] = [
        ("warmup", SimTime::from_secs(60), BROKER_CRASH),
        ("broker down", BROKER_CRASH, BROKER_CRASH + BROKER_DOWNTIME),
        ("partition", PARTITION_AT, HEAL_AT),
        ("proxy down", PROXY_CRASH, PROXY_CRASH + PROXY_DOWNTIME),
        ("recovered", PROXY_CRASH + PROXY_DOWNTIME, HORIZON),
    ];
    let mut table = Table::new(
        "E10: chaos and recovery (18 devices, QoS 1)",
        ["phase", "slices", "registry_avail", "msgs", "peak_backlog"],
    );
    for (name, from, to) in phases {
        let window: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.at > from && s.at <= to)
            .collect();
        let full = window.iter().filter(|s| s.devices == DEVICES).count();
        let msgs = {
            let first = window.first().map_or(0, |s| s.received);
            let last = window.last().map_or(0, |s| s.received);
            last - first
        };
        let peak = window.iter().map(|s| s.backlog).max().unwrap_or(0);
        table.row([
            name.to_owned(),
            window.len().to_string(),
            fmt_f64(full as f64 / window.len().max(1) as f64, 2),
            msgs.to_string(),
            peak.to_string(),
        ]);
    }
    println!("{table}");
    println!("# series (csv)\n{}", table.to_csv());

    // Recovery times.
    let first_after = |from: SimTime, pred: &dyn Fn(&Sample, &Sample) -> bool| {
        samples
            .windows(2)
            .find(|w| w[1].at > from && pred(&w[0], &w[1]))
            .map(|w| w[1].at.since(from).as_secs_f64())
    };
    let broker_up = BROKER_CRASH + BROKER_DOWNTIME;
    if let Some(s) = first_after(broker_up, &|a, b| b.received > a.received) {
        println!("measurement flow resumed {s:.0} s after broker restart");
    }
    if let Some(s) = first_after(HEAL_AT, &|_, b| b.backlog == 0) {
        println!("partition backlog fully replayed {s:.0} s after heal");
    }
    let victim_up = PROXY_CRASH + PROXY_DOWNTIME;
    if let Some(s) = first_after(victim_up, &|_, b| b.devices == DEVICES) {
        println!("registry back to {DEVICES}/{DEVICES} devices {s:.0} s after proxy restart");
    }
    let final_devices = samples.last().map_or(0, |s| s.devices);
    println!(
        "final inventory: {final_devices}/{DEVICES} devices, {} faults injected, monitor saw {} broker restart(s)",
        runner.faults_injected(),
        sim.node_ref::<Monitor>(monitor)
            .expect("monitor")
            .broker_restarts_seen,
    );

    // Store-and-forward counters across all Device-proxies.
    let (mut buffered, mut replayed, mut shed) = (0u64, 0u64, 0u64);
    for p in deployment.device_proxies() {
        let stats = sim.node_ref::<DeviceProxyNode>(p).expect("proxy").stats();
        buffered += stats.buffered;
        replayed += stats.replayed;
        shed += stats.shed_capacity;
    }
    println!("store-and-forward: {buffered} buffered, {replayed} replayed, {shed} shed");

    // Flight-recorder loss accounting: every trace that was parked in a
    // store-and-forward buffer must still reach a subscriber.
    let telemetry = sim.telemetry();
    let events = telemetry.tracer.events();
    let chaos_events = events
        .iter()
        .filter(|e| e.kind.starts_with("chaos."))
        .count();
    let paths = reconstruct(&events);
    let ingested = paths.iter().filter(|p| p.visits(&["proxy.ingest"])).count();
    let delivered = paths
        .iter()
        .filter(|p| p.visits(&["proxy.ingest", "sub.receive"]))
        .count();
    let buffered_traces: Vec<_> = paths
        .iter()
        .filter(|p| p.visits(&["proxy.buffer"]))
        .collect();
    let buffered_delivered = buffered_traces
        .iter()
        .filter(|p| p.visits(&["sub.receive"]))
        .count();
    println!(
        "flight recorder: {chaos_events} fault events in trace stream, \
         {delivered}/{ingested} ingested samples reached the subscriber"
    );
    println!(
        "buffered samples delivered after replay: {buffered_delivered}/{} (loss {})",
        buffered_traces.len(),
        buffered_traces.len() - buffered_delivered,
    );

    print!(
        "{}",
        metrics_report("E10 chaos", &telemetry.metrics.snapshot())
    );
    if let Some(dest) = dump_trace_if_requested(telemetry) {
        println!("trace dumped to {dest}");
    }
}
