//! E2 — measurement ingestion throughput vs device count.
//!
//! Claim tested: ingestion scales because every device has its own
//! Device-proxy; the middleware broker is the only shared component.
//! Reports samples ingested per simulated second and broker load for
//! growing device populations, at both QoS levels.

use bench_support::deploy_warm;
use district::deploy::Deployment;
use district::report::{fmt_f64, Table};
use district::scenario::ScenarioConfig;
use proxy::device_proxy::DeviceProxyNode;
use pubsub::{BrokerNode, QoS};
use simnet::{LinkModel, SimConfig, SimDuration, Simulator};

/// QoS ablation under loss: the same publication load over a degraded
/// proxy↔broker path, at both delivery guarantees.
fn qos_under_loss(table: &mut Table, horizon: SimDuration) {
    for qos in [QoS::AtMostOnce, QoS::AtLeastOnce] {
        let mut config = ScenarioConfig::small()
            .with_buildings(10)
            .with_devices_per_building(5);
        config.sample_interval = SimDuration::from_secs(10);
        config.publish_qos = qos;
        let scenario = config.build();
        let mut sim = Simulator::new(SimConfig::default());
        let deployment = Deployment::build(&mut sim, &scenario);
        let lossy = LinkModel::builder()
            .latency(SimDuration::from_millis(5))
            .bandwidth_bps(10_000_000)
            .loss(0.10)
            .build();
        for p in deployment.device_proxies() {
            sim.set_link(p, deployment.broker, lossy.clone());
        }
        sim.run_for(horizon);
        let mut samples = 0u64;
        for p in deployment.device_proxies() {
            samples += sim
                .node_ref::<DeviceProxyNode>(p)
                .expect("proxy")
                .stats()
                .samples_ingested;
        }
        let broker = sim
            .node_ref::<BrokerNode>(deployment.broker)
            .expect("broker");
        table.row([
            format!("{} (10% loss)", scenario.device_count()),
            match qos {
                QoS::AtMostOnce => "0".to_owned(),
                QoS::AtLeastOnce => "1".to_owned(),
            },
            samples.to_string(),
            fmt_f64(samples as f64 / horizon.as_secs_f64(), 1),
            broker.stats().published.to_string(),
            broker.stats().retries.to_string(),
            "0".to_owned(),
        ]);
    }
}

fn main() {
    let mut table = Table::new(
        "E2: ingestion throughput vs device count",
        [
            "devices",
            "qos",
            "samples",
            "samples_per_sim_s",
            "broker_published",
            "broker_retries",
            "decode_errors",
        ],
    );
    let horizon = SimDuration::from_secs(600);
    for &devices_per_building in &[2usize, 5, 10, 25, 50] {
        for qos in [QoS::AtMostOnce, QoS::AtLeastOnce] {
            let mut config = ScenarioConfig::small()
                .with_buildings(10)
                .with_devices_per_building(devices_per_building);
            config.sample_interval = SimDuration::from_secs(10);
            config.publish_qos = qos;
            let (sim, deployment, scenario) = deploy_warm(config, horizon);
            let mut samples = 0u64;
            let mut errors = 0u64;
            for p in deployment.device_proxies() {
                let proxy = sim.node_ref::<DeviceProxyNode>(p).expect("proxy");
                samples += proxy.stats().samples_ingested;
                errors += proxy.stats().decode_errors;
            }
            let broker = sim
                .node_ref::<BrokerNode>(deployment.broker)
                .expect("broker");
            table.row([
                scenario.device_count().to_string(),
                match qos {
                    QoS::AtMostOnce => "0".to_owned(),
                    QoS::AtLeastOnce => "1".to_owned(),
                },
                samples.to_string(),
                fmt_f64(samples as f64 / horizon.as_secs_f64(), 1),
                broker.stats().published.to_string(),
                broker.stats().retries.to_string(),
                errors.to_string(),
            ]);
        }
    }
    qos_under_loss(&mut table, horizon);
    println!("{table}");
    println!("# series (csv)\n{}", table.to_csv());
    println!(
        "note: the '10% loss' rows ablate the QoS choice — QoS 1's \
         publisher retries recover publications QoS 0 silently drops."
    );
}
