//! E5 — the redirect design vs a relaying aggregation point.
//!
//! Claim tested: the paper's master "redirects the users to the
//! interested data sources" instead of relaying the data. This ablation
//! serves the same queries both ways and reports what relaying does to
//! the aggregation point's traffic and the end-to-end latency.

use bench_support::deploy_warm;
use district::client::ClientNode;
use district::relay::RelayNode;
use district::report::{fmt_bytes, fmt_f64, Table};
use district::scenario::ScenarioConfig;
use proxy::webservice::{WsClient, WsClientEvent, WsRequest, WsResponse};
use simnet::stats::Summary;
use simnet::{Context, Node, NodeId, Packet, SimDuration, SimTime, TimerTag};

/// A client that asks the relay instead of walking the redirect.
struct RelayClient {
    client: WsClient,
    relay: NodeId,
    district: String,
    bbox: String,
    started: SimTime,
    latency: Option<SimDuration>,
}

impl Node for RelayClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.started = ctx.now();
        let request = WsRequest::get("/area")
            .with_query("district", self.district.clone())
            .with_query("bbox", self.bbox.clone());
        self.client.request(ctx, self.relay, &request);
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if let Some(WsClientEvent::Response { response, .. }) = self.client.accept(&pkt) {
            let _: WsResponse = response;
            self.latency = Some(ctx.now().saturating_since(self.started));
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        self.client.on_timer(ctx, tag);
    }
}

fn main() {
    let mut table = Table::new(
        "E5: redirect vs relay (5 sequential queries each)",
        [
            "design",
            "buildings",
            "lat_mean_ms",
            "hot_node_rx",
            "hot_node_tx",
            "client_rx",
        ],
    );
    for &buildings in &[10usize, 40] {
        let config = ScenarioConfig::small()
            .with_buildings(buildings)
            .with_devices_per_building(2);

        // --- Redirect: the paper's design.
        let (mut sim, deployment, scenario) =
            deploy_warm(config.clone(), SimDuration::from_secs(300));
        sim.reset_metrics();
        let mut latency = Summary::new("redirect");
        let mut client_rx = 0u64;
        for i in 0..5 {
            let client = ClientNode::spawn(
                &mut sim,
                &deployment,
                scenario.districts[0].district.clone(),
                scenario.districts[0].bbox(),
            );
            sim.run_for(SimDuration::from_secs(30));
            if let Some(s) = sim
                .node_ref::<ClientNode>(client)
                .and_then(ClientNode::latest_snapshot)
            {
                latency.record_duration(s.latency());
            }
            client_rx += sim.node_metrics(client).bytes_received;
            let _ = i;
        }
        let hot = sim.node_metrics(deployment.master);
        table.row([
            "redirect".to_owned(),
            buildings.to_string(),
            fmt_f64(latency.mean(), 2),
            fmt_bytes(hot.bytes_received),
            fmt_bytes(hot.bytes_sent),
            fmt_bytes(client_rx),
        ]);

        // --- Relay: everything through one aggregation point.
        let (mut sim, deployment, scenario) = deploy_warm(config, SimDuration::from_secs(300));
        let relay = sim.add_node("relay", RelayNode::new(deployment.master));
        sim.run_for(SimDuration::from_secs(5));
        sim.reset_metrics();
        let mut latency = Summary::new("relay");
        let mut client_rx = 0u64;
        for i in 0..5 {
            let client = sim.add_node(
                format!("relay-client-{i}"),
                RelayClient {
                    client: WsClient::new(1000),
                    relay,
                    district: scenario.districts[0].district.to_string(),
                    bbox: scenario.districts[0].bbox().to_query(),
                    started: SimTime::ZERO,
                    latency: None,
                },
            );
            sim.run_for(SimDuration::from_secs(30));
            if let Some(d) = sim.node_ref::<RelayClient>(client).and_then(|c| c.latency) {
                latency.record_duration(d);
            }
            client_rx += sim.node_metrics(client).bytes_received;
        }
        let hot = sim.node_metrics(relay);
        table.row([
            "relay".to_owned(),
            buildings.to_string(),
            fmt_f64(latency.mean(), 2),
            fmt_bytes(hot.bytes_received),
            fmt_bytes(hot.bytes_sent),
            fmt_bytes(client_rx),
        ]);
    }
    println!("{table}");
    println!("# series (csv)\n{}", table.to_csv());
    println!(
        "note: 'hot node' is the master (redirect) or the relay (relay); \
         the relay both receives and re-sends the full data volume."
    );
}
