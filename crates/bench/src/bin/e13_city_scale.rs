//! E13 — city-scale hot path: sustained simulated-event throughput at
//! 1k / 5k / 10k buildings.
//!
//! The ROADMAP targets a 10k-building city. Earlier experiments scale
//! the *protocol* (E8 fan-out, E12 federation); this one scales the
//! *engine*: every building carries a constant-rate publisher, districts
//! of 100 buildings each are served by a federated shard tier, and the
//! run reports how fast the simulator chews through the event stream in
//! wall-clock terms. The numbers move with the PR-6 internals — the
//! zero-copy wire decode, the slab event arena and the timer wheel —
//! rather than with the protocol logic above them.
//!
//! Metrics per scale:
//!
//! * `delivered_msg_s` — application messages reaching subscribers per
//!   simulated second (sanity: must track the offered rate);
//! * `p99_ms` — end-to-end publish→deliver latency in simulated time;
//! * `sim_events` / `wall_s` / `events_wall_s` — total simulator events
//!   processed, host wall-clock for the run, and their ratio: the
//!   engine-throughput headline;
//! * `sim_x_real` — simulated seconds per wall second (>1 means the
//!   city runs faster than real time).
//!
//! The run also stands up the PR-7 ops plane: a master with the fleet
//! scraper tracking every broker shard, a probe node scraping
//! `GET /fleet/metrics` over the Web-Service wire, every 50th building
//! publishing traced (so the `publish_to_deliver` SLO harvest has
//! flights to measure), and a scraped-gauge + SLO section after each
//! scale's table row. `DIMMER_E13_JSON=<file>` appends one JSON line
//! per SLO report for the bench gate.
//!
//! `DIMMER_E13_SMOKE=1` shrinks the run (500 buildings, short window)
//! so `scripts/ci.sh` can exercise the binary in debug builds.

use dimmer_core::DistrictId;
use district::report::{fmt_f64, install_default_slos, slo_report, Table};
use master::MasterNode;
use proxy::webservice::{WsClient, WsClientEvent, WsRequest};
use pubsub::{
    BrokerNode, FederationConfig, PubSubClient, PubSubEvent, QoS, ShardMap, Topic, TopicFilter,
    PUBSUB_PORT,
};
use simnet::batch::BatchPolicy;
use simnet::{Context, Node, NodeId, Packet, SimConfig, SimDuration, SimTime, Simulator, TimerTag};

/// Every Nth building publishes traced: enough flights for the SLO
/// harvest without flooding the trace ring at the 10k scale.
const TRACED_BUILDING_STRIDE: usize = 50;
/// How often the master's fleet scraper and the probe poll.
const SCRAPE_INTERVAL: SimDuration = SimDuration::from_secs(5);

const BUILDINGS_PER_DISTRICT: usize = 100;
const PUBLISH_INTERVAL: SimDuration = SimDuration::from_secs(2);
const WARMUP: SimDuration = SimDuration::from_secs(5);
const MEASURE: SimDuration = SimDuration::from_secs(60);

/// Federates `shards` brokers over round-robin district assignments
/// (district i → shard i % shards), mirroring `district::deploy`.
fn build_brokers(sim: &mut Simulator, shards: usize, districts: usize) -> Vec<NodeId> {
    let ids: Vec<NodeId> = (0..shards)
        .map(|i| {
            sim.add_node(
                format!("broker-{i}"),
                BrokerNode::with_label(format!("b{i}")),
            )
        })
        .collect();
    let mut shard = ShardMap::new(shards);
    for d in 0..districts {
        shard.assign(format!("d{d}"), d % shards);
    }
    for (i, &id) in ids.iter().enumerate() {
        sim.node_mut::<BrokerNode>(id)
            .expect("just added")
            .federate(FederationConfig {
                index: i,
                brokers: ids.clone(),
                shard: shard.clone(),
                batch: BatchPolicy::default(),
            });
    }
    ids
}

/// A constant-rate building publisher stamping each payload with its
/// send time (64-byte padded, the measurement-frame size from E2).
struct LoadPub {
    client: PubSubClient,
    topic: Topic,
    interval: SimDuration,
    start_offset: SimDuration,
    stop_at: SimTime,
    sent: u64,
    /// When set, every publish mints a flight-recorder trace whose
    /// spans feed the `publish_to_deliver` SLO harvest.
    traced: bool,
}

impl Node for LoadPub {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.start_offset, TimerTag(1));
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        self.client.accept(ctx, &pkt);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        if tag != TimerTag(1) {
            self.client.on_timer(ctx, tag);
            return;
        }
        if ctx.now() >= self.stop_at {
            return;
        }
        let mut payload = format!("{} {}", self.sent, ctx.now().as_nanos());
        while payload.len() < 64 {
            payload.push(' ');
        }
        if self.traced {
            let trace = ctx.telemetry().tracer.next_trace_id();
            let span = ctx.trace_hop("pub.send", trace, self.topic.as_str());
            self.client.publish_spanned(
                ctx,
                self.topic.clone(),
                payload.into_bytes(),
                false,
                QoS::AtMostOnce,
                trace,
                span,
            );
        } else {
            self.client.publish(
                ctx,
                self.topic.clone(),
                payload.into_bytes(),
                false,
                QoS::AtMostOnce,
            );
        }
        self.sent += 1;
        ctx.set_timer(self.interval, TimerTag(1));
    }
}

/// Periodically scrapes the master's merged `GET /fleet/metrics` over
/// the Web-Service wire, keeping the last successful exposition body.
struct FleetProbe {
    client: WsClient,
    master: NodeId,
    interval: SimDuration,
    scrapes: u64,
    last_body: Option<String>,
}

impl FleetProbe {
    fn new(master: NodeId, interval: SimDuration) -> Self {
        FleetProbe {
            // Tag base far above TimerTag(1) so probe timers and RPC
            // retry timers cannot collide.
            client: WsClient::new(1_000_000),
            master,
            interval,
            scrapes: 0,
            last_body: None,
        }
    }
}

impl Node for FleetProbe {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.interval, TimerTag(1));
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        let _ = ctx;
        if let Some(WsClientEvent::Response { response, .. }) = self.client.accept(&pkt) {
            if response.is_ok() {
                if let Some(text) = response.body.as_str() {
                    self.scrapes += 1;
                    self.last_body = Some(text.to_string());
                }
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        if tag == TimerTag(1) {
            self.client
                .request(ctx, self.master, &WsRequest::get("/fleet/metrics"));
            ctx.set_timer(self.interval, TimerTag(1));
        } else {
            self.client.on_timer(ctx, tag);
        }
    }
}

/// A per-district subscriber recording latency inside the measure window.
struct LoadSub {
    client: PubSubClient,
    filter: String,
    window: (SimTime, SimTime),
    received: u64,
    latencies_ns: Vec<u64>,
}

impl Node for LoadSub {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.client.subscribe(
            ctx,
            TopicFilter::new(&self.filter).expect("valid filter"),
            QoS::AtMostOnce,
        );
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if pkt.port != PUBSUB_PORT {
            return;
        }
        if let Some(PubSubEvent::Message { payload, .. }) = self.client.accept(ctx, &pkt) {
            let text = String::from_utf8_lossy(&payload);
            let sent_ns: u64 = text
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            let now = ctx.now();
            if now >= self.window.0 && now < self.window.1 {
                self.received += 1;
                self.latencies_ns
                    .push(now.as_nanos().saturating_sub(sent_ns));
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        self.client.on_timer(ctx, tag);
    }
}

struct RunResult {
    districts: usize,
    shards: usize,
    offered_msg_s: f64,
    delivered_msg_s: f64,
    p99_ms: f64,
    sim_events: u64,
    wall_s: f64,
    /// Queue-depth / ops / SLO gauge lines from the probe's last
    /// wire-scraped `/fleet/metrics` body.
    fleet_lines: Vec<String>,
    /// SLO reports evaluated at the end of the run.
    slos: Vec<simnet::telemetry::SloReport>,
}

fn run_scale(
    buildings: usize,
    shards: usize,
    warmup: SimDuration,
    measure: SimDuration,
) -> RunResult {
    let districts = buildings.div_ceil(BUILDINGS_PER_DISTRICT);
    let mut sim = Simulator::new(SimConfig::default());
    install_default_slos(sim.telemetry());
    let brokers = build_brokers(&mut sim, shards, districts);

    // Ops plane: a master scraping every broker shard, plus a probe
    // pulling the merged fleet exposition over the Web-Service wire.
    let mut master_node = MasterNode::new((0..districts).map(|d| {
        (
            DistrictId::new(format!("d{d}")).expect("valid district id"),
            format!("District {d}"),
        )
    }));
    master_node.enable_fleet_scrape(SCRAPE_INTERVAL);
    for (i, &b) in brokers.iter().enumerate() {
        master_node.track_broker(format!("b{i}"), b);
    }
    let master = sim.add_node("master", master_node);
    let probe = sim.add_node("fleet-probe", FleetProbe::new(master, SCRAPE_INTERVAL));

    let t0 = SimTime::ZERO + warmup;
    let t1 = t0 + measure;
    let subs: Vec<NodeId> = (0..districts)
        .map(|d| {
            sim.add_node(
                format!("sub-d{d}"),
                LoadSub {
                    client: PubSubClient::new(brokers[d % shards], 100),
                    filter: format!("district/d{d}/#"),
                    window: (t0, t1),
                    received: 0,
                    latencies_ns: Vec::new(),
                },
            )
        })
        .collect();
    for b in 0..buildings {
        let d = b / BUILDINGS_PER_DISTRICT;
        sim.add_node(
            format!("pub-d{d}-b{b}"),
            LoadPub {
                client: PubSubClient::new(brokers[d % shards], 100),
                topic: Topic::new(format!("district/d{d}/building/b{b}/active_power"))
                    .expect("valid topic"),
                interval: PUBLISH_INTERVAL,
                // Smear starts across the publish interval so the load is
                // flat instead of a 10k-message thundering herd.
                start_offset: SimDuration::from_millis((b as u64 * 7) % 2000),
                stop_at: t1,
                sent: 0,
                traced: b % TRACED_BUILDING_STRIDE == 0,
            },
        );
    }

    let wall = std::time::Instant::now();
    sim.run_for(warmup + measure);
    let wall_s = wall.elapsed().as_secs_f64();

    let mut delivered = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for &s in &subs {
        let sub = sim.node_ref::<LoadSub>(s).expect("sub");
        delivered += sub.received;
        latencies.extend_from_slice(&sub.latencies_ns);
    }
    latencies.sort_unstable();
    let p99 = latencies
        .get((latencies.len().saturating_mul(99)) / 100)
        .or(latencies.last())
        .copied()
        .unwrap_or(0);
    let measure_s = measure.as_nanos() as f64 / 1e9;

    // The ops-plane harvest: the probe must have scraped the fleet view
    // over the wire at least once, and the default SLO must have real
    // flights behind it.
    let probe_ref = sim.node_ref::<FleetProbe>(probe).expect("probe");
    assert!(
        probe_ref.scrapes > 0,
        "fleet probe never scraped /fleet/metrics"
    );
    let body = probe_ref.last_body.clone().unwrap_or_default();
    let fleet_lines: Vec<String> = body
        .lines()
        .filter(|l| {
            // Exposition names are sanitised (dots → underscores).
            l.starts_with("pubsub_pending_deliveries_")
                || l.starts_with("pubsub_bridge_")
                || l.starts_with("ops_up_")
                || l.starts_with("slo_")
        })
        .map(str::to_string)
        .collect();
    let slos = sim.telemetry().slo_refresh();
    let e2e = slos
        .iter()
        .find(|r| r.name == "publish_to_deliver")
        .expect("default SLO installed");
    assert!(
        e2e.count > 0,
        "publish_to_deliver SLO harvested no traced flights"
    );
    assert!(
        e2e.met,
        "publish_to_deliver SLO missed: attainment {:.4} over {} flights (burn {:.2})",
        e2e.attainment, e2e.count, e2e.burn
    );

    RunResult {
        districts,
        shards,
        offered_msg_s: buildings as f64 / (PUBLISH_INTERVAL.as_nanos() as f64 / 1e9),
        delivered_msg_s: delivered as f64 / measure_s,
        p99_ms: p99 as f64 / 1e6,
        sim_events: sim.metrics().events_processed,
        wall_s,
        fleet_lines,
        slos,
    }
}

fn main() {
    let smoke = std::env::var("DIMMER_E13_SMOKE").is_ok_and(|v| v == "1");
    let (scales, warmup, measure): (Vec<(usize, usize)>, _, _) = if smoke {
        (
            vec![(500, 2)],
            SimDuration::from_secs(2),
            SimDuration::from_secs(10),
        )
    } else {
        (vec![(1_000, 2), (5_000, 4), (10_000, 8)], WARMUP, MEASURE)
    };

    let title = if smoke {
        "E13: city-scale hot path (smoke)"
    } else {
        "E13: city-scale hot path (100 buildings/district, 2 s publish interval)"
    };
    let mut table = Table::new(
        title,
        [
            "buildings",
            "districts",
            "shards",
            "offered_msg_s",
            "delivered_msg_s",
            "p99_ms",
            "sim_events",
            "wall_s",
            "events_wall_s",
            "sim_x_real",
        ],
    );
    let sim_span_s = (warmup + measure).as_nanos() as f64 / 1e9;
    let mut ops_sections: Vec<(usize, Vec<String>, Vec<simnet::telemetry::SloReport>)> = Vec::new();
    for &(buildings, shards) in &scales {
        let r = run_scale(buildings, shards, warmup, measure);
        // The engine must keep up: losing deliveries at QoS 0 with no NIC
        // cap would mean the hot path itself is broken.
        assert!(
            r.delivered_msg_s >= r.offered_msg_s * 0.95,
            "delivered {:.1}/s fell below offered {:.1}/s at {buildings} buildings",
            r.delivered_msg_s,
            r.offered_msg_s
        );
        table.row([
            buildings.to_string(),
            r.districts.to_string(),
            r.shards.to_string(),
            fmt_f64(r.offered_msg_s, 1),
            fmt_f64(r.delivered_msg_s, 1),
            fmt_f64(r.p99_ms, 2),
            r.sim_events.to_string(),
            fmt_f64(r.wall_s, 2),
            fmt_f64(r.sim_events as f64 / r.wall_s, 0),
            fmt_f64(sim_span_s / r.wall_s, 1),
        ]);
        ops_sections.push((buildings, r.fleet_lines, r.slos));
    }
    println!("{table}");
    println!("# series (csv)\n{}", table.to_csv());

    for (buildings, fleet_lines, slos) in &ops_sections {
        println!("## E13: fleet scrape ({buildings} buildings, wire-scraped /fleet/metrics)");
        for line in fleet_lines {
            println!("{line}");
        }
        print!(
            "{}",
            slo_report(&format!("E13 ({buildings} buildings)"), slos)
        );
    }

    // Bench-gate hook: append one JSON record per SLO report so
    // scripts/bench_gate.sh can fold attainment into its baseline.
    if let Ok(path) = std::env::var("DIMMER_E13_JSON") {
        if !path.is_empty() {
            use std::io::Write;
            let mut out = String::new();
            for (buildings, _, slos) in &ops_sections {
                for r in slos {
                    out.push_str(&format!(
                        "{{\"slo\":\"{}\",\"buildings\":{},\"count\":{},\
                         \"attainment\":{:.6},\"burn\":{:.4},\"met\":{}}}\n",
                        r.name, buildings, r.count, r.attainment, r.burn, r.met
                    ));
                }
            }
            let written = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| f.write_all(out.as_bytes()));
            if let Err(e) = written {
                eprintln!("DIMMER_E13_JSON: cannot write {path}: {e}");
            }
        }
    }
}
