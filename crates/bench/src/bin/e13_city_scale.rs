//! E13 — city-scale hot path: sustained simulated-event throughput at
//! 1k / 5k / 10k buildings.
//!
//! The ROADMAP targets a 10k-building city. Earlier experiments scale
//! the *protocol* (E8 fan-out, E12 federation); this one scales the
//! *engine*: every building carries a constant-rate publisher, districts
//! of 100 buildings each are served by a federated shard tier, and the
//! run reports how fast the simulator chews through the event stream in
//! wall-clock terms. The numbers move with the PR-6 internals — the
//! zero-copy wire decode, the slab event arena and the timer wheel —
//! rather than with the protocol logic above them.
//!
//! Metrics per scale:
//!
//! * `delivered_msg_s` — application messages reaching subscribers per
//!   simulated second (sanity: must track the offered rate);
//! * `p99_ms` — end-to-end publish→deliver latency in simulated time;
//! * `sim_events` / `wall_s` / `events_wall_s` — total simulator events
//!   processed, host wall-clock for the run, and their ratio: the
//!   engine-throughput headline;
//! * `sim_x_real` — simulated seconds per wall second (>1 means the
//!   city runs faster than real time).
//!
//! `DIMMER_E13_SMOKE=1` shrinks the run (500 buildings, short window)
//! so `scripts/ci.sh` can exercise the binary in debug builds.

use district::report::{fmt_f64, Table};
use pubsub::{
    BrokerNode, FederationConfig, PubSubClient, PubSubEvent, QoS, ShardMap, Topic, TopicFilter,
    PUBSUB_PORT,
};
use simnet::batch::BatchPolicy;
use simnet::{Context, Node, NodeId, Packet, SimConfig, SimDuration, SimTime, Simulator, TimerTag};

const BUILDINGS_PER_DISTRICT: usize = 100;
const PUBLISH_INTERVAL: SimDuration = SimDuration::from_secs(2);
const WARMUP: SimDuration = SimDuration::from_secs(5);
const MEASURE: SimDuration = SimDuration::from_secs(60);

/// Federates `shards` brokers over round-robin district assignments
/// (district i → shard i % shards), mirroring `district::deploy`.
fn build_brokers(sim: &mut Simulator, shards: usize, districts: usize) -> Vec<NodeId> {
    let ids: Vec<NodeId> = (0..shards)
        .map(|i| {
            sim.add_node(
                format!("broker-{i}"),
                BrokerNode::with_label(format!("b{i}")),
            )
        })
        .collect();
    let mut shard = ShardMap::new(shards);
    for d in 0..districts {
        shard.assign(format!("d{d}"), d % shards);
    }
    for (i, &id) in ids.iter().enumerate() {
        sim.node_mut::<BrokerNode>(id)
            .expect("just added")
            .federate(FederationConfig {
                index: i,
                brokers: ids.clone(),
                shard: shard.clone(),
                batch: BatchPolicy::default(),
            });
    }
    ids
}

/// A constant-rate building publisher stamping each payload with its
/// send time (64-byte padded, the measurement-frame size from E2).
struct LoadPub {
    client: PubSubClient,
    topic: Topic,
    interval: SimDuration,
    start_offset: SimDuration,
    stop_at: SimTime,
    sent: u64,
}

impl Node for LoadPub {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.start_offset, TimerTag(1));
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        self.client.accept(ctx, &pkt);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        if tag != TimerTag(1) {
            self.client.on_timer(ctx, tag);
            return;
        }
        if ctx.now() >= self.stop_at {
            return;
        }
        let mut payload = format!("{} {}", self.sent, ctx.now().as_nanos());
        while payload.len() < 64 {
            payload.push(' ');
        }
        self.client.publish(
            ctx,
            self.topic.clone(),
            payload.into_bytes(),
            false,
            QoS::AtMostOnce,
        );
        self.sent += 1;
        ctx.set_timer(self.interval, TimerTag(1));
    }
}

/// A per-district subscriber recording latency inside the measure window.
struct LoadSub {
    client: PubSubClient,
    filter: String,
    window: (SimTime, SimTime),
    received: u64,
    latencies_ns: Vec<u64>,
}

impl Node for LoadSub {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.client.subscribe(
            ctx,
            TopicFilter::new(&self.filter).expect("valid filter"),
            QoS::AtMostOnce,
        );
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if pkt.port != PUBSUB_PORT {
            return;
        }
        if let Some(PubSubEvent::Message { payload, .. }) = self.client.accept(ctx, &pkt) {
            let text = String::from_utf8_lossy(&payload);
            let sent_ns: u64 = text
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            let now = ctx.now();
            if now >= self.window.0 && now < self.window.1 {
                self.received += 1;
                self.latencies_ns
                    .push(now.as_nanos().saturating_sub(sent_ns));
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        self.client.on_timer(ctx, tag);
    }
}

struct RunResult {
    districts: usize,
    shards: usize,
    offered_msg_s: f64,
    delivered_msg_s: f64,
    p99_ms: f64,
    sim_events: u64,
    wall_s: f64,
}

fn run_scale(
    buildings: usize,
    shards: usize,
    warmup: SimDuration,
    measure: SimDuration,
) -> RunResult {
    let districts = buildings.div_ceil(BUILDINGS_PER_DISTRICT);
    let mut sim = Simulator::new(SimConfig::default());
    let brokers = build_brokers(&mut sim, shards, districts);

    let t0 = SimTime::ZERO + warmup;
    let t1 = t0 + measure;
    let subs: Vec<NodeId> = (0..districts)
        .map(|d| {
            sim.add_node(
                format!("sub-d{d}"),
                LoadSub {
                    client: PubSubClient::new(brokers[d % shards], 100),
                    filter: format!("district/d{d}/#"),
                    window: (t0, t1),
                    received: 0,
                    latencies_ns: Vec::new(),
                },
            )
        })
        .collect();
    for b in 0..buildings {
        let d = b / BUILDINGS_PER_DISTRICT;
        sim.add_node(
            format!("pub-d{d}-b{b}"),
            LoadPub {
                client: PubSubClient::new(brokers[d % shards], 100),
                topic: Topic::new(format!("district/d{d}/building/b{b}/active_power"))
                    .expect("valid topic"),
                interval: PUBLISH_INTERVAL,
                // Smear starts across the publish interval so the load is
                // flat instead of a 10k-message thundering herd.
                start_offset: SimDuration::from_millis((b as u64 * 7) % 2000),
                stop_at: t1,
                sent: 0,
            },
        );
    }

    let wall = std::time::Instant::now();
    sim.run_for(warmup + measure);
    let wall_s = wall.elapsed().as_secs_f64();

    let mut delivered = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for &s in &subs {
        let sub = sim.node_ref::<LoadSub>(s).expect("sub");
        delivered += sub.received;
        latencies.extend_from_slice(&sub.latencies_ns);
    }
    latencies.sort_unstable();
    let p99 = latencies
        .get((latencies.len().saturating_mul(99)) / 100)
        .or(latencies.last())
        .copied()
        .unwrap_or(0);
    let measure_s = measure.as_nanos() as f64 / 1e9;
    RunResult {
        districts,
        shards,
        offered_msg_s: buildings as f64 / (PUBLISH_INTERVAL.as_nanos() as f64 / 1e9),
        delivered_msg_s: delivered as f64 / measure_s,
        p99_ms: p99 as f64 / 1e6,
        sim_events: sim.metrics().events_processed,
        wall_s,
    }
}

fn main() {
    let smoke = std::env::var("DIMMER_E13_SMOKE").is_ok_and(|v| v == "1");
    let (scales, warmup, measure): (Vec<(usize, usize)>, _, _) = if smoke {
        (
            vec![(500, 2)],
            SimDuration::from_secs(2),
            SimDuration::from_secs(10),
        )
    } else {
        (vec![(1_000, 2), (5_000, 4), (10_000, 8)], WARMUP, MEASURE)
    };

    let title = if smoke {
        "E13: city-scale hot path (smoke)"
    } else {
        "E13: city-scale hot path (100 buildings/district, 2 s publish interval)"
    };
    let mut table = Table::new(
        title,
        [
            "buildings",
            "districts",
            "shards",
            "offered_msg_s",
            "delivered_msg_s",
            "p99_ms",
            "sim_events",
            "wall_s",
            "events_wall_s",
            "sim_x_real",
        ],
    );
    let sim_span_s = (warmup + measure).as_nanos() as f64 / 1e9;
    for &(buildings, shards) in &scales {
        let r = run_scale(buildings, shards, warmup, measure);
        // The engine must keep up: losing deliveries at QoS 0 with no NIC
        // cap would mean the hot path itself is broken.
        assert!(
            r.delivered_msg_s >= r.offered_msg_s * 0.95,
            "delivered {:.1}/s fell below offered {:.1}/s at {buildings} buildings",
            r.delivered_msg_s,
            r.offered_msg_s
        );
        table.row([
            buildings.to_string(),
            r.districts.to_string(),
            r.shards.to_string(),
            fmt_f64(r.offered_msg_s, 1),
            fmt_f64(r.delivered_msg_s, 1),
            fmt_f64(r.p99_ms, 2),
            r.sim_events.to_string(),
            fmt_f64(r.wall_s, 2),
            fmt_f64(r.sim_events as f64 / r.wall_s, 0),
            fmt_f64(sim_span_s / r.wall_s, 1),
        ]);
    }
    println!("{table}");
    println!("# series (csv)\n{}", table.to_csv());
}
