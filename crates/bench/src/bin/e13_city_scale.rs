//! E13 — city-scale hot path: sustained simulated-event throughput at
//! 1k / 5k / 10k / 100k buildings, sharded across OS threads.
//!
//! The ROADMAP targets a 100k-building city. Earlier experiments scale
//! the *protocol* (E8 fan-out, E12 federation); this one scales the
//! *engine*: every building carries a constant-rate publisher, districts
//! of 100 buildings each are served by a federated shard tier, and the
//! whole simulation runs on a `simnet::parallel::ParallelSimulator` —
//! one simulation shard per broker shard, `--threads N` worker threads,
//! cross-shard bridge batches and master RPCs flowing through the
//! deterministic lookahead barriers. The run reports how fast the
//! engine chews through the event stream in wall-clock terms.
//!
//! Metrics per scale:
//!
//! * `delivered_msg_s` — application messages reaching subscribers per
//!   simulated second (sanity: must track the offered rate);
//! * `p99_ms` — end-to-end publish→deliver latency in simulated time;
//! * `sim_events` / `wall_s` / `events_wall_s` — total simulator events
//!   processed, host wall-clock for the run, and their ratio: the
//!   engine-throughput headline;
//! * `sim_x_real` — simulated seconds per wall second (>1 means the
//!   city runs faster than real time).
//!
//! After the table the binary prints one `e13-digest` line per scale
//! (the flight-recorder digest, identical at any `--threads` — the CI
//! determinism gate diffs it across thread counts) and one
//! `e13-speedup` line comparing the largest scale's wall time at
//! `--threads 1` vs the requested count (asserting the digests match,
//! so the speedup is measured on bit-identical runs).
//!
//! The run also stands up the PR-7 ops plane: a master with the fleet
//! scraper tracking every broker shard (cross-shard RPCs under the
//! barrier), a probe node scraping `GET /fleet/metrics` over the
//! Web-Service wire, every 50th building publishing traced, and a
//! scraped-gauge + SLO section after each scale's table row.
//! `DIMMER_E13_JSON=<file>` appends one JSON line per SLO report plus
//! one speedup record for the bench gate. `DIMMER_SEED=<offset>`
//! shifts the simulation seed (the CI gate holds it fixed across
//! thread counts).
//!
//! `DIMMER_E13_SMOKE=1` shrinks the run (500 buildings, short window)
//! so `scripts/ci.sh` can exercise the binary in debug builds.

use dimmer_core::DistrictId;
use district::report::{fmt_f64, install_default_slos, slo_report, Table};
use master::MasterNode;
use proxy::webservice::{WsClient, WsClientEvent, WsRequest};
use pubsub::{
    BrokerNode, FederationConfig, PubSubClient, PubSubEvent, QoS, ShardMap, Topic, TopicFilter,
    PUBSUB_PORT,
};
use simnet::batch::BatchPolicy;
use simnet::parallel::{ParallelConfig, ParallelSimulator};
use simnet::telemetry::SloReport;
use simnet::{Context, Node, NodeId, Packet, SimDuration, SimTime, TimerTag};

/// Every Nth building publishes traced: enough flights for the SLO
/// harvest without flooding the trace ring at the 100k scale.
const TRACED_BUILDING_STRIDE: usize = 50;
/// How often the master's fleet scraper and the probe poll.
const SCRAPE_INTERVAL: SimDuration = SimDuration::from_secs(5);

const BUILDINGS_PER_DISTRICT: usize = 100;
const PUBLISH_INTERVAL: SimDuration = SimDuration::from_secs(2);
const WARMUP: SimDuration = SimDuration::from_secs(5);
const MEASURE: SimDuration = SimDuration::from_secs(60);

/// Federates `shards` brokers over round-robin district assignments
/// (district i → shard i % shards), mirroring `district::deploy`.
/// Broker i lives on simulation shard i, so bridge batches are the
/// cross-shard traffic.
fn build_brokers(sim: &mut ParallelSimulator, shards: usize, districts: usize) -> Vec<NodeId> {
    let ids: Vec<NodeId> = (0..shards)
        .map(|i| {
            sim.add_node_on(
                i,
                format!("broker-{i}"),
                BrokerNode::with_label(format!("b{i}")),
            )
        })
        .collect();
    let mut shard = ShardMap::new(shards);
    for d in 0..districts {
        shard.assign(format!("d{d}"), d % shards);
    }
    for (i, &id) in ids.iter().enumerate() {
        sim.node_mut::<BrokerNode>(id)
            .expect("just added")
            .federate(FederationConfig {
                index: i,
                brokers: ids.clone(),
                shard: shard.clone(),
                batch: BatchPolicy::default(),
            });
    }
    ids
}

/// A constant-rate building publisher stamping each payload with its
/// send time (64-byte padded, the measurement-frame size from E2).
struct LoadPub {
    client: PubSubClient,
    topic: Topic,
    interval: SimDuration,
    start_offset: SimDuration,
    stop_at: SimTime,
    sent: u64,
    /// When set, every publish mints a flight-recorder trace whose
    /// spans feed the `publish_to_deliver` SLO harvest.
    traced: bool,
}

impl Node for LoadPub {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.start_offset, TimerTag(1));
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        self.client.accept(ctx, &pkt);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        if tag != TimerTag(1) {
            self.client.on_timer(ctx, tag);
            return;
        }
        if ctx.now() >= self.stop_at {
            return;
        }
        let mut payload = format!("{} {}", self.sent, ctx.now().as_nanos());
        while payload.len() < 64 {
            payload.push(' ');
        }
        if self.traced {
            let trace = ctx.telemetry().tracer.next_trace_id();
            let span = ctx.trace_hop("pub.send", trace, self.topic.as_str());
            self.client.publish_spanned(
                ctx,
                self.topic.clone(),
                payload.into_bytes(),
                false,
                QoS::AtMostOnce,
                trace,
                span,
            );
        } else {
            self.client.publish(
                ctx,
                self.topic.clone(),
                payload.into_bytes(),
                false,
                QoS::AtMostOnce,
            );
        }
        self.sent += 1;
        ctx.set_timer(self.interval, TimerTag(1));
    }
}

/// Periodically scrapes the master's merged `GET /fleet/metrics` over
/// the Web-Service wire, keeping the last successful exposition body.
struct FleetProbe {
    client: WsClient,
    master: NodeId,
    interval: SimDuration,
    scrapes: u64,
    last_body: Option<String>,
}

impl FleetProbe {
    fn new(master: NodeId, interval: SimDuration) -> Self {
        FleetProbe {
            // Tag base far above TimerTag(1) so probe timers and RPC
            // retry timers cannot collide.
            client: WsClient::new(1_000_000),
            master,
            interval,
            scrapes: 0,
            last_body: None,
        }
    }
}

impl Node for FleetProbe {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.interval, TimerTag(1));
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        let _ = ctx;
        if let Some(WsClientEvent::Response { response, .. }) = self.client.accept(&pkt) {
            if response.is_ok() {
                if let Some(text) = response.body.as_str() {
                    self.scrapes += 1;
                    self.last_body = Some(text.to_string());
                }
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        if tag == TimerTag(1) {
            self.client
                .request(ctx, self.master, &WsRequest::get("/fleet/metrics"));
            ctx.set_timer(self.interval, TimerTag(1));
        } else {
            self.client.on_timer(ctx, tag);
        }
    }
}

/// A per-district subscriber recording latency inside the measure window.
struct LoadSub {
    client: PubSubClient,
    filter: String,
    window: (SimTime, SimTime),
    received: u64,
    latencies_ns: Vec<u64>,
}

impl Node for LoadSub {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.client.subscribe(
            ctx,
            TopicFilter::new(&self.filter).expect("valid filter"),
            QoS::AtMostOnce,
        );
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if pkt.port != PUBSUB_PORT {
            return;
        }
        if let Some(PubSubEvent::Message { payload, .. }) = self.client.accept(ctx, &pkt) {
            let text = String::from_utf8_lossy(&payload);
            let sent_ns: u64 = text
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            let now = ctx.now();
            if now >= self.window.0 && now < self.window.1 {
                self.received += 1;
                self.latencies_ns
                    .push(now.as_nanos().saturating_sub(sent_ns));
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        self.client.on_timer(ctx, tag);
    }
}

/// Folds per-shard SLO reports into one per name: counts sum,
/// attainment is count-weighted, met/burn re-derived.
fn merge_slos(per_shard: Vec<Vec<SloReport>>) -> Vec<SloReport> {
    let mut merged: Vec<SloReport> = Vec::new();
    for r in per_shard.into_iter().flatten() {
        if let Some(m) = merged.iter_mut().find(|m| m.name == r.name) {
            let total = m.count + r.count;
            if total > 0 {
                m.attainment =
                    (m.attainment * m.count as f64 + r.attainment * r.count as f64) / total as f64;
            }
            m.count = total;
            m.met = m.count == 0 || m.attainment >= m.objective;
            m.burn = (1.0 - m.attainment) / (1.0 - m.objective);
        } else {
            merged.push(r);
        }
    }
    merged
}

struct RunResult {
    districts: usize,
    shards: usize,
    threads: usize,
    offered_msg_s: f64,
    delivered_msg_s: f64,
    p99_ms: f64,
    sim_events: u64,
    wall_s: f64,
    /// Flight-recorder digest — identical at any thread count for the
    /// same seed, which `scripts/ci.sh` gates on.
    digest: u64,
    /// Barrier-protocol counters (windows, cross packets, stalls).
    parallel: simnet::ParallelStats,
    /// Queue-depth / ops / SLO gauge lines from the probe's last
    /// wire-scraped `/fleet/metrics` body.
    fleet_lines: Vec<String>,
    /// SLO reports merged across shards at the end of the run.
    slos: Vec<SloReport>,
}

fn run_scale(
    buildings: usize,
    shards: usize,
    threads: usize,
    seed: u64,
    warmup: SimDuration,
    measure: SimDuration,
) -> RunResult {
    let districts = buildings.div_ceil(BUILDINGS_PER_DISTRICT);
    let mut sim = ParallelSimulator::new(ParallelConfig {
        seed,
        shards,
        threads,
        ..ParallelConfig::default()
    });
    for s in 0..shards {
        install_default_slos(sim.shard_telemetry(s));
    }
    let brokers = build_brokers(&mut sim, shards, districts);

    // Ops plane: a master scraping every broker shard (cross-shard RPC
    // under the barrier), plus a probe pulling the merged fleet
    // exposition over the Web-Service wire. Both live on shard 0.
    let mut master_node = MasterNode::new((0..districts).map(|d| {
        (
            DistrictId::new(format!("d{d}")).expect("valid district id"),
            format!("District {d}"),
        )
    }));
    master_node.enable_fleet_scrape(SCRAPE_INTERVAL);
    for (i, &b) in brokers.iter().enumerate() {
        master_node.track_broker(format!("b{i}"), b);
    }
    let master = sim.add_node_on(0, "master", master_node);
    let probe = sim.add_node_on(0, "fleet-probe", FleetProbe::new(master, SCRAPE_INTERVAL));

    let t0 = SimTime::ZERO + warmup;
    let t1 = t0 + measure;
    // Publishers and subscribers are co-located with their district's
    // broker shard, so steady-state load is intra-shard and only bridge
    // batches + master RPCs cross the barrier — the deployment shape
    // `district::deploy::build_parallel` uses.
    let subs: Vec<NodeId> = (0..districts)
        .map(|d| {
            sim.add_node_on(
                d % shards,
                format!("sub-d{d}"),
                LoadSub {
                    client: PubSubClient::new(brokers[d % shards], 100),
                    filter: format!("district/d{d}/#"),
                    window: (t0, t1),
                    received: 0,
                    latencies_ns: Vec::new(),
                },
            )
        })
        .collect();
    for b in 0..buildings {
        let d = b / BUILDINGS_PER_DISTRICT;
        sim.add_node_on(
            d % shards,
            format!("pub-d{d}-b{b}"),
            LoadPub {
                client: PubSubClient::new(brokers[d % shards], 100),
                topic: Topic::new(format!("district/d{d}/building/b{b}/active_power"))
                    .expect("valid topic"),
                interval: PUBLISH_INTERVAL,
                // Smear starts across the publish interval so the load is
                // flat instead of a 100k-message thundering herd.
                start_offset: SimDuration::from_millis((b as u64 * 7) % 2000),
                stop_at: t1,
                sent: 0,
                traced: b % TRACED_BUILDING_STRIDE == 0,
            },
        );
    }

    let wall = std::time::Instant::now();
    sim.run_for(warmup + measure);
    let wall_s = wall.elapsed().as_secs_f64();

    let mut delivered = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for &s in &subs {
        let sub = sim.node_ref::<LoadSub>(s).expect("sub");
        delivered += sub.received;
        latencies.extend_from_slice(&sub.latencies_ns);
    }
    latencies.sort_unstable();
    let p99 = latencies
        .get((latencies.len().saturating_mul(99)) / 100)
        .or(latencies.last())
        .copied()
        .unwrap_or(0);
    let measure_s = measure.as_nanos() as f64 / 1e9;

    // The ops-plane harvest: the probe must have scraped the fleet view
    // over the wire at least once, and the default SLO must have real
    // flights behind it.
    let probe_ref = sim.node_ref::<FleetProbe>(probe).expect("probe");
    assert!(
        probe_ref.scrapes > 0,
        "fleet probe never scraped /fleet/metrics"
    );
    let body = probe_ref.last_body.clone().unwrap_or_default();
    let fleet_lines: Vec<String> = body
        .lines()
        .filter(|l| {
            // Exposition names are sanitised (dots → underscores).
            l.starts_with("pubsub_pending_deliveries_")
                || l.starts_with("pubsub_bridge_")
                || l.starts_with("ops_up_")
                || l.starts_with("slo_")
        })
        .map(str::to_string)
        .collect();
    let slos = merge_slos(
        (0..shards)
            .map(|s| sim.shard_telemetry(s).slo_refresh())
            .collect(),
    );
    let e2e = slos
        .iter()
        .find(|r| r.name == "publish_to_deliver")
        .expect("default SLO installed");
    assert!(
        e2e.count > 0,
        "publish_to_deliver SLO harvested no traced flights"
    );
    assert!(
        e2e.met,
        "publish_to_deliver SLO missed: attainment {:.4} over {} flights (burn {:.2})",
        e2e.attainment, e2e.count, e2e.burn
    );

    RunResult {
        districts,
        shards,
        threads: sim.threads(),
        offered_msg_s: buildings as f64 / (PUBLISH_INTERVAL.as_nanos() as f64 / 1e9),
        delivered_msg_s: delivered as f64 / measure_s,
        p99_ms: p99 as f64 / 1e6,
        sim_events: sim.metrics().events_processed,
        wall_s,
        digest: sim.flight_digest(),
        parallel: sim.stats(),
        fleet_lines,
        slos,
    }
}

fn parse_threads() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--threads" {
            return args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--threads needs a positive integer");
        }
        if let Some(v) = a.strip_prefix("--threads=") {
            return v.parse().expect("--threads needs a positive integer");
        }
    }
    1
}

fn main() {
    let threads = parse_threads();
    assert!(threads >= 1, "--threads must be positive");
    let seed_offset = std::env::var("DIMMER_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    let seed = 0xD1_44_E2 + seed_offset;
    let smoke = std::env::var("DIMMER_E13_SMOKE").is_ok_and(|v| v == "1");
    let (scales, warmup, measure): (Vec<(usize, usize)>, _, _) = if smoke {
        (
            vec![(500, 4)],
            SimDuration::from_secs(2),
            SimDuration::from_secs(10),
        )
    } else {
        (
            vec![(1_000, 2), (5_000, 4), (10_000, 8), (100_000, 16)],
            WARMUP,
            MEASURE,
        )
    };

    let title = if smoke {
        "E13: city-scale hot path (smoke)"
    } else {
        "E13: city-scale hot path (100 buildings/district, 2 s publish interval)"
    };
    let mut table = Table::new(
        title,
        [
            "buildings",
            "districts",
            "shards",
            "threads",
            "offered_msg_s",
            "delivered_msg_s",
            "p99_ms",
            "sim_events",
            "wall_s",
            "events_wall_s",
            "sim_x_real",
        ],
    );
    let sim_span_s = (warmup + measure).as_nanos() as f64 / 1e9;
    let mut ops_sections: Vec<(usize, Vec<String>, Vec<SloReport>)> = Vec::new();
    let mut digest_lines: Vec<String> = Vec::new();
    let mut last_run: Option<(usize, usize, RunResult)> = None;
    for &(buildings, shards) in &scales {
        let r = run_scale(buildings, shards, threads, seed, warmup, measure);
        // The engine must keep up: losing deliveries at QoS 0 with no NIC
        // cap would mean the hot path itself is broken.
        assert!(
            r.delivered_msg_s >= r.offered_msg_s * 0.95,
            "delivered {:.1}/s fell below offered {:.1}/s at {buildings} buildings",
            r.delivered_msg_s,
            r.offered_msg_s
        );
        table.row([
            buildings.to_string(),
            r.districts.to_string(),
            r.shards.to_string(),
            r.threads.to_string(),
            fmt_f64(r.offered_msg_s, 1),
            fmt_f64(r.delivered_msg_s, 1),
            fmt_f64(r.p99_ms, 2),
            r.sim_events.to_string(),
            fmt_f64(r.wall_s, 2),
            fmt_f64(r.sim_events as f64 / r.wall_s, 0),
            fmt_f64(sim_span_s / r.wall_s, 1),
        ]);
        digest_lines.push(format!(
            "e13-digest buildings={buildings} shards={} threads={} seed={seed} \
             digest={:#018x} windows={} cross_packets={} stall_ms={:.1} mailbox_max={}",
            r.shards,
            r.threads,
            r.digest,
            r.parallel.windows,
            r.parallel.cross_packets,
            r.parallel.barrier_stall_ns as f64 / 1e6,
            r.parallel.max_mailbox_depth,
        ));
        ops_sections.push((buildings, r.fleet_lines.clone(), r.slos.clone()));
        last_run = Some((buildings, shards, r));
    }
    println!("{table}");
    println!("# series (csv)\n{}", table.to_csv());
    for line in &digest_lines {
        println!("{line}");
    }

    // Speedup probe: re-run the largest scale single-threaded and
    // compare wall time. The digests must match — the speedup is
    // measured between bit-identical executions.
    let (buildings, shards, r_threads) = last_run.expect("at least one scale ran");
    let speedup = if threads > 1 {
        let r1 = run_scale(buildings, shards, 1, seed, warmup, measure);
        assert_eq!(
            r1.digest, r_threads.digest,
            "flight digests diverged between --threads 1 and --threads {threads}"
        );
        let speedup = r1.wall_s / r_threads.wall_s;
        println!(
            "e13-speedup buildings={buildings} threads={threads} wall_1={:.2} wall_t={:.2} \
             speedup={speedup:.3}",
            r1.wall_s, r_threads.wall_s
        );
        speedup
    } else {
        println!(
            "e13-speedup buildings={buildings} threads=1 wall_1={:.2} wall_t={:.2} speedup=1.000",
            r_threads.wall_s, r_threads.wall_s
        );
        1.0
    };

    for (buildings, fleet_lines, slos) in &ops_sections {
        println!("## E13: fleet scrape ({buildings} buildings, wire-scraped /fleet/metrics)");
        for line in fleet_lines {
            println!("{line}");
        }
        print!(
            "{}",
            slo_report(&format!("E13 ({buildings} buildings)"), slos)
        );
    }

    // Bench-gate hook: append one JSON record per SLO report plus the
    // parallel-speedup record so scripts/bench_gate.sh can fold both
    // into its baseline.
    if let Ok(path) = std::env::var("DIMMER_E13_JSON") {
        if !path.is_empty() {
            use std::io::Write;
            let mut out = String::new();
            for (buildings, _, slos) in &ops_sections {
                for r in slos {
                    out.push_str(&format!(
                        "{{\"slo\":\"{}\",\"buildings\":{},\"count\":{},\
                         \"attainment\":{:.6},\"burn\":{:.4},\"met\":{}}}\n",
                        r.name, buildings, r.count, r.attainment, r.burn, r.met
                    ));
                }
            }
            out.push_str(&format!(
                "{{\"e13\":\"speedup\",\"buildings\":{buildings},\"threads\":{threads},\
                 \"speedup\":{speedup:.4}}}\n"
            ));
            let written = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| f.write_all(out.as_bytes()));
            if let Err(e) = written {
                eprintln!("DIMMER_E13_JSON: cannot write {path}: {e}");
            }
        }
    }
}
