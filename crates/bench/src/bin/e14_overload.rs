//! E14 — overload protection and gray-failure survival.
//!
//! Claim tested: when offered query load sweeps past capacity, the
//! admission gates shed the excess cheaply instead of collapsing —
//! goodput plateaus at the configured service rate, the p99 of
//! *accepted* requests stays inside the latency objective, and every
//! request is accounted for (`offered == served + shed + failed`,
//! exactly). And when a node gray-fails — alive but slow — the master's
//! per-district circuit breaker opens and queries are answered from the
//! last retained rollup snapshot with a staleness marker, instead of a
//! redirect into a tar pit.
//!
//! Phase 1 — open-loop sweep. A small district (aggregation on, both
//! admission gates sized to [`CAPACITY_QPS`]) is queried open-loop at
//! 0.5× / 1× / 2× / 4× capacity, split between the master's
//! `/district/{id}/profile` redirect endpoint and the aggregator's
//! `/rollups`. Per load point the run reports offered/served/shed/
//! failed, goodput against capacity, and the accepted-request p99.
//!
//! Phase 2 — gray failure. The same deployment runs with the fleet
//! scraper on; at [`FAULT_AT`] the district aggregator is made
//! [`Fault::SlowNode`]-slow (service delays ×1200 — alive, answering,
//! useless). A profile watcher polls throughout and must see the
//! breaker open (stale rollups served, `stale: true`), then recover to
//! fresh redirects after the fault clears and the half-open probe
//! succeeds. The `publish_to_deliver` SLO is asserted over the traced
//! measurement traffic that kept flowing underneath.
//!
//! `DIMMER_E14_SMOKE=1` shrinks the sweep for CI debug builds.
//! `DIMMER_E14_JSON=<file>` appends one JSON line per load point plus a
//! gray-failure record for `scripts/bench_gate.sh`.

use district::deploy::Deployment;
use district::report::{
    dump_trace_if_requested, fmt_f64, install_default_slos, metrics_report, slo_report, Table,
};
use district::scenario::{AggregationSpec, OverloadSpec, ScenarioConfig};
use master::MasterNode;
use proxy::webservice::{WsClient, WsClientEvent, WsRequest};
use pubsub::{PubSubClient, PubSubEvent, QoS, TopicFilter, PUBSUB_PORT};
use simnet::chaos::{ChaosRunner, Fault, FaultPlan};
use simnet::{Context, Node, NodeId, Packet, SimConfig, SimDuration, SimTime, Simulator, TimerTag};

/// Admission drain rate each gate is sized to (master and aggregator).
const CAPACITY_QPS: f64 = 40.0;
/// Open-loop clients per target endpoint.
const CLIENTS_PER_TARGET: usize = 4;
/// Accepted-request latency objective (mirrors the default SLO target).
const ACCEPTED_P99_MS: f64 = 250.0;
/// Gray-failure phase: fault injection time, slowdown, duration.
const FAULT_AT: SimTime = SimTime::from_secs(80);
const SLOW_FACTOR: f64 = 1200.0;
const SLOW_FOR: SimDuration = SimDuration::from_secs(90);
const GRAY_HORIZON: SimTime = SimTime::from_secs(300);
/// When the gray-phase watcher stops polling: far enough before the
/// horizon for every outstanding request to resolve.
const WATCH_STOP: SimTime = SimTime::from_secs(288);
/// How often the gray-phase watcher polls the profile endpoint.
const WATCH_INTERVAL: SimDuration = SimDuration::from_secs(2);
/// Fleet-scrape cadence in the gray phase.
const SCRAPE_INTERVAL: SimDuration = SimDuration::from_secs(5);

fn scenario() -> district::scenario::Scenario {
    ScenarioConfig::small()
        .with_aggregation(AggregationSpec::tumbling(10_000))
        .with_overload(OverloadSpec::rate_limited(CAPACITY_QPS))
        .build()
}

/// An open-loop query client: fires GETs on a fixed cadence regardless
/// of outstanding responses, and classifies every completion exactly
/// once — served (2xx), shed (503), or failed (other error / timeout).
struct QueryLoad {
    client: WsClient,
    target: NodeId,
    path: String,
    interval: SimDuration,
    start_offset: SimDuration,
    stop_at: SimTime,
    window: (SimTime, SimTime),
    offered: u64,
    served: u64,
    shed: u64,
    failed: u64,
    served_in_window: u64,
    latencies_ns: Vec<u64>,
}

impl QueryLoad {
    fn new(
        target: NodeId,
        path: String,
        interval: SimDuration,
        start_offset: SimDuration,
        stop_at: SimTime,
        window: (SimTime, SimTime),
    ) -> Self {
        QueryLoad {
            // Tag base far above TimerTag(1) so load timers and RPC
            // retry timers cannot collide.
            client: WsClient::new(1_000_000),
            target,
            path,
            interval,
            start_offset,
            stop_at,
            window,
            offered: 0,
            served: 0,
            shed: 0,
            failed: 0,
            served_in_window: 0,
            latencies_ns: Vec::new(),
        }
    }
}

impl Node for QueryLoad {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.start_offset, TimerTag(1));
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        match self.client.accept(&pkt) {
            Some(WsClientEvent::Response { id, response }) => {
                let sent_at = self.client.take_sent_at(id);
                if response.is_shed() {
                    self.shed += 1;
                } else if response.is_ok() {
                    self.served += 1;
                    let now = ctx.now();
                    if now >= self.window.0 && now < self.window.1 {
                        self.served_in_window += 1;
                        if let Some(at) = sent_at {
                            self.latencies_ns.push(now.saturating_since(at).as_nanos());
                        }
                    }
                } else {
                    self.failed += 1;
                }
            }
            Some(WsClientEvent::TimedOut { id }) => {
                let _ = self.client.take_sent_at(id);
                self.failed += 1;
            }
            None => {}
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        if tag != TimerTag(1) {
            if let Some(WsClientEvent::TimedOut { id }) = self.client.on_timer(ctx, tag) {
                let _ = self.client.take_sent_at(id);
                self.failed += 1;
            }
            return;
        }
        if ctx.now() >= self.stop_at {
            return;
        }
        self.client
            .request(ctx, self.target, &WsRequest::get(&self.path));
        self.offered += 1;
        ctx.set_timer(self.interval, TimerTag(1));
    }
}

/// Gray-phase watcher: polls `/district/{id}/profile` and records the
/// staleness marker of each answer.
struct StaleWatch {
    client: WsClient,
    master: NodeId,
    path: String,
    stop_at: SimTime,
    offered: u64,
    served: u64,
    shed: u64,
    failed: u64,
    fresh_seen: u64,
    stale_seen: u64,
    stale_with_rollups: u64,
    last_stale: Option<bool>,
}

impl Node for StaleWatch {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(WATCH_INTERVAL, TimerTag(1));
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        let _ = ctx;
        match self.client.accept(&pkt) {
            Some(WsClientEvent::Response { id, response }) => {
                let _ = self.client.take_sent_at(id);
                if response.is_shed() {
                    self.shed += 1;
                } else if response.is_ok() {
                    self.served += 1;
                    let stale = response
                        .body
                        .get("stale")
                        .and_then(dimmer_core::Value::as_bool)
                        .unwrap_or(false);
                    self.last_stale = Some(stale);
                    if stale {
                        self.stale_seen += 1;
                        if response.body.get("rollups").is_some() {
                            self.stale_with_rollups += 1;
                        }
                    } else {
                        self.fresh_seen += 1;
                    }
                } else {
                    self.failed += 1;
                }
            }
            Some(WsClientEvent::TimedOut { id }) => {
                let _ = self.client.take_sent_at(id);
                self.failed += 1;
            }
            None => {}
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        if tag != TimerTag(1) {
            if let Some(WsClientEvent::TimedOut { id }) = self.client.on_timer(ctx, tag) {
                let _ = self.client.take_sent_at(id);
                self.failed += 1;
            }
            return;
        }
        if ctx.now() >= self.stop_at {
            return;
        }
        self.client
            .request(ctx, self.master, &WsRequest::get(&self.path));
        self.offered += 1;
        ctx.set_timer(WATCH_INTERVAL, TimerTag(1));
    }
}

/// Monitoring subscriber: completes the `broker.publish → sub.receive`
/// trace path so the `publish_to_deliver` SLO harvest has flights.
struct Monitor {
    client: PubSubClient,
    received: u64,
}

impl Node for Monitor {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Raw measurements only: subscribing `district/#` would also
        // receive the aggregator's windowed rollup publications, whose
        // traces share the original flight id — the SLO harvest would
        // then measure publish→window-close→deliver instead of the raw
        // publish→deliver path.
        self.client.subscribe(
            ctx,
            TopicFilter::new("district/+/entity/#").expect("valid filter"),
            QoS::AtMostOnce,
        );
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if pkt.port != PUBSUB_PORT {
            return;
        }
        if let Some(PubSubEvent::Message { .. }) = self.client.accept(ctx, &pkt) {
            self.received += 1;
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        self.client.on_timer(ctx, tag);
    }
}

struct SweepPoint {
    mult: f64,
    offered: u64,
    served: u64,
    shed: u64,
    failed: u64,
    goodput_qps: f64,
    goodput_frac: f64,
    p99_ms: f64,
    conserved: bool,
}

fn run_sweep_point(
    mult: f64,
    warmup: SimDuration,
    measure: SimDuration,
    drain: SimDuration,
) -> SweepPoint {
    let scenario = scenario();
    let mut sim = Simulator::new(SimConfig::default());
    let deployment = Deployment::build(&mut sim, &scenario);
    let district = scenario.districts[0].district.clone();
    let aggregator = deployment.districts[0]
        .aggregator
        .expect("aggregation enabled");

    let t0 = SimTime::ZERO + warmup;
    let t1 = t0 + measure;
    // Per-target offered rate is `mult × CAPACITY_QPS`, split over
    // CLIENTS_PER_TARGET open-loop clients with smeared starts.
    let interval =
        SimDuration::from_nanos((CLIENTS_PER_TARGET as f64 / (mult * CAPACITY_QPS) * 1e9) as u64);
    let targets = [
        (deployment.master, format!("/district/{district}/profile")),
        (aggregator, "/rollups".to_owned()),
    ];
    let mut loads: Vec<NodeId> = Vec::new();
    for (t, (target, path)) in targets.iter().enumerate() {
        for c in 0..CLIENTS_PER_TARGET {
            loads.push(sim.add_node(
                format!("load-t{t}-c{c}"),
                QueryLoad::new(
                    *target,
                    path.clone(),
                    interval,
                    warmup + SimDuration::from_millis((c as u64 * 137 + t as u64 * 61) % 1000),
                    t1,
                    (t0, t1),
                ),
            ));
        }
    }

    sim.run_for(warmup + measure + drain);

    let (mut offered, mut served, mut shed, mut failed, mut in_window) = (0u64, 0, 0, 0, 0u64);
    let mut latencies: Vec<u64> = Vec::new();
    for &l in &loads {
        let load = sim.node_ref::<QueryLoad>(l).expect("load");
        offered += load.offered;
        served += load.served;
        shed += load.shed;
        failed += load.failed;
        in_window += load.served_in_window;
        latencies.extend_from_slice(&load.latencies_ns);
    }
    latencies.sort_unstable();
    let p99 = latencies
        .get((latencies.len().saturating_mul(99)) / 100)
        .or(latencies.last())
        .copied()
        .unwrap_or(0);
    let measure_s = measure.as_nanos() as f64 / 1e9;
    let capacity = 2.0 * CAPACITY_QPS; // two gated targets
    let goodput = in_window as f64 / measure_s;
    SweepPoint {
        mult,
        offered,
        served,
        shed,
        failed,
        goodput_qps: goodput,
        goodput_frac: goodput / capacity,
        p99_ms: p99 as f64 / 1e6,
        conserved: offered == served + shed + failed,
    }
}

struct GrayResult {
    watch_offered: u64,
    watch_conserved: bool,
    fresh_seen: u64,
    stale_seen: u64,
    stale_with_rollups: u64,
    recovered_fresh: bool,
    breaker_opens: u64,
    stale_rollups_served: u64,
    monitor_received: u64,
    /// SLO state harvested just before the fault: the baseline the
    /// accepted traffic must meet.
    pre_slos: Vec<simnet::telemetry::SloReport>,
    /// SLO state at the horizon — includes the gray window, so the
    /// degradation is visible in the report (not asserted).
    slos: Vec<simnet::telemetry::SloReport>,
    metrics_text: String,
}

fn run_gray_failure() -> GrayResult {
    let scenario = scenario();
    let mut sim = Simulator::new(SimConfig::default());
    install_default_slos(sim.telemetry());
    sim.telemetry().tracer.set_capacity(1 << 18);
    let deployment = Deployment::build(&mut sim, &scenario);
    let district = scenario.districts[0].district.clone();
    let aggregator = deployment.districts[0]
        .aggregator
        .expect("aggregation enabled");
    // The fleet scraper drives the per-district breaker: health probes,
    // one `/rollups` snapshot per district per round, outlier stats.
    sim.node_mut::<MasterNode>(deployment.master)
        .expect("master")
        .enable_fleet_scrape(SCRAPE_INTERVAL);

    let monitor = sim.add_node(
        "monitor",
        Monitor {
            client: PubSubClient::new(deployment.broker, 100),
            received: 0,
        },
    );
    let watch = sim.add_node(
        "stale-watch",
        StaleWatch {
            client: WsClient::new(1_000_000),
            master: deployment.master,
            path: format!("/district/{district}/profile"),
            // Stop polling early enough for every outstanding request
            // to resolve (3 s RPC timeout × 3 attempts) by the horizon.
            stop_at: WATCH_STOP,
            offered: 0,
            served: 0,
            shed: 0,
            failed: 0,
            fresh_seen: 0,
            stale_seen: 0,
            stale_with_rollups: 0,
            last_stale: None,
        },
    );

    let plan = FaultPlan::new().at(
        FAULT_AT,
        Fault::SlowNode {
            node: aggregator,
            factor: SLOW_FACTOR,
            duration: SLOW_FOR,
        },
    );
    let mut runner = ChaosRunner::new(plan);
    // Harvest the SLO baseline right before the fault lands: the flights
    // behind it are the accepted measurement traffic under normal
    // operation. The gray window itself degrades deliveries *through
    // the slow node* by design — that shows up in the final report.
    runner.run_until(&mut sim, FAULT_AT);
    let pre_slos = sim.telemetry().slo_refresh();
    runner.run_until(&mut sim, GRAY_HORIZON);

    let snapshot = sim.telemetry().metrics.snapshot();
    let counter = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    let slos = sim.telemetry().slo_refresh();
    let w = sim.node_ref::<StaleWatch>(watch).expect("watch");
    GrayResult {
        watch_offered: w.offered,
        watch_conserved: w.offered == w.served + w.shed + w.failed,
        fresh_seen: w.fresh_seen,
        stale_seen: w.stale_seen,
        stale_with_rollups: w.stale_with_rollups,
        recovered_fresh: w.last_stale == Some(false),
        breaker_opens: counter("breaker.open"),
        stale_rollups_served: counter("master.stale_rollups"),
        monitor_received: sim.node_ref::<Monitor>(monitor).expect("monitor").received,
        pre_slos,
        slos,
        metrics_text: metrics_report("E14 gray failure", &snapshot)
            + &dump_trace_if_requested(sim.telemetry())
                .map(|d| format!("trace dumped to {d}\n"))
                .unwrap_or_default(),
    }
}

fn main() {
    let smoke = std::env::var("DIMMER_E14_SMOKE").is_ok_and(|v| v == "1");
    let (mults, warmup, measure): (Vec<f64>, _, _) = if smoke {
        (
            vec![1.0, 2.0, 4.0],
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
        )
    } else {
        (
            vec![0.5, 1.0, 2.0, 4.0],
            SimDuration::from_secs(20),
            SimDuration::from_secs(30),
        )
    };
    // Long enough for every outstanding request to resolve (3 s RPC
    // timeout × 3 attempts), so the conservation check is exact.
    let drain = SimDuration::from_secs(12);

    let title = if smoke {
        "E14: overload sweep (smoke)"
    } else {
        "E14: overload sweep (2 gated targets, 40 qps drain each)"
    };
    let mut table = Table::new(
        title,
        [
            "load_x",
            "offered",
            "served",
            "shed",
            "failed",
            "goodput_qps",
            "goodput_x",
            "p99_ms",
            "conserved",
        ],
    );
    let mut points: Vec<SweepPoint> = Vec::new();
    for &mult in &mults {
        let p = run_sweep_point(mult, warmup, measure, drain);
        table.row([
            fmt_f64(p.mult, 1),
            p.offered.to_string(),
            p.served.to_string(),
            p.shed.to_string(),
            p.failed.to_string(),
            fmt_f64(p.goodput_qps, 1),
            fmt_f64(p.goodput_frac, 2),
            fmt_f64(p.p99_ms, 2),
            if p.conserved { "exact" } else { "BROKEN" }.to_owned(),
        ]);
        points.push(p);
    }
    println!("{table}");
    println!("# series (csv)\n{}", table.to_csv());

    for p in &points {
        assert!(
            p.conserved,
            "conservation broken at {}x: {} offered != {} served + {} shed + {} failed",
            p.mult, p.offered, p.served, p.shed, p.failed
        );
        assert!(
            p.p99_ms <= ACCEPTED_P99_MS,
            "accepted p99 {:.2} ms blew the {ACCEPTED_P99_MS} ms objective at {}x",
            p.p99_ms,
            p.mult
        );
        if p.mult >= 1.0 {
            // The plateau claim: past capacity, goodput holds at ≥90%
            // of the configured service rate instead of collapsing.
            assert!(
                p.goodput_frac >= 0.9,
                "goodput collapsed at {}x: {:.1} qps is {:.0}% of capacity",
                p.mult,
                p.goodput_qps,
                p.goodput_frac * 100.0
            );
        }
    }

    // Overload must actually have been exercised: the top load point
    // sheds a substantial fraction of what it offers.
    let top = points.last().expect("at least one load point");
    assert!(
        top.shed > top.offered / 4,
        "top load point shed only {} of {} offered — gates never engaged",
        top.shed,
        top.offered
    );

    println!(
        "## E14: gray failure (aggregator {SLOW_FACTOR}x slow for {} s)",
        SLOW_FOR.as_nanos() / 1_000_000_000
    );
    let gray = run_gray_failure();
    assert!(
        gray.watch_conserved,
        "watcher conservation broken over {} requests",
        gray.watch_offered
    );
    assert!(
        gray.stale_seen > 0 && gray.stale_with_rollups > 0,
        "breaker never served stale rollups: {} stale of {} fresh",
        gray.stale_seen,
        gray.fresh_seen
    );
    assert!(
        gray.breaker_opens >= 1,
        "district breaker never opened (stale {} / fresh {})",
        gray.stale_seen,
        gray.fresh_seen
    );
    assert!(
        gray.recovered_fresh,
        "profile endpoint still stale after the fault cleared"
    );
    let e2e = gray
        .pre_slos
        .iter()
        .find(|r| r.name == "publish_to_deliver")
        .expect("default SLO installed");
    assert!(e2e.count > 0, "no traced flights before the gray failure");
    assert!(
        e2e.met,
        "publish_to_deliver missed for accepted traffic: attainment {:.4} over {} flights",
        e2e.attainment, e2e.count
    );
    assert!(
        gray.monitor_received > 0,
        "measurement flow stalled under the gray failure"
    );
    println!(
        "watcher: {} polls, {} fresh, {} stale ({} with rollups), recovered={}",
        gray.watch_offered,
        gray.fresh_seen,
        gray.stale_seen,
        gray.stale_with_rollups,
        gray.recovered_fresh
    );
    println!(
        "breaker opens: {}, stale rollups served: {}, monitor received {} messages",
        gray.breaker_opens, gray.stale_rollups_served, gray.monitor_received
    );
    print!("{}", slo_report("E14 pre-fault baseline", &gray.pre_slos));
    print!("{}", slo_report("E14 full horizon", &gray.slos));
    print!("{}", gray.metrics_text);

    // Bench-gate hook: one JSON record per load point plus the
    // gray-failure verdict, appended for scripts/bench_gate.sh.
    if let Ok(path) = std::env::var("DIMMER_E14_JSON") {
        if !path.is_empty() {
            use std::io::Write;
            let mut out = String::new();
            for p in &points {
                out.push_str(&format!(
                    "{{\"e14\":\"sweep\",\"mult\":{:.1},\"offered\":{},\"served\":{},\
                     \"shed\":{},\"failed\":{},\"goodput_qps\":{:.2},\"conserved\":{}}}\n",
                    p.mult, p.offered, p.served, p.shed, p.failed, p.goodput_qps, p.conserved
                ));
            }
            out.push_str(&format!(
                "{{\"e14\":\"gray\",\"stale_served\":{},\"breaker_opens\":{},\
                 \"recovered\":{},\"conserved\":{},\"slo_met\":{}}}\n",
                gray.stale_rollups_served,
                gray.breaker_opens,
                gray.recovered_fresh,
                gray.watch_conserved,
                e2e.met
            ));
            let written = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| f.write_all(out.as_bytes()));
            if let Err(e) = written {
                eprintln!("DIMMER_E14_JSON: cannot write {path}: {e}");
            }
        }
    }
}
