//! F1b — the paper's Fig. 1(b): one frame through the Device-proxy's
//! three layers, traced.

use dimmer_core::{DeviceId, DistrictId, ProxyId, QuantityKind};
use master::MasterNode;
use models::profiles::EnergyProfile;
use protocols::device::{EnoceanSensor, UplinkDevice};
use protocols::enocean::{Eep, Erp1Telegram};
use proxy::adapters::{DeviceAdapter, EnoceanAdapter};
use proxy::device_proxy::{DeviceProxyConfig, DeviceProxyNode};
use proxy::devices::UplinkDeviceNode;
use pubsub::{BrokerNode, QoS};
use simnet::{SimConfig, SimDuration, Simulator};

fn main() {
    println!("Fig. 1(b) — the Device-proxy, layer by layer\n");

    // The device: an EnOcean A5-04-01 (temperature + humidity).
    let sender_id = 0x0180_92AB;
    let mut bench_device = EnoceanSensor::new(sender_id, Eep::A50401);
    let frame = bench_device.emit(21.5);
    println!(
        "device emits ESP3 packet     : {} bytes, sync={:#04x}",
        frame.len(),
        frame[0]
    );
    let telegram = Erp1Telegram::from_esp3(&frame).expect("valid packet");
    println!(
        "  ERP1 telegram                : rorg={:#04x} sender={:#010x} data={:02x?}",
        telegram.rorg.byte(),
        telegram.sender_id,
        telegram.data
    );

    // Layer 1 — dedicated layer: protocol-specific decode + translation.
    let mut adapter = EnoceanAdapter::new(sender_id, Eep::A50401);
    let samples = adapter.decode_uplink(&frame).expect("valid frame");
    println!(
        "layer 1 (dedicated)          : {} samples decoded:",
        samples.len()
    );
    for (q, v) in &samples {
        println!("  {q} = {v:.2} {}", q.canonical_unit());
    }

    // Now the same flow live on the network, to show layers 2 and 3.
    let mut sim = Simulator::new(SimConfig::default());
    let district = DistrictId::new("d0").expect("valid");
    let master = sim.add_node(
        "master",
        MasterNode::new([(district.clone(), "Demo".into())]),
    );
    let broker = sim.add_node("broker", BrokerNode::new());
    let proxy = sim.add_node(
        "device-proxy",
        DeviceProxyNode::new(
            DeviceProxyConfig {
                proxy: ProxyId::new("p1").expect("valid"),
                district,
                entity_id: "b0".into(),
                device: DeviceId::new("th-1").expect("valid"),
                primary_quantity: QuantityKind::Temperature,
                master,
                broker: Some(broker),
                device_node: None,
                poll_interval: None,
                retention: None,
                location: None,
                epoch_offset_millis: district::DEFAULT_EPOCH_MILLIS,
                publish_qos: QoS::AtLeastOnce,
            },
            Box::new(EnoceanAdapter::new(sender_id, Eep::A50401)),
        ),
    );
    let device = sim.add_node(
        "sensor",
        UplinkDeviceNode::new(
            Box::new(EnoceanSensor::new(sender_id, Eep::A50401)),
            EnergyProfile::for_quantity(QuantityKind::Temperature, 3),
            proxy,
            SimDuration::from_secs(60),
            district::DEFAULT_EPOCH_MILLIS,
        ),
    );
    sim.node_mut::<DeviceProxyNode>(proxy)
        .expect("proxy")
        .set_device_node(device);
    sim.run_for(SimDuration::from_secs(600));

    let p = sim.node_ref::<DeviceProxyNode>(proxy).expect("proxy");
    println!(
        "\nlayer 2 (local database)     : series {:?}",
        p.store().series_names().collect::<Vec<_>>()
    );
    for name in p.store().series_names() {
        let (t, v) = p.store().latest(name).expect("non-empty series");
        println!(
            "  {name:<12} {} points, latest = {v:.2} @ unix {t}",
            p.store().series_len(name)
        );
    }

    println!("\nlayer 3 (web service + pub/sub):");
    println!("  registered on master       : {}", p.is_registered());
    println!("  ws requests served         : {}", p.stats().ws_requests);
    println!("  samples published          : {}", p.stats().published);
    let broker_stats = sim.node_ref::<BrokerNode>(broker).expect("broker").stats();
    println!(
        "  broker saw                 : {} publications, {} retained topics",
        broker_stats.published, broker_stats.retained
    );
    assert!(p.is_registered());
    assert!(p.stats().samples_ingested >= 18, "two series, ten frames");
    assert_eq!(p.stats().decode_errors, 0);
}
