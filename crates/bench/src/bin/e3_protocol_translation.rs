//! E3 — interoperability overhead per protocol.
//!
//! Claim tested: the dedicated layer's translation (native frame →
//! common data format) is cheap enough to run per sample at the edge.
//! Measures wall-clock decode+translate cost for each protocol family
//! and the resulting common-format JSON size.

use bench_support::time_it;
use dimmer_core::codec::{self, DataFormat};
use dimmer_core::{DeviceId, Measurement, QuantityKind, Timestamp};
use district::report::{fmt_f64, Table};
use protocols::device::{
    EnoceanSensor, Ieee802154Sensor, OpcUaFieldServer, UplinkDevice, ZigbeeSensor,
};
use protocols::enocean::Eep;
use protocols::ieee802154::PanId;
use protocols::opcua::{AttributeId, Message, ReadValueId};
use proxy::adapters::{
    DeviceAdapter, EnoceanAdapter, Ieee802154Adapter, OpcUaAdapter, ZigbeeAdapter,
};

const ITERATIONS: u32 = 20_000;

fn measure_push(
    name: &str,
    frame: Vec<u8>,
    mut adapter: Box<dyn DeviceAdapter>,
    table: &mut Table,
) {
    // decode + translate to a common-format measurement string
    let (_, ns) = time_it(ITERATIONS, || {
        let samples = adapter.decode_uplink(&frame).expect("valid frame");
        samples
            .iter()
            .map(|&(q, v)| {
                codec::encode_measurement(
                    &Measurement::new(
                        DeviceId::new("bench-dev").expect("valid"),
                        q,
                        v,
                        q.canonical_unit(),
                        Timestamp::EPOCH,
                    ),
                    DataFormat::Json,
                )
                .len()
            })
            .sum::<usize>()
    });
    let samples = adapter.decode_uplink(&frame).expect("valid frame");
    let json_len: usize = samples
        .iter()
        .map(|&(q, v)| {
            codec::encode_measurement(
                &Measurement::new(
                    DeviceId::new("bench-dev").expect("valid"),
                    q,
                    v,
                    q.canonical_unit(),
                    Timestamp::EPOCH,
                ),
                DataFormat::Json,
            )
            .len()
        })
        .sum();
    table.row([
        name.to_owned(),
        frame.len().to_string(),
        samples.len().to_string(),
        json_len.to_string(),
        fmt_f64(ns, 0),
        fmt_f64(1e9 / ns, 0),
    ]);
}

fn main() {
    let mut table = Table::new(
        "E3: per-protocol frame decode + translation cost",
        [
            "protocol",
            "frame_bytes",
            "samples_per_frame",
            "json_bytes",
            "ns_per_frame",
            "frames_per_s",
        ],
    );

    let mut dev = Ieee802154Sensor::new(PanId(0x23), 0x42, QuantityKind::Temperature);
    measure_push(
        "ieee802154",
        dev.emit(21.5),
        Box::new(Ieee802154Adapter::new(PanId(0x23), 0x42)),
        &mut table,
    );

    let mut dev = ZigbeeSensor::new(0x42, QuantityKind::Temperature);
    measure_push(
        "zigbee",
        dev.emit(21.5),
        Box::new(ZigbeeAdapter::new(0x42)),
        &mut table,
    );

    let mut dev = EnoceanSensor::new(0xAB, Eep::A50401);
    measure_push(
        "enocean(A5-04-01)",
        dev.emit(21.5),
        Box::new(EnoceanAdapter::new(0xAB, Eep::A50401)),
        &mut table,
    );

    // OPC UA: the polled path (request encode + response decode).
    let mut server = OpcUaFieldServer::new(QuantityKind::ThermalEnergy);
    server.update(4321.0, 0);
    let request = Message::ReadRequest {
        nodes: vec![ReadValueId {
            node_id: server.value_node().clone(),
            attribute: AttributeId::Value,
        }],
    }
    .encode();
    let response = server.handle_bytes(&request).expect("server answers");
    let mut adapter = OpcUaAdapter::new(server.value_node().clone(), QuantityKind::ThermalEnergy);
    let (_, ns) = time_it(ITERATIONS, || {
        let samples = adapter.decode_poll(&response).expect("valid response");
        samples
            .iter()
            .map(|&(q, v)| {
                codec::encode_measurement(
                    &Measurement::new(
                        DeviceId::new("bench-dev").expect("valid"),
                        q,
                        v,
                        q.canonical_unit(),
                        Timestamp::EPOCH,
                    ),
                    DataFormat::Json,
                )
                .len()
            })
            .sum::<usize>()
    });
    table.row([
        "opcua(poll)".to_owned(),
        response.len().to_string(),
        "1".to_owned(),
        codec::encode_measurement(
            &Measurement::new(
                DeviceId::new("bench-dev").expect("valid"),
                QuantityKind::ThermalEnergy,
                4321.0,
                QuantityKind::ThermalEnergy.canonical_unit(),
                Timestamp::EPOCH,
            ),
            DataFormat::Json,
        )
        .len()
        .to_string(),
        fmt_f64(ns, 0),
        fmt_f64(1e9 / ns, 0),
    ]);

    // CoAP: the second polled path.
    let mut coap_server = protocols::device::CoapFieldServer::new(QuantityKind::Co2);
    coap_server.update(417.0, 0);
    let mut coap_adapter = proxy::adapters::CoapAdapter::new(QuantityKind::Co2);
    let poll = coap_adapter.poll_request().expect("coap polls");
    let response = coap_server.handle_bytes(&poll).expect("server answers");
    let (_, ns) = time_it(ITERATIONS, || {
        let samples = coap_adapter.decode_poll(&response).expect("valid response");
        samples
            .iter()
            .map(|&(q, v)| {
                codec::encode_measurement(
                    &Measurement::new(
                        DeviceId::new("bench-dev").expect("valid"),
                        q,
                        v,
                        q.canonical_unit(),
                        Timestamp::EPOCH,
                    ),
                    DataFormat::Json,
                )
                .len()
            })
            .sum::<usize>()
    });
    table.row([
        "coap(poll)".to_owned(),
        response.len().to_string(),
        "1".to_owned(),
        codec::encode_measurement(
            &Measurement::new(
                DeviceId::new("bench-dev").expect("valid"),
                QuantityKind::Co2,
                417.0,
                QuantityKind::Co2.canonical_unit(),
                Timestamp::EPOCH,
            ),
            DataFormat::Json,
        )
        .len()
        .to_string(),
        fmt_f64(ns, 0),
        fmt_f64(1e9 / ns, 0),
    ]);

    println!("{table}");
    println!("# series (csv)\n{}", table.to_csv());
}
