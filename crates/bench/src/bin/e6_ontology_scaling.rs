//! E6 — ontology resolution scaling.
//!
//! Claim tested: the master's per-query work (ontology resolution) stays
//! cheap as districts grow, which is what makes the redirect design
//! viable. Measures area resolution and quantity lookups over ontologies
//! from 10² to 10⁵ devices.

use bench_support::time_it;
use dimmer_core::{BuildingId, DeviceId, DistrictId, QuantityKind, Uri};
use district::report::{fmt_f64, Table};
use gis::geo::{BoundingBox, GeoPoint};
use ontology::{DeviceLeaf, EntityNode, Ontology};

fn build_ontology(buildings: usize, devices_per_building: usize) -> (Ontology, DistrictId) {
    let district = DistrictId::new("bench").expect("valid");
    let mut onto = Ontology::new();
    onto.add_district(district.clone(), "Bench").expect("fresh");
    let grid = (buildings as f64).sqrt().ceil() as usize;
    for b in 0..buildings {
        let lat = 45.0 + 0.001 * (b / grid) as f64;
        let lon = 7.6 + 0.001 * (b % grid) as f64;
        let entity = EntityNode::building(
            BuildingId::new(format!("b{b}")).expect("valid"),
            Uri::parse(&format!("sim://n{b}/model")).expect("valid"),
        )
        .with_location(GeoPoint::new(lat, lon));
        onto.add_building(&district, entity).expect("unique");
        for v in 0..devices_per_building {
            let quantity = match v % 3 {
                0 => QuantityKind::Temperature,
                1 => QuantityKind::ActivePower,
                _ => QuantityKind::ElectricalEnergy,
            };
            onto.add_device(
                &district,
                &format!("b{b}"),
                DeviceLeaf::new(
                    DeviceId::new(format!("b{b}-d{v}")).expect("valid"),
                    "zigbee",
                    quantity,
                    Uri::parse(&format!(
                        "sim://n{}/data",
                        buildings + b * devices_per_building + v
                    ))
                    .expect("valid"),
                ),
            )
            .expect("entity exists");
        }
    }
    (onto, district)
}

fn main() {
    let mut table = Table::new(
        "E6: ontology query cost vs size",
        [
            "buildings",
            "devices",
            "area_small_us",
            "area_full_us",
            "by_quantity_us",
            "snapshot_kb",
        ],
    );
    for &(buildings, devices_per_building) in
        &[(10usize, 10usize), (100, 10), (1000, 10), (1000, 100)]
    {
        let (onto, district) = build_ontology(buildings, devices_per_building);
        let small_box = BoundingBox::new(GeoPoint::new(45.0, 7.6), GeoPoint::new(45.002, 7.602));
        let full_box = BoundingBox::new(GeoPoint::new(44.9, 7.5), GeoPoint::new(45.2, 7.8));
        let iters = if buildings >= 1000 { 200 } else { 2000 };
        let (_, small_ns) = time_it(iters, || {
            onto.resolve_area(&district, &small_box)
                .expect("district exists")
                .entities
                .len()
        });
        let (_, full_ns) = time_it(iters, || {
            onto.resolve_area(&district, &full_box)
                .expect("district exists")
                .devices
                .len()
        });
        let (_, quantity_ns) = time_it(iters, || {
            onto.devices_by_quantity(&district, QuantityKind::Temperature)
                .expect("district exists")
                .len()
        });
        let snapshot = dimmer_core::json::to_string(&onto.to_value());
        table.row([
            buildings.to_string(),
            onto.device_count().to_string(),
            fmt_f64(small_ns / 1e3, 1),
            fmt_f64(full_ns / 1e3, 1),
            fmt_f64(quantity_ns / 1e3, 1),
            (snapshot.len() / 1024).to_string(),
        ]);
    }
    println!("{table}");
    println!("# series (csv)\n{}", table.to_csv());
}
