//! E11 — rollup-served profiles vs client-side integration.
//!
//! Claim tested: pre-aggregating device → building → district in the
//! streaming tier makes profile queries O(windows) instead of
//! O(devices). The rollup-served client issues two requests (master
//! redirect + aggregator fetch) regardless of district size, while the
//! client-side baseline refetches every entity model and device series
//! and integrates locally, so its latency and traffic grow linearly
//! with the number of buildings.

use bench_support::deploy_warm;
use dimmer_core::QuantityKind;
use district::client::{ClientConfig, ClientNode};
use district::profile::{ProfileClientNode, ProfileConfig};
use district::report::{fmt_bytes, fmt_f64, Table};
use district::scenario::{AggregationSpec, ScenarioConfig};
use district::DEFAULT_EPOCH_MILLIS;
use simnet::SimDuration;

const WINDOW_MILLIS: i64 = 300_000;
/// Profile the first two closed five-minute windows of the warmup.
const RANGE: (i64, i64) = (DEFAULT_EPOCH_MILLIS, DEFAULT_EPOCH_MILLIS + 600_000);

fn main() {
    let mut table = Table::new(
        "E11: district profile query — rollup-served vs client-side integration",
        [
            "buildings",
            "devices",
            "roll_lat_ms",
            "roll_reqs",
            "roll_client_rx",
            "roll_master_tx",
            "base_lat_ms",
            "base_reqs",
            "base_client_rx",
            "base_master_tx",
        ],
    );
    for &buildings in &[10usize, 50, 200, 500] {
        let config = ScenarioConfig::small()
            .with_buildings(buildings)
            .with_devices_per_building(1)
            .with_aggregation(AggregationSpec::tumbling(WINDOW_MILLIS).with_lateness(10_000));
        // Warm past two closed windows plus the lateness horizon.
        let (mut sim, deployment, scenario) = deploy_warm(config, SimDuration::from_secs(700));
        let district = scenario.districts[0].district.clone();
        let bbox = scenario.districts[0].bbox();

        // Rollup-served: master redirect + one aggregator fetch.
        sim.reset_metrics();
        let profile_client = sim.add_node(
            "e11-profile-client",
            ProfileClientNode::new(ProfileConfig {
                master: deployment.master,
                district: district.clone(),
                quantity: QuantityKind::Temperature,
                window_millis: None,
                range: RANGE,
            }),
        );
        sim.run_for(SimDuration::from_secs(60));
        let snapshot = sim
            .node_ref::<ProfileClientNode>(profile_client)
            .unwrap()
            .latest_snapshot()
            .expect("profile query completed")
            .clone();
        assert_eq!(snapshot.errors, 0, "profile query failed: {snapshot:?}");
        assert!(!snapshot.windows.is_empty(), "no rollups served");
        let roll_lat = snapshot.latency();
        let roll_reqs = snapshot.requests;
        let roll_client_rx = sim.node_metrics(profile_client).bytes_received;
        let roll_master_tx = sim.node_metrics(deployment.master).bytes_sent;

        // Baseline: the paper's integration flow over the same range —
        // resolve the area, fetch every entity model and device series,
        // integrate client-side.
        sim.reset_metrics();
        let base_client = sim.add_node(
            "e11-baseline-client",
            ClientNode::new(ClientConfig {
                master: deployment.master,
                district,
                bbox,
                data_window_millis: Some(RANGE),
                period: None,
                format: dimmer_core::codec::DataFormat::Json,
            }),
        );
        sim.run_for(SimDuration::from_secs(120));
        let base = sim
            .node_ref::<ClientNode>(base_client)
            .unwrap()
            .latest_snapshot()
            .expect("baseline query completed")
            .clone();
        let base_lat = base.latency();
        let base_reqs = base.requests;
        let base_client_rx = sim.node_metrics(base_client).bytes_received;
        let base_master_tx = sim.node_metrics(deployment.master).bytes_sent;

        table.row([
            buildings.to_string(),
            scenario.device_count().to_string(),
            fmt_f64(roll_lat.as_secs_f64() * 1e3, 2),
            roll_reqs.to_string(),
            fmt_bytes(roll_client_rx),
            fmt_bytes(roll_master_tx),
            fmt_f64(base_lat.as_secs_f64() * 1e3, 2),
            base_reqs.to_string(),
            fmt_bytes(base_client_rx),
            fmt_bytes(base_master_tx),
        ]);
    }
    println!("{table}");
    println!("# series (csv)\n{}", table.to_csv());
}
