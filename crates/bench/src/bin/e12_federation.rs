//! E12 — federated broker tier: throughput scaling and bridge fault
//! tolerance.
//!
//! Claims tested:
//!
//! 1. **Sharding scales aggregate throughput.** A fixed publisher
//!    population (8 districts × 3 publishers at 40 msg/s each) is served
//!    by 1, 2, 4 and 8 topic-sharded brokers whose NICs are capped at
//!    500 kbit/s — enough that the single broker saturates. District
//!    traffic stays on the district's local shard (the deployment wiring
//!    of `district::deploy`), so adding shards multiplies usable NIC
//!    capacity: 4 shards must deliver ≥ 2× the single-broker rate.
//! 2. **QoS 1 survives bridge link faults.** With 2 shards and a
//!    cross-shard subscriber, the bridge link is flapped repeatedly
//!    mid-batch; batched-frame retransmission and batch-id dedup must
//!    hand every QoS 1 publish across exactly once.

use std::collections::HashSet;

use district::report::{fmt_f64, Table};
use pubsub::{
    BrokerNode, FederationConfig, PubSubClient, PubSubEvent, QoS, ShardMap, Topic, TopicFilter,
    PUBSUB_PORT,
};
use simnet::batch::BatchPolicy;
use simnet::chaos::{ChaosRunner, Fault, FaultPlan};
use simnet::{Context, Node, NodeId, Packet, SimConfig, SimDuration, SimTime, Simulator, TimerTag};

const DISTRICTS: usize = 8;
const PUBS_PER_DISTRICT: usize = 3;
const PUBLISH_INTERVAL: SimDuration = SimDuration::from_millis(25);
/// Per-direction broker NIC cap; the aggregate offered load needs ~2.4×
/// this, so one broker saturates and four do not.
const BROKER_NIC_BPS: u64 = 500_000;
const WARMUP: SimDuration = SimDuration::from_secs(5);
const MEASURE: SimDuration = SimDuration::from_secs(60);

/// Federates `shards` labeled brokers over `districts` round-robin
/// district assignments (district i → shard i % shards), mirroring
/// `district::deploy`.
fn build_brokers(
    sim: &mut Simulator,
    shards: usize,
    districts: usize,
    nic_bps: Option<u64>,
) -> Vec<NodeId> {
    let ids: Vec<NodeId> = (0..shards)
        .map(|i| {
            sim.add_node(
                format!("broker-{i}"),
                BrokerNode::with_label(format!("b{i}")),
            )
        })
        .collect();
    let mut shard = ShardMap::new(shards);
    for d in 0..districts {
        shard.assign(format!("d{d}"), d % shards);
    }
    for (i, &id) in ids.iter().enumerate() {
        sim.node_mut::<BrokerNode>(id)
            .expect("just added")
            .federate(FederationConfig {
                index: i,
                brokers: ids.clone(),
                shard: shard.clone(),
                batch: BatchPolicy::default(),
            });
        sim.set_node_bandwidth(id, nic_bps);
    }
    ids
}

/// A constant-rate publisher stamping each payload with its send time.
struct LoadPub {
    client: PubSubClient,
    topic: Topic,
    interval: SimDuration,
    start_offset: SimDuration,
    stop_at: SimTime,
    qos: QoS,
    sent: u64,
}

impl Node for LoadPub {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.start_offset, TimerTag(1));
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        self.client.accept(ctx, &pkt);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        if tag != TimerTag(1) {
            self.client.on_timer(ctx, tag);
            return;
        }
        if ctx.now() >= self.stop_at {
            return;
        }
        let mut payload = format!("{} {}", self.sent, ctx.now().as_nanos());
        while payload.len() < 64 {
            payload.push(' ');
        }
        self.client.publish(
            ctx,
            self.topic.clone(),
            payload.into_bytes(),
            false,
            self.qos,
        );
        self.sent += 1;
        ctx.set_timer(self.interval, TimerTag(1));
    }
}

/// A subscriber recording per-message latency inside a measure window.
struct LoadSub {
    client: PubSubClient,
    filter: String,
    window: (SimTime, SimTime),
    received: u64,
    latencies_ns: Vec<u64>,
    seqs: HashSet<u64>,
}

impl LoadSub {
    fn new(broker: NodeId, filter: impl Into<String>, window: (SimTime, SimTime)) -> Self {
        LoadSub {
            client: PubSubClient::new(broker, 100),
            filter: filter.into(),
            window,
            received: 0,
            latencies_ns: Vec::new(),
            seqs: HashSet::new(),
        }
    }
}

impl Node for LoadSub {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.client.subscribe(
            ctx,
            TopicFilter::new(&self.filter).expect("valid filter"),
            QoS::AtLeastOnce,
        );
        self.client.start_keepalive(ctx, SimDuration::from_secs(2));
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if pkt.port != PUBSUB_PORT {
            return;
        }
        if let Some(PubSubEvent::Message { payload, .. }) = self.client.accept(ctx, &pkt) {
            let text = String::from_utf8_lossy(&payload);
            let mut parts = text.split_whitespace();
            let seq: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
            let sent_ns: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
            self.seqs.insert(seq);
            let now = ctx.now();
            if now >= self.window.0 && now < self.window.1 {
                self.received += 1;
                self.latencies_ns
                    .push(now.as_nanos().saturating_sub(sent_ns));
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        self.client.on_timer(ctx, tag);
    }
}

struct RunResult {
    delivered_per_sec: f64,
    p99_ms: f64,
    bridge_frames: u64,
}

/// One throughput run: district traffic on district-local shards, QoS 0,
/// NIC-capped brokers.
fn run_throughput(shards: usize) -> RunResult {
    let mut sim = Simulator::new(SimConfig::default());
    let brokers = build_brokers(&mut sim, shards, DISTRICTS, Some(BROKER_NIC_BPS));

    let t0 = SimTime::ZERO + WARMUP;
    let t1 = t0 + MEASURE;
    let subs: Vec<NodeId> = (0..DISTRICTS)
        .map(|d| {
            sim.add_node(
                format!("sub-d{d}"),
                LoadSub::new(brokers[d % shards], format!("district/d{d}/#"), (t0, t1)),
            )
        })
        .collect();
    for d in 0..DISTRICTS {
        for p in 0..PUBS_PER_DISTRICT {
            let idx = d * PUBS_PER_DISTRICT + p;
            sim.add_node(
                format!("pub-d{d}-{p}"),
                LoadPub {
                    client: PubSubClient::new(brokers[d % shards], 100),
                    topic: Topic::new(format!(
                        "district/d{d}/entity/b{p}/device/dev{p}/active_power"
                    ))
                    .expect("valid topic"),
                    interval: PUBLISH_INTERVAL,
                    start_offset: SimDuration::from_millis(50 + (idx as u64 * 7) % 25),
                    stop_at: t1,
                    qos: QoS::AtMostOnce,
                    sent: 0,
                },
            );
        }
    }
    sim.run_for(WARMUP + MEASURE);

    let mut delivered = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for &s in &subs {
        let sub = sim.node_ref::<LoadSub>(s).expect("sub");
        delivered += sub.received;
        latencies.extend_from_slice(&sub.latencies_ns);
    }
    latencies.sort_unstable();
    let p99 = latencies
        .get((latencies.len().saturating_mul(99)) / 100)
        .or(latencies.last())
        .copied()
        .unwrap_or(0);
    let bridge_frames = brokers
        .iter()
        .map(|&b| {
            sim.node_ref::<BrokerNode>(b)
                .expect("broker")
                .bridge_stats()
                .frames_enqueued
        })
        .sum();
    RunResult {
        delivered_per_sec: delivered as f64 / MEASURE.as_nanos() as f64 * 1e9,
        p99_ms: p99 as f64 / 1e6,
        bridge_frames,
    }
}

/// The bridge fault run: 2 shards, a cross-shard QoS 1 subscriber, and a
/// fault plan that flaps the bridge link mid-batch.
fn run_bridge_faults() {
    const PUBLISHES: u64 = 200;
    let mut sim = Simulator::new(SimConfig::default());
    let brokers = build_brokers(&mut sim, 2, 2, None);

    // District d1 lives on shard 1; the monitor listens on shard 0, so
    // every publish crosses the bridge.
    let monitor = sim.add_node(
        "monitor",
        LoadSub::new(
            brokers[0],
            "district/#",
            (SimTime::ZERO, SimTime::from_secs(1 << 30)),
        ),
    );
    sim.add_node(
        "pub-d1",
        LoadPub {
            client: PubSubClient::new(brokers[1], 100),
            topic: Topic::new("district/d1/entity/b0/device/dev0/active_power").expect("valid"),
            interval: SimDuration::from_millis(100),
            start_offset: SimDuration::from_secs(1),
            stop_at: SimTime::from_secs(1) + SimDuration::from_millis(100 * PUBLISHES),
            qos: QoS::AtLeastOnce,
            sent: 0,
        },
    );

    let mut plan = FaultPlan::new();
    for i in 0..3u64 {
        plan = plan.at(
            SimTime::from_secs(3 + i * 7),
            Fault::LinkFlap {
                a: brokers[0],
                b: brokers[1],
                down: SimDuration::from_secs(4),
            },
        );
    }
    let mut runner = ChaosRunner::new(plan);
    runner.run_until(&mut sim, SimTime::from_secs(30));
    // Drain: retries settle (8 tries × 2 s budget).
    sim.run_for(SimDuration::from_secs(60));

    let m = sim.node_ref::<LoadSub>(monitor).expect("monitor");
    let sent = PUBLISHES.min(m.seqs.iter().max().map_or(0, |&s| s + 1));
    let b1 = sim.node_ref::<BrokerNode>(brokers[1]).expect("broker");
    let s = b1.bridge_stats();
    println!("## E12 bridge fault run (2 shards, 3 × 4 s link flaps, QoS 1)");
    println!("publishes          {PUBLISHES}");
    println!("unique received    {}", m.seqs.len());
    println!("bridge batches     {}", s.batches_sent);
    println!("bridge retries     {}", s.retries);
    println!("bridge dropped     {}", s.frames_dropped);
    assert_eq!(
        m.seqs.len() as u64,
        PUBLISHES,
        "QoS 1 loss across the bridge (last seq seen {sent})"
    );
    assert_eq!(s.frames_dropped, 0, "bridge dropped frames: {s:?}");
    assert!(
        s.retries > 0,
        "no flap hit an in-flight batch — the plan is toothless"
    );
    assert_eq!(
        s.frames_enqueued,
        s.frames_acked + b1.bridge_in_flight() as u64 + b1.bridge_buffered() as u64,
        "bridge ledger out of balance: {s:?}"
    );
    println!("qos1 conservation  ok (every publish crossed exactly once)");
}

fn main() {
    let offered = DISTRICTS * PUBS_PER_DISTRICT * 1_000 / PUBLISH_INTERVAL.as_millis_f64() as usize;
    let mut table = Table::new(
        "E12: federated broker throughput (8 districts, 24 publishers, NIC-capped brokers)",
        [
            "shards",
            "offered_msg_s",
            "delivered_msg_s",
            "p99_ms",
            "bridge_frames",
            "speedup_vs_1",
        ],
    );
    let mut single = None;
    for &shards in &[1usize, 2, 4, 8] {
        let r = run_throughput(shards);
        let base = *single.get_or_insert(r.delivered_per_sec);
        table.row([
            shards.to_string(),
            offered.to_string(),
            fmt_f64(r.delivered_per_sec, 1),
            fmt_f64(r.p99_ms, 1),
            r.bridge_frames.to_string(),
            fmt_f64(r.delivered_per_sec / base, 2),
        ]);
    }
    println!("{table}");
    println!("# series (csv)\n{}", table.to_csv());
    run_bridge_faults();
}
