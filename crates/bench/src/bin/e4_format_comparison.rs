//! E4 — open-format cost: JSON vs XML.
//!
//! Claim tested: "the use of open standard data formats allows an easier
//! integration" — at a quantifiable serialization cost. Measures size
//! and encode/decode time of both formats over the payloads the
//! infrastructure actually moves: single measurements, measurement
//! batches, BIM models and area resolutions.

use bench_support::time_it;
use dimmer_core::codec::{self, DataFormat};
use dimmer_core::{DeviceId, Measurement, MeasurementBatch, QuantityKind, Timestamp, Value};
use district::report::{fmt_f64, Table};
use models::bim::BuildingModel;

const ITERATIONS: u32 = 5_000;

fn batch(n: usize) -> MeasurementBatch {
    (0..n)
        .map(|i| {
            Measurement::new(
                DeviceId::new(format!("dev-{i}")).expect("valid"),
                QuantityKind::ActivePower,
                412.5 + i as f64,
                QuantityKind::ActivePower.canonical_unit(),
                Timestamp::from_unix_millis(1_425_859_200_000 + i as i64 * 60_000),
            )
        })
        .collect()
}

fn row(table: &mut Table, payload: &str, value: &Value) {
    for format in DataFormat::all() {
        let text = codec::encode_value(value, format);
        let (_, enc_ns) = time_it(ITERATIONS, || codec::encode_value(value, format).len());
        let (_, dec_ns) = time_it(ITERATIONS, || {
            codec::decode_value(&text, format).expect("round trip")
        });
        table.row([
            payload.to_owned(),
            format.to_string(),
            text.len().to_string(),
            fmt_f64(enc_ns / 1e3, 1),
            fmt_f64(dec_ns / 1e3, 1),
        ]);
    }
}

fn main() {
    let mut table = Table::new(
        "E4: JSON vs XML over real payloads",
        ["payload", "format", "bytes", "encode_us", "decode_us"],
    );

    let single = batch(1).iter().next().expect("one").to_value();
    row(&mut table, "measurement", &single);
    row(&mut table, "batch_10", &batch(10).to_value());
    row(&mut table, "batch_100", &batch(100).to_value());
    row(&mut table, "batch_1000", &batch(1000).to_value());

    let bim = BuildingModel::sample(
        &dimmer_core::BuildingId::new("bench-b").expect("valid"),
        4,
        6,
    );
    row(&mut table, "bim_model", &bim.to_value());

    println!("{table}");
    println!("# series (csv)\n{}", table.to_csv());

    // Size ratio summary (the paper-level takeaway).
    let json = codec::encode_value(&batch(100).to_value(), DataFormat::Json).len() as f64;
    let xml = codec::encode_value(&batch(100).to_value(), DataFormat::Xml).len() as f64;
    println!("xml/json size ratio on batch_100: {:.2}", xml / json);
}
