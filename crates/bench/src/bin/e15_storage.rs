//! E15 — columnar compressed tskv: compression, scans, crash recovery.
//!
//! Claim tested: the Device-proxy local store can hold weeks of
//! telemetry in memory because sealed segments compress device-
//! quantized series by an order of magnitude (Gorilla delta-of-delta
//! timestamps plus a decimal-integer value mode), scans over sealed
//! data stay within 2x of a flat `BTreeMap`, and a crash never loses
//! an acknowledged point — recovery restores the last snapshot and
//! replays the WAL tail.
//!
//! Phase 1 — compression. A corpus of [`EnergyProfile`] series sampled
//! on the scenario cadence, centi-quantized exactly like the ZigBee /
//! EnOcean adapters deliver them, is sealed and compacted; the run
//! reports raw vs compressed bytes per corpus. An unquantized
//! full-precision float corpus rides along to show the XOR-fallback
//! floor.
//!
//! Phase 2 — scan throughput. Borrowed scans ([`TimeSeriesStore::
//! for_each_in`]) over the fully sealed corpus race the same points in
//! a flat `BTreeMap<i64, f64>`; both sides fold the identical checksum.
//! The 2x bound is asserted in optimized builds only — debug-build
//! timings are noise.
//!
//! Phase 3 — recovery time vs WAL length. Stores whose WAL holds 1k /
//! 10k / 100k un-checkpointed records are crash-recovered and timed;
//! replay must account for every record.
//!
//! Phase 4 — seeded crash sweep. A small district runs with rotating
//! Device-proxy crashes; odd rounds crash mid-flight (pure WAL
//! replay), even rounds freeze the torn seal-then-truncate window
//! first. Every point acknowledged at the crash instant must read back
//! bit-identically after recovery, and the flight recorder must show
//! measurement ingest on both sides of every crash window.
//!
//! `DIMMER_E15_SMOKE=1` shrinks the corpus for CI debug builds.
//! `DIMMER_E15_JSON=<file>` appends one JSON line per phase for
//! `scripts/bench_gate.sh`.

use district::deploy::Deployment;
use district::report::{fmt_bytes, fmt_f64, Table};
use district::scenario::ScenarioConfig;
use models::profiles::EnergyProfile;
use proxy::device_proxy::DeviceProxyNode;
use simnet::telemetry::flight::reconstruct;
use simnet::{NodeId, SimConfig, SimDuration, Simulator};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;
use storage::tskv::{TimeSeriesStore, TskvConfig};

use dimmer_core::QuantityKind;

/// Sampling cadence of the synthetic corpus (the scenario default).
const CADENCE_MILLIS: i64 = 60_000;
/// Unix epoch of the corpus (matches the scenario default, 2024-01-01).
const EPOCH_MILLIS: i64 = 1_704_067_200_000;
/// Quantities mixed into the corpus, one series each per building.
const QUANTITIES: [QuantityKind; 6] = [
    QuantityKind::Temperature,
    QuantityKind::ActivePower,
    QuantityKind::Voltage,
    QuantityKind::Humidity,
    QuantityKind::ElectricalEnergy,
    QuantityKind::Co2,
];
/// Timed passes per scan measurement; the minimum is reported.
const SCAN_PASSES: usize = 5;
/// Compression floor asserted for the device-quantized corpus.
const MIN_RATIO: f64 = 8.0;
/// Scan bound vs the flat reference, asserted in optimized builds.
const MAX_SCAN_REL: f64 = 2.0;

/// Wire quantization per quantity, mirroring the protocol adapters:
/// ZigBee reports temperature and humidity in centi-units, energy in
/// 0.01 kWh metering ticks and power in integer watts; voltage
/// registers carry decivolts and CO2 integer ppm.
fn wire_scale(q: QuantityKind) -> f64 {
    match q {
        QuantityKind::Temperature | QuantityKind::Humidity | QuantityKind::ElectricalEnergy => {
            100.0
        }
        QuantityKind::Voltage => 10.0,
        _ => 1.0,
    }
}

fn quantize(q: QuantityKind, v: f64) -> f64 {
    let s = wire_scale(q);
    (v * s).round() / s
}

fn corpus(points_per_series: usize, quantized: bool) -> Vec<(String, Vec<(i64, f64)>)> {
    QUANTITIES
        .iter()
        .enumerate()
        .map(|(i, &q)| {
            let mut profile = EnergyProfile::for_quantity(q, 0xE15 + i as u64);
            let series: Vec<(i64, f64)> = (0..points_per_series)
                .map(|p| {
                    let t = EPOCH_MILLIS + p as i64 * CADENCE_MILLIS;
                    let v = profile.sample(t);
                    (t, if quantized { quantize(q, v) } else { v })
                })
                .collect();
            (format!("bld:{q:?}"), series)
        })
        .collect()
}

struct CompressResult {
    corpus: &'static str,
    points: u64,
    bytes_raw: u64,
    bytes_compressed: u64,
    ratio: f64,
    store: TimeSeriesStore,
}

fn run_compress(points_per_series: usize, quantize: bool) -> CompressResult {
    let mut store = TimeSeriesStore::new();
    let data = corpus(points_per_series, quantize);
    for (name, series) in &data {
        for &(t, v) in series {
            store.insert(name, t, v);
        }
    }
    store.seal_all();
    store.maintain();
    let stats = store.stats();
    assert_eq!(stats.head_points, 0, "seal_all left points in the head");
    CompressResult {
        corpus: if quantize { "quantized" } else { "float" },
        points: stats.sealed_points as u64,
        bytes_raw: stats.bytes_raw,
        bytes_compressed: stats.bytes_compressed,
        ratio: stats.bytes_raw as f64 / stats.bytes_compressed.max(1) as f64,
        store,
    }
}

struct ScanResult {
    points: u64,
    flat_mpts: f64,
    sealed_mpts: f64,
    map_mpts: f64,
    rel: f64,
}

/// Minimum wall-clock over `SCAN_PASSES` runs of `f`, in seconds.
fn timed(mut f: impl FnMut() -> u64) -> f64 {
    let mut best = f64::INFINITY;
    let mut checksum = 0u64;
    for _ in 0..SCAN_PASSES {
        let t0 = Instant::now();
        let sum = f();
        best = best.min(t0.elapsed().as_secs_f64());
        if checksum == 0 {
            checksum = sum;
        } else {
            assert_eq!(checksum, sum, "scan checksum unstable across passes");
        }
    }
    black_box(checksum);
    best
}

/// Races the sealed store against the *flat* store — the same facade
/// with every point left in the mutable head, i.e. the engine this PR
/// replaced. A raw `BTreeMap` loop (no facade at all) rides along for
/// reference.
fn run_scan(sealed: &TimeSeriesStore, points_per_series: usize) -> ScanResult {
    let data = corpus(points_per_series, true);
    let mut flat = TimeSeriesStore::with_config(TskvConfig {
        seal_threshold: usize::MAX,
        wal_checkpoint_records: usize::MAX,
        ..TskvConfig::default()
    });
    let maps: Vec<(String, BTreeMap<i64, f64>)> = data
        .iter()
        .map(|(n, s)| (n.clone(), s.iter().copied().collect()))
        .collect();
    for (name, series) in &data {
        for &(t, v) in series {
            flat.insert(name, t, v);
        }
    }
    let total: u64 = maps.iter().map(|(_, m)| m.len() as u64).sum();

    let flat_s = timed(|| {
        let mut sum = 0u64;
        for (name, _) in &maps {
            flat.for_each_in(name, i64::MIN, i64::MAX, |t, v| {
                sum = sum.wrapping_add(t as u64 ^ v.to_bits());
            });
        }
        sum
    });
    let sealed_s = timed(|| {
        let mut sum = 0u64;
        for (name, _) in &maps {
            sealed.for_each_in(name, i64::MIN, i64::MAX, |t, v| {
                sum = sum.wrapping_add(t as u64 ^ v.to_bits());
            });
        }
        sum
    });
    let map_s = timed(|| {
        let mut sum = 0u64;
        for (_, m) in &maps {
            for (&t, &v) in m.range(i64::MIN..i64::MAX) {
                sum = sum.wrapping_add(t as u64 ^ v.to_bits());
            }
        }
        sum
    });
    ScanResult {
        points: total,
        flat_mpts: total as f64 / flat_s / 1e6,
        sealed_mpts: total as f64 / sealed_s / 1e6,
        map_mpts: total as f64 / map_s / 1e6,
        rel: sealed_s / flat_s,
    }
}

struct RecoveryResult {
    wal_records: u64,
    millis: f64,
    krec_per_s: f64,
}

fn run_recovery(wal_records: usize) -> RecoveryResult {
    // A checkpoint threshold above the record count keeps every insert
    // in the WAL tail: recovery cost is pure replay, scaling with it.
    let config = TskvConfig {
        wal_checkpoint_records: usize::MAX,
        ..TskvConfig::default()
    };
    let mut store = TimeSeriesStore::with_config(config);
    let names: Vec<String> = (0..4).map(|s| format!("dev{s}:power")).collect();
    let mut profile = EnergyProfile::for_quantity(QuantityKind::ActivePower, 0xE15);
    for r in 0..wal_records {
        let t = EPOCH_MILLIS + r as i64 * 1_000;
        let v = quantize(QuantityKind::ActivePower, profile.sample(t));
        store.insert(&names[r % names.len()], t, v);
    }
    let mut crashed = store.clone();
    let t0 = Instant::now();
    let replayed = crashed.crash_recover();
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        replayed, wal_records as u64,
        "replay did not account for every WAL record"
    );
    assert_eq!(crashed.len(), store.len(), "recovery lost points");
    RecoveryResult {
        wal_records: wal_records as u64,
        millis: secs * 1e3,
        krec_per_s: wal_records as f64 / secs / 1e3,
    }
}

struct SweepResult {
    rounds: u64,
    acked_points: u64,
    lost: u64,
    wal_replayed: u64,
    segments: u64,
    ingest_before: usize,
    ingest_after: usize,
}

fn run_crash_sweep(rounds: usize) -> SweepResult {
    let scenario = ScenarioConfig::small().build();
    let mut sim = Simulator::new(SimConfig::default());
    sim.telemetry().tracer.set_capacity(1 << 18);
    let deployment = Deployment::build(&mut sim, &scenario);
    let proxies: Vec<NodeId> = deployment.device_proxies().collect();

    let round_gap = SimDuration::from_secs(180);
    let downtime = SimDuration::from_secs(10);
    let mut acked: Vec<(NodeId, Vec<(String, Vec<(i64, u64)>)>)> = Vec::new();
    let mut last_crash_ns = 0u64;
    for round in 0..rounds {
        sim.run_for(round_gap);
        let victim = proxies[round % proxies.len()];
        {
            let proxy = sim.node_mut::<DeviceProxyNode>(victim).expect("victim");
            let store = proxy.store_mut();
            if round % 2 == 0 {
                // The torn window: segments sealed, snapshot written,
                // WAL not yet truncated.
                store.seal_all();
                store.debug_snapshot_without_truncate();
            }
            let names: Vec<String> = store.series_names().map(str::to_owned).collect();
            let contents = names
                .iter()
                .map(|n| {
                    let pts = store
                        .range(n, i64::MIN, i64::MAX)
                        .into_iter()
                        .map(|(t, v)| (t, v.to_bits()))
                        .collect();
                    (n.clone(), pts)
                })
                .collect();
            acked.push((victim, contents));
        }
        last_crash_ns = sim.now().as_nanos();
        sim.crash(victim);
        sim.restart(victim, downtime);
    }
    sim.run_for(round_gap);

    // Zero acknowledged-point loss: every point the victim's WAL had
    // acknowledged at the crash instant must read back bit-identically
    // from the recovered store (which has since kept ingesting).
    let (mut acked_points, mut lost) = (0u64, 0u64);
    let (mut wal_replayed, mut segments) = (0u64, 0u64);
    let mut checked: Vec<NodeId> = Vec::new();
    for &(victim, ref contents) in &acked {
        let proxy = sim.node_ref::<DeviceProxyNode>(victim).expect("victim");
        let store = proxy.store();
        for (name, pts) in contents {
            let now: BTreeMap<i64, u64> = store
                .range(name, i64::MIN, i64::MAX)
                .into_iter()
                .map(|(t, v)| (t, v.to_bits()))
                .collect();
            acked_points += pts.len() as u64;
            lost += pts
                .iter()
                .filter(|&&(t, bits)| now.get(&t) != Some(&bits))
                .count() as u64;
        }
        if !checked.contains(&victim) {
            checked.push(victim);
            let stats = store.stats();
            wal_replayed += stats.wal_replayed;
            segments += stats.segments as u64;
        }
    }

    // Flight-recorder continuity: measurement ingest on both sides of
    // the final crash window.
    let events = sim.telemetry().tracer.events();
    let paths = reconstruct(&events);
    let (mut ingest_before, mut ingest_after) = (0usize, 0usize);
    for p in &paths {
        for h in &p.hops {
            if h.kind == "proxy.ingest" {
                if h.time_ns < last_crash_ns {
                    ingest_before += 1;
                } else {
                    ingest_after += 1;
                }
                break;
            }
        }
    }
    SweepResult {
        rounds: rounds as u64,
        acked_points,
        lost,
        wal_replayed,
        segments,
        ingest_before,
        ingest_after,
    }
}

fn main() {
    let smoke = std::env::var("DIMMER_E15_SMOKE").is_ok_and(|v| v == "1");
    // The corpus stays full-size even in smoke: the compression ratio
    // and the scan race only mean something out of cache. Smoke trims
    // the recovery ladder and the simulated crash sweep instead.
    let points_per_series = 129_600; // 90 days at 60 s
    let (wal_lens, sweep_rounds): (Vec<usize>, usize) = if smoke {
        (vec![1_000, 10_000], 2)
    } else {
        (vec![1_000, 10_000, 100_000], 3)
    };

    let title = if smoke {
        "E15: segment compression (smoke)"
    } else {
        "E15: segment compression (6 series, 90 days at 60 s)"
    };
    let mut table = Table::new(
        title,
        ["corpus", "points", "raw", "compressed", "ratio", "b_per_pt"],
    );
    let quantized = run_compress(points_per_series, true);
    let float = run_compress(points_per_series, false);
    for r in [&quantized, &float] {
        table.row([
            r.corpus.to_owned(),
            r.points.to_string(),
            fmt_bytes(r.bytes_raw),
            fmt_bytes(r.bytes_compressed),
            fmt_f64(r.ratio, 2),
            fmt_f64(r.bytes_compressed as f64 / r.points as f64, 2),
        ]);
    }
    println!("{table}");
    println!("# series (csv)\n{}", table.to_csv());
    assert!(
        quantized.ratio >= MIN_RATIO,
        "quantized corpus compressed only {:.2}x (< {MIN_RATIO}x floor)",
        quantized.ratio
    );
    assert!(
        float.ratio > 1.0,
        "float corpus expanded: {:.2}x",
        float.ratio
    );

    let scan = run_scan(&quantized.store, points_per_series);
    println!(
        "scan: {} points, flat store {} Mpts/s, sealed {} Mpts/s (rel {}x), raw map {} Mpts/s",
        scan.points,
        fmt_f64(scan.flat_mpts, 1),
        fmt_f64(scan.sealed_mpts, 1),
        fmt_f64(scan.rel, 2),
        fmt_f64(scan.map_mpts, 1),
    );
    // Debug-build timings say nothing about the decode path; the bound
    // is enforced where it means something (and in bench_gate.sh).
    if !cfg!(debug_assertions) {
        assert!(
            scan.rel <= MAX_SCAN_REL,
            "sealed scan {:.2}x slower than the flat reference (> {MAX_SCAN_REL}x)",
            scan.rel
        );
    }

    let mut rec_table = Table::new(
        "E15: crash recovery vs WAL length",
        ["wal_records", "recover_ms", "krec_per_s"],
    );
    let mut recoveries: Vec<RecoveryResult> = Vec::new();
    for &len in &wal_lens {
        let r = run_recovery(len);
        rec_table.row([
            r.wal_records.to_string(),
            fmt_f64(r.millis, 2),
            fmt_f64(r.krec_per_s, 0),
        ]);
        recoveries.push(r);
    }
    println!("{rec_table}");
    println!("# series (csv)\n{}", rec_table.to_csv());

    let sweep = run_crash_sweep(sweep_rounds);
    println!(
        "crash sweep: {} rounds, {} acknowledged points checked, {} lost, \
         {} WAL records replayed, {} segments survived",
        sweep.rounds, sweep.acked_points, sweep.lost, sweep.wal_replayed, sweep.segments
    );
    println!(
        "flight recorder: {} ingest flights before the last crash, {} after",
        sweep.ingest_before, sweep.ingest_after
    );
    assert!(sweep.acked_points > 0, "sweep acknowledged no points");
    assert_eq!(sweep.lost, 0, "acknowledged points lost across crashes");
    assert!(sweep.wal_replayed > 0, "recovery never replayed the WAL");
    assert!(sweep.segments > 0, "no sealed segment survived a crash");
    assert!(
        sweep.ingest_before > 0 && sweep.ingest_after > 0,
        "measurement ingest did not straddle the crash windows"
    );

    // Bench-gate hook: one JSON record per phase for bench_gate.sh.
    if let Ok(path) = std::env::var("DIMMER_E15_JSON") {
        if !path.is_empty() {
            use std::io::Write;
            let mut out = String::new();
            for r in [&quantized, &float] {
                out.push_str(&format!(
                    "{{\"e15\":\"compress\",\"corpus\":\"{}\",\"points\":{},\
                     \"bytes_raw\":{},\"bytes_compressed\":{},\"ratio\":{:.2}}}\n",
                    r.corpus, r.points, r.bytes_raw, r.bytes_compressed, r.ratio
                ));
            }
            out.push_str(&format!(
                "{{\"e15\":\"scan\",\"points\":{},\"flat_mpts\":{:.2},\
                 \"sealed_mpts\":{:.2},\"map_mpts\":{:.2},\"rel\":{:.3}}}\n",
                scan.points, scan.flat_mpts, scan.sealed_mpts, scan.map_mpts, scan.rel
            ));
            for r in &recoveries {
                out.push_str(&format!(
                    "{{\"e15\":\"recovery\",\"wal_records\":{},\"millis\":{:.3},\
                     \"krec_per_s\":{:.1}}}\n",
                    r.wal_records, r.millis, r.krec_per_s
                ));
            }
            out.push_str(&format!(
                "{{\"e15\":\"crash_sweep\",\"rounds\":{},\"acked_points\":{},\
                 \"lost\":{},\"wal_replayed\":{},\"segments\":{}}}\n",
                sweep.rounds, sweep.acked_points, sweep.lost, sweep.wal_replayed, sweep.segments
            ));
            let written = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| f.write_all(out.as_bytes()));
            if let Err(e) = written {
                eprintln!("DIMMER_E15_JSON: cannot write {path}: {e}");
            }
        }
    }
}
