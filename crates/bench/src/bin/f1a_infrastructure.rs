//! F1a — the paper's Fig. 1(a), reproduced as executable structure.
//!
//! Prints the assembled infrastructure (what the figure draws) and a
//! full trace of one area query through it (what the figure implies).

use bench_support::deploy_warm;
use district::client::ClientNode;
use district::report::Table;
use district::scenario::ScenarioConfig;
use master::MasterNode;
use proxy::device_proxy::DeviceProxyNode;
use simnet::SimDuration;

fn main() {
    let mut config = ScenarioConfig::small();
    config.districts = 2;
    config.buildings_per_district = 3;
    config.devices_per_building = 2;
    let (mut sim, deployment, scenario) = deploy_warm(config, SimDuration::from_secs(600));

    println!("Fig. 1(a) — infrastructure schema, instantiated\n");
    let mut topology = Table::new(
        "Deployed data sources and proxies",
        ["district", "source kind", "count", "example node"],
    );
    for (d, spec) in deployment.districts.iter().zip(&scenario.districts) {
        topology.row([
            spec.district.to_string(),
            "GIS database".to_owned(),
            "1".to_owned(),
            sim.node_name(d.gis_proxy).to_owned(),
        ]);
        topology.row([
            spec.district.to_string(),
            "measurement archive".to_owned(),
            "1".to_owned(),
            sim.node_name(d.archive_proxy).to_owned(),
        ]);
        topology.row([
            spec.district.to_string(),
            "BIM database (per building)".to_owned(),
            d.bim_proxies.len().to_string(),
            sim.node_name(d.bim_proxies[0]).to_owned(),
        ]);
        topology.row([
            spec.district.to_string(),
            "SIM database (per network)".to_owned(),
            d.sim_proxies.len().to_string(),
            sim.node_name(d.sim_proxies[0]).to_owned(),
        ]);
        topology.row([
            spec.district.to_string(),
            "device + Device-proxy".to_owned(),
            d.device_proxies.len().to_string(),
            sim.node_name(d.device_proxies[0]).to_owned(),
        ]);
    }
    println!("{topology}");

    let master = sim
        .node_ref::<MasterNode>(deployment.master)
        .expect("master");
    println!(
        "master node: {} proxies registered, ontology = {} districts / {} entities / {} devices\n",
        master.proxy_count(),
        master.ontology().district_count(),
        master.ontology().entity_count(),
        master.ontology().device_count()
    );

    // Trace one query.
    println!("--- query trace: end-user asks for district d0's full area ---");
    let client = ClientNode::spawn(
        &mut sim,
        &deployment,
        scenario.districts[0].district.clone(),
        scenario.districts[0].bbox(),
    );
    sim.run_for(SimDuration::from_secs(30));
    let snapshot = sim
        .node_ref::<ClientNode>(client)
        .expect("client")
        .latest_snapshot()
        .expect("completed")
        .clone();
    println!("1. client -> master: GET /district/d0/area?bbox=…");
    println!(
        "2. master -> client: redirect with {} entity URIs + {} device URIs",
        snapshot.resolution.entities.len(),
        snapshot.resolution.devices.len()
    );
    for entity in &snapshot.resolution.entities {
        println!(
            "3. client -> {}: GET /model  ({})",
            entity.db_proxy(),
            entity.kind()
        );
    }
    for device in snapshot.resolution.devices.iter().take(3) {
        println!(
            "4. client -> {}: GET /data?quantity={}  ({})",
            device.proxy(),
            device.quantity(),
            device.protocol()
        );
    }
    if snapshot.resolution.devices.len() > 3 {
        println!(
            "   … {} more device fetches",
            snapshot.resolution.devices.len() - 3
        );
    }
    println!(
        "5. client integrates: {} entity models + {} measurements in {} requests, {:?} end-to-end, {} errors",
        snapshot.entities.len(),
        snapshot.measurements.len(),
        snapshot.requests,
        snapshot.latency(),
        snapshot.errors
    );

    // Per-proxy ingestion proves the left side of the figure is alive.
    let ingested: u64 = deployment
        .device_proxies()
        .map(|p| {
            sim.node_ref::<DeviceProxyNode>(p)
                .expect("proxy")
                .stats()
                .samples_ingested
        })
        .sum();
    println!("\ndevice side: {ingested} samples ingested across all Device-proxies");
    assert_eq!(snapshot.errors, 0);
}
