//! Shared helpers for the experiment binaries.
//!
//! Every experiment binary (`e1_…` … `e9_…`, `f1a_…`, `f1b_…`) prints the
//! table or series recorded in `EXPERIMENTS.md`. This support library
//! centralizes the common moves: deploying a scenario, spawning probe
//! clients, and collecting per-query statistics.

pub mod criterion;

use district::client::{AreaSnapshot, ClientConfig, ClientNode};
use district::deploy::Deployment;
use district::scenario::{Scenario, ScenarioConfig};
use simnet::{NodeId, SimConfig, SimDuration, Simulator};

/// Builds and warms a deployment: proxies registered, `warmup` of device
/// reporting done.
pub fn deploy_warm(
    config: ScenarioConfig,
    warmup: SimDuration,
) -> (Simulator, Deployment, Scenario) {
    let scenario = config.build();
    let mut sim = Simulator::new(SimConfig::default());
    let deployment = Deployment::build(&mut sim, &scenario);
    sim.run_for(warmup);
    (sim, deployment, scenario)
}

/// Spawns `n` one-shot clients querying district 0's full area and runs
/// until they finish; returns their snapshots.
pub fn run_queries(
    sim: &mut Simulator,
    deployment: &Deployment,
    scenario: &Scenario,
    n: usize,
) -> Vec<AreaSnapshot> {
    let district = scenario.districts[0].district.clone();
    let bbox = scenario.districts[0].bbox();
    let clients: Vec<NodeId> = (0..n)
        .map(|i| {
            sim.add_node(
                format!("probe-client-{i}"),
                ClientNode::new(ClientConfig {
                    master: deployment.master,
                    district: district.clone(),
                    bbox,
                    data_window_millis: None,
                    period: None,
                    format: dimmer_core::codec::DataFormat::Json,
                }),
            )
        })
        .collect();
    sim.run_for(SimDuration::from_secs(120));
    clients
        .iter()
        .filter_map(|&c| {
            sim.node_ref::<ClientNode>(c)
                .and_then(ClientNode::latest_snapshot)
                .cloned()
        })
        .collect()
}

/// Wall-clock timing of `f` over `iterations` runs; returns (total
/// seconds, per-iteration nanoseconds).
pub fn time_it<R>(iterations: u32, mut f: impl FnMut() -> R) -> (f64, f64) {
    let start = std::time::Instant::now();
    for _ in 0..iterations {
        std::hint::black_box(f());
    }
    let total = start.elapsed().as_secs_f64();
    (total, total * 1e9 / f64::from(iterations))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deploy_warm_and_query_work() {
        let (mut sim, deployment, scenario) =
            deploy_warm(ScenarioConfig::small(), SimDuration::from_secs(300));
        let snapshots = run_queries(&mut sim, &deployment, &scenario, 2);
        assert_eq!(snapshots.len(), 2);
        assert!(snapshots.iter().all(|s| s.errors == 0));
    }

    #[test]
    fn time_it_measures() {
        let (total, per_iter) = time_it(100, || 1 + 1);
        assert!(total >= 0.0);
        assert!(per_iter >= 0.0);
    }
}
