//! Live area monitoring — the event-driven extension.
//!
//! The paper's middleware heritage (SEEMPubS) is *event-driven and
//! user-centric*: applications should not poll. [`LiveMonitorNode`]
//! combines both halves of the infrastructure: it resolves an area
//! through the master **once** (redirect), then **subscribes** to the
//! matched devices' middleware topics and maintains an always-fresh
//! cache of latest values — zero polling after the initial resolution.

use std::collections::HashMap;

use dimmer_core::{DistrictId, Measurement};
use gis::geo::BoundingBox;
use ontology::AreaResolution;
use proxy::webservice::{WsClient, WsClientEvent, WsRequest};
use proxy::WS_PORT;
use pubsub::{MeasurementTopic, PubSubClient, PubSubEvent, QoS, PUBSUB_PORT};
use simnet::{Context, Node, NodeId, Packet, SimTime, TimerTag};

const WS_TAGS: u64 = 1_000_000_000;
const PUBSUB_TAGS: u64 = 2_000_000_000;

/// One live cache entry.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveValue {
    /// The latest measurement received for the series.
    pub measurement: Measurement,
    /// When (virtual time) it arrived at the monitor.
    pub arrived_at: SimTime,
}

/// Counters of a live monitor.
#[derive(Debug, Clone, Copy, Default)]
pub struct LiveMonitorStats {
    /// Middleware messages received.
    pub updates: u64,
    /// Messages that failed to decode as measurements.
    pub decode_errors: u64,
    /// Devices subscribed to.
    pub subscriptions: u64,
}

/// A client that keeps an area's latest values fresh through the
/// middleware instead of polling proxies.
#[derive(Debug)]
pub struct LiveMonitorNode {
    master: NodeId,
    broker: NodeId,
    district: DistrictId,
    bbox: BoundingBox,
    ws: WsClient,
    pubsub: PubSubClient,
    resolution: Option<AreaResolution>,
    /// `(device, quantity)` → latest value.
    latest: HashMap<(String, String), LiveValue>,
    stats: LiveMonitorStats,
}

impl LiveMonitorNode {
    /// Creates a monitor for `bbox` in `district`.
    pub fn new(master: NodeId, broker: NodeId, district: DistrictId, bbox: BoundingBox) -> Self {
        LiveMonitorNode {
            master,
            broker,
            district,
            bbox,
            ws: WsClient::new(WS_TAGS),
            pubsub: PubSubClient::new(broker, PUBSUB_TAGS),
            resolution: None,
            latest: HashMap::new(),
            stats: LiveMonitorStats::default(),
        }
    }

    /// The area resolution, once the master answered.
    pub fn resolution(&self) -> Option<&AreaResolution> {
        self.resolution.as_ref()
    }

    /// The latest value for a `(device, quantity)` series.
    pub fn latest(&self, device: &str, quantity: &str) -> Option<&LiveValue> {
        self.latest.get(&(device.to_owned(), quantity.to_owned()))
    }

    /// All live series, sorted by key.
    pub fn series(&self) -> Vec<(&(String, String), &LiveValue)> {
        let mut all: Vec<_> = self.latest.iter().collect();
        all.sort_by(|a, b| a.0.cmp(b.0));
        all
    }

    /// Counters.
    pub fn stats(&self) -> LiveMonitorStats {
        self.stats
    }

    /// The broker this monitor listens on.
    pub fn broker(&self) -> NodeId {
        self.broker
    }

    fn subscribe_devices(&mut self, ctx: &mut Context<'_>, resolution: &AreaResolution) {
        for device in &resolution.devices {
            // One wildcard per device: all its quantities. QoS 1 +
            // retained messages give the monitor an immediate first value.
            let filter =
                MeasurementTopic::device_filter(self.district.as_str(), device.device().as_str())
                    .expect("ids satisfy the filter grammar");
            self.pubsub.subscribe(ctx, filter, QoS::AtLeastOnce);
            self.stats.subscriptions += 1;
        }
    }
}

impl Node for LiveMonitorNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let request = WsRequest::get(format!("/district/{}/area", self.district))
            .with_query("bbox", self.bbox.to_query());
        self.ws.request(ctx, self.master, &request);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        match pkt.port {
            WS_PORT => {
                if let Some(WsClientEvent::Response { response, .. }) = self.ws.accept(&pkt) {
                    if response.is_ok() {
                        if let Ok(resolution) = AreaResolution::from_value(&response.body) {
                            self.subscribe_devices(ctx, &resolution);
                            self.resolution = Some(resolution);
                        }
                    }
                }
            }
            PUBSUB_PORT => {
                if let Some(PubSubEvent::Message { payload, .. }) = self.pubsub.accept(ctx, &pkt) {
                    self.stats.updates += 1;
                    let decoded = std::str::from_utf8(&payload)
                        .ok()
                        .and_then(|text| dimmer_core::json::from_str(text).ok())
                        .and_then(|v| Measurement::from_value(&v).ok());
                    match decoded {
                        Some(measurement) => {
                            let key = (
                                measurement.device().as_str().to_owned(),
                                measurement.quantity().as_str().to_owned(),
                            );
                            // Middleware redeliveries can arrive out of
                            // order; keep the chronologically newest.
                            let newer = self.latest.get(&key).is_none_or(|old| {
                                measurement.timestamp() >= old.measurement.timestamp()
                            });
                            if newer {
                                self.latest.insert(
                                    key,
                                    LiveValue {
                                        measurement,
                                        arrived_at: ctx.now(),
                                    },
                                );
                            }
                        }
                        None => self.stats.decode_errors += 1,
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        if tag.0 >= PUBSUB_TAGS {
            self.pubsub.on_timer(ctx, tag);
        } else if tag.0 >= WS_TAGS {
            self.ws.on_timer(ctx, tag);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::Deployment;
    use crate::scenario::ScenarioConfig;
    use simnet::{SimConfig, SimDuration, Simulator};

    fn deployed() -> (Simulator, Deployment, crate::scenario::Scenario) {
        let scenario = ScenarioConfig::small().build();
        let mut sim = Simulator::new(SimConfig::default());
        let deployment = Deployment::build(&mut sim, &scenario);
        sim.run_for(SimDuration::from_secs(300));
        (sim, deployment, scenario)
    }

    #[test]
    fn monitor_resolves_then_tracks_live_values() {
        let (mut sim, deployment, scenario) = deployed();
        let monitor = sim.add_node(
            "monitor",
            LiveMonitorNode::new(
                deployment.master,
                deployment.broker,
                scenario.districts[0].district.clone(),
                scenario.districts[0].bbox(),
            ),
        );
        // Retained messages deliver a first value almost immediately.
        sim.run_for(SimDuration::from_secs(5));
        {
            let m = sim.node_ref::<LiveMonitorNode>(monitor).unwrap();
            assert!(m.resolution().is_some(), "area resolved");
            assert_eq!(m.stats().subscriptions, 12);
            assert!(!m.series().is_empty(), "retained messages prime the cache");
        }
        // Values keep refreshing without any further WS traffic.
        sim.run_for(SimDuration::from_secs(300));
        let m = sim.node_ref::<LiveMonitorNode>(monitor).unwrap();
        assert!(m.stats().updates > 12, "{:?}", m.stats());
        assert_eq!(m.stats().decode_errors, 0);
        // After setup the monitor only acknowledges QoS 1 deliveries: its
        // outbound traffic is bounded by what it received (1 resolve + 12
        // subscribes + one ack per update), i.e. no polling.
        let metrics = sim.node_metrics(monitor);
        assert!(
            metrics.packets_sent <= m.stats().updates + 20,
            "sent {} for {} updates — the monitor must not poll",
            metrics.packets_sent,
            m.stats().updates
        );

        // Latest values are the chronologically newest.
        for (key, value) in m.series() {
            assert_eq!(value.measurement.device().as_str(), key.0);
            assert_eq!(value.measurement.quantity().as_str(), key.1);
        }
    }

    #[test]
    fn monitor_sees_fresher_values_over_time() {
        let (mut sim, deployment, scenario) = deployed();
        let monitor = sim.add_node(
            "monitor",
            LiveMonitorNode::new(
                deployment.master,
                deployment.broker,
                scenario.districts[0].district.clone(),
                scenario.districts[0].bbox(),
            ),
        );
        sim.run_for(SimDuration::from_secs(30));
        let first: Vec<i64> = sim
            .node_ref::<LiveMonitorNode>(monitor)
            .unwrap()
            .series()
            .iter()
            .map(|(_, v)| v.measurement.timestamp().as_unix_millis())
            .collect();
        sim.run_for(SimDuration::from_secs(180));
        let later: Vec<i64> = sim
            .node_ref::<LiveMonitorNode>(monitor)
            .unwrap()
            .series()
            .iter()
            .map(|(_, v)| v.measurement.timestamp().as_unix_millis())
            .collect();
        assert!(later.len() >= first.len());
        let sum_first: i64 = first.iter().sum();
        let sum_later: i64 = later.iter().take(first.len()).sum();
        assert!(sum_later > sum_first, "timestamps advanced");
    }

    #[test]
    fn monitor_with_unknown_district_stays_empty() {
        let (mut sim, deployment, scenario) = deployed();
        let monitor = sim.add_node(
            "monitor",
            LiveMonitorNode::new(
                deployment.master,
                deployment.broker,
                DistrictId::new("ghost").unwrap(),
                scenario.districts[0].bbox(),
            ),
        );
        sim.run_for(SimDuration::from_secs(60));
        let m = sim.node_ref::<LiveMonitorNode>(monitor).unwrap();
        assert!(m.resolution().is_none());
        assert!(m.series().is_empty());
    }
}
