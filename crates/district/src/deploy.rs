//! Deployment: a scenario turned into live simulation nodes.
//!
//! This reproduces the paper's Fig. 1(a) literally: for every data
//! source in the scenario a node plus its proxy is instantiated — GIS
//! databases, per-building BIM databases, per-network SIM databases,
//! measurement archives, and every device with its Device-proxy — all
//! registered on one master node, publishing into one middleware broker.

use dimmer_core::{ProxyId, QuantityKind};
use master::MasterNode;
use models::profiles::EnergyProfile;
use protocols::device::{
    CoapFieldServer, EnoceanSensor, Ieee802154Sensor, OpcUaFieldServer, UplinkDevice, ZigbeeSensor,
};
use protocols::enocean::Eep;
use protocols::ieee802154::PanId;
use protocols::ProtocolKind;
use proxy::adapters::{
    CoapAdapter, DeviceAdapter, EnoceanAdapter, Ieee802154Adapter, OpcUaAdapter, ZigbeeAdapter,
};
use proxy::database_proxy::{
    BimSource, DatabaseProxyNode, GisSource, MeasurementArchiveSource, SimSource,
};
use proxy::device_proxy::{DeviceProxyConfig, DeviceProxyNode};
use proxy::devices::{CoapFieldNode, OpcUaFieldNode, UplinkDeviceNode};
use pubsub::{BrokerNode, FederationConfig, ShardMap};
use simnet::parallel::ParallelSimulator;
use simnet::{NodeId, SimDuration, SimHost, Simulator};
use streams::{AggregatorConfig, AggregatorNode, WindowSpec};

use crate::scenario::{DeviceSpec, DistrictSpec, Scenario};

/// The node ids of one deployed district.
#[derive(Debug, Clone)]
pub struct DistrictDeployment {
    /// The district id.
    pub district: dimmer_core::DistrictId,
    /// The broker shard serving this district (equals the deployment's
    /// single broker when federation is off).
    pub broker: NodeId,
    /// The GIS Database-proxy.
    pub gis_proxy: NodeId,
    /// The measurement-archive Database-proxy.
    pub archive_proxy: NodeId,
    /// One BIM Database-proxy per building.
    pub bim_proxies: Vec<NodeId>,
    /// One SIM Database-proxy per network.
    pub sim_proxies: Vec<NodeId>,
    /// One Device-proxy per device.
    pub device_proxies: Vec<NodeId>,
    /// The device nodes themselves.
    pub devices: Vec<NodeId>,
    /// The district aggregator, when the scenario enables aggregation.
    pub aggregator: Option<NodeId>,
}

/// A deployed scenario.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The master node.
    pub master: NodeId,
    /// The middleware broker — shard 0 when the scenario federates, so
    /// single-broker call sites keep working unchanged.
    pub broker: NodeId,
    /// Every broker shard, index order (`[broker]` when federation is
    /// off).
    pub brokers: Vec<NodeId>,
    /// Per-district node ids.
    pub districts: Vec<DistrictDeployment>,
}

impl Deployment {
    /// Instantiates `scenario` on `sim`.
    pub fn build(sim: &mut Simulator, scenario: &Scenario) -> Deployment {
        Self::build_on(sim, scenario)
    }

    /// Instantiates `scenario` on a sharded parallel simulation: broker
    /// shard `i` and everything publishing into it (the district's
    /// proxies, devices and aggregator) land on simulation shard
    /// `i % shards`, so the only cross-shard traffic is what really
    /// crosses broker boundaries — bridge batches and master RPCs.
    pub fn build_parallel(sim: &mut ParallelSimulator, scenario: &Scenario) -> Deployment {
        Self::build_on(sim, scenario)
    }

    /// Instantiates `scenario` on any [`SimHost`].
    pub fn build_on<S: SimHost>(sim: &mut S, scenario: &Scenario) -> Deployment {
        let master = sim.place_node(
            0,
            "master".to_owned(),
            MasterNode::new(
                scenario
                    .districts
                    .iter()
                    .map(|d| (d.district.clone(), d.name.clone())),
            ),
        );
        if let Some(ov) = scenario.config.overload {
            sim.host_node_mut::<MasterNode>(master)
                .expect("just added")
                .set_admission_limits(ov.master_capacity, ov.master_rate);
        }

        // Broker tier: the classic single broker, or one labeled broker
        // per shard bridged into a federation (district i → shard
        // i % shards, mirroring the scenario's round-robin promise).
        // Under a parallel host, broker i lives on simulation shard i.
        let brokers: Vec<NodeId> =
            match scenario.config.federation {
                None => vec![sim.place_node(0, "broker".to_owned(), BrokerNode::new())],
                Some(spec) => {
                    let ids: Vec<NodeId> = (0..spec.shards)
                        .map(|i| {
                            sim.place_node(
                                i,
                                format!("broker-{i}"),
                                BrokerNode::with_label(format!("b{i}")),
                            )
                        })
                        .collect();
                    let mut shard = ShardMap::new(spec.shards);
                    for (i, d) in scenario.districts.iter().enumerate() {
                        shard.assign(d.district.as_str(), i % spec.shards);
                    }
                    for (i, &id) in ids.iter().enumerate() {
                        sim.host_node_mut::<BrokerNode>(id)
                            .expect("just added")
                            .federate(FederationConfig {
                                index: i,
                                brokers: ids.clone(),
                                shard: shard.clone(),
                                batch: spec.batch_policy(),
                            });
                    }
                    sim.host_node_mut::<MasterNode>(master)
                        .expect("just added")
                        .set_shard_owners(
                            scenario.districts.iter().enumerate().map(|(i, d)| {
                                (d.district.clone(), format!("b{}", i % spec.shards))
                            }),
                        );
                    ids
                }
            };

        let districts = scenario
            .districts
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let broker_idx = i % brokers.len();
                deploy_district(sim, scenario, d, master, brokers[broker_idx], broker_idx)
            })
            .collect();
        Deployment {
            master,
            broker: brokers[0],
            brokers,
            districts,
        }
    }

    /// Every Device-proxy across districts.
    pub fn device_proxies(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.districts
            .iter()
            .flat_map(|d| d.device_proxies.iter().copied())
    }

    /// Every aggregator across districts (empty without aggregation).
    pub fn aggregators(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.districts.iter().filter_map(|d| d.aggregator)
    }

    /// Every Database-proxy across districts.
    pub fn database_proxies(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.districts.iter().flat_map(|d| {
            [d.gis_proxy, d.archive_proxy]
                .into_iter()
                .chain(d.bim_proxies.iter().copied())
                .chain(d.sim_proxies.iter().copied())
        })
    }

    /// Total node count of the deployment (excluding clients).
    pub fn node_count(&self) -> usize {
        1 + self.brokers.len()
            + self
                .districts
                .iter()
                .map(|d| {
                    2 + d.bim_proxies.len()
                        + d.sim_proxies.len()
                        + d.device_proxies.len()
                        + d.devices.len()
                        + usize::from(d.aggregator.is_some())
                })
                .sum::<usize>()
    }
}

fn deploy_district<S: SimHost>(
    sim: &mut S,
    scenario: &Scenario,
    spec: &DistrictSpec,
    master: NodeId,
    broker: NodeId,
    shard: usize,
) -> DistrictDeployment {
    let did = &spec.district;
    let config = &scenario.config;

    // GIS database + proxy.
    let mut gis_db = gis::feature::GisDatabase::new();
    for b in &spec.buildings {
        gis_db
            .insert(gis::feature::Feature::new(
                format!("feat-{}", b.building),
                gis::feature::Geometry::Polygon(b.footprint.clone()),
                dimmer_core::Value::object([
                    ("kind", dimmer_core::Value::from("building")),
                    ("building", dimmer_core::Value::from(b.building.as_str())),
                ]),
            ))
            .expect("feature ids are unique");
    }
    let gis_proxy = sim.place_node(
        shard,
        format!("gis-{did}"),
        DatabaseProxyNode::new(
            ProxyId::new(format!("gis-{did}")).expect("grammatical"),
            did.clone(),
            master,
            Box::new(GisSource::new(gis_db)),
        ),
    );

    // Measurement archive (historical CSV) + proxy.
    let archive_csv = synthesize_archive(spec, config.archive_rows, config.epoch_offset_millis);
    let archive_source =
        MeasurementArchiveSource::new(&archive_csv).expect("synthesized archive is valid");
    let archive_proxy = sim.place_node(
        shard,
        format!("archive-{did}"),
        DatabaseProxyNode::new(
            ProxyId::new(format!("archive-{did}")).expect("grammatical"),
            did.clone(),
            master,
            Box::new(archive_source),
        ),
    );

    // BIM databases + proxies.
    let mut bim_proxies = Vec::with_capacity(spec.buildings.len());
    for b in &spec.buildings {
        let source = BimSource::new(b.bim.to_tables())
            .expect("sample BIM tables reassemble")
            .with_location(b.location)
            .with_gis_feature(format!("feat-{}", b.building));
        bim_proxies.push(sim.place_node(
            shard,
            format!("bim-{}", b.building),
            DatabaseProxyNode::new(
                ProxyId::new(format!("bim-{}", b.building)).expect("grammatical"),
                did.clone(),
                master,
                Box::new(source),
            ),
        ));
    }

    // SIM databases + proxies.
    let mut sim_proxies = Vec::with_capacity(spec.networks.len());
    for n in &spec.networks {
        let legacy = n.model.to_legacy().expect("sample networks export");
        let source = SimSource::new(&legacy)
            .expect("legacy dump parses back")
            .with_location(n.location);
        sim_proxies.push(sim.place_node(
            shard,
            format!("sim-{}", n.network),
            DatabaseProxyNode::new(
                ProxyId::new(format!("sim-{}", n.network)).expect("grammatical"),
                did.clone(),
                master,
                Box::new(source),
            ),
        ));
    }

    // Devices + Device-proxies.
    let mut device_proxies = Vec::with_capacity(spec.device_count());
    let mut devices = Vec::with_capacity(spec.device_count());
    for b in &spec.buildings {
        for dev in &b.devices {
            let (proxy_node, device_node) = deploy_device(
                sim,
                scenario,
                spec,
                b.building.as_str(),
                dev,
                master,
                broker,
                shard,
            );
            device_proxies.push(proxy_node);
            devices.push(device_node);
        }
    }

    // Aggregation tier (opt-in): one windowed aggregator per district.
    let aggregator = config.aggregation.map(|agg| {
        let mut agg_config = AggregatorConfig::new(
            ProxyId::new(format!("agg-{did}")).expect("grammatical"),
            did.clone(),
            master,
            broker,
            config.epoch_offset_millis,
        );
        agg_config.window = WindowSpec::tumbling(agg.window_millis);
        agg_config.lateness_millis = agg.lateness_millis;
        if let Some(ov) = config.overload {
            agg_config = agg_config.with_admission(ov.aggregator_capacity, ov.aggregator_rate);
        }
        sim.place_node(shard, format!("agg-{did}"), AggregatorNode::new(agg_config))
    });

    DistrictDeployment {
        district: did.clone(),
        broker,
        gis_proxy,
        archive_proxy,
        bim_proxies,
        sim_proxies,
        device_proxies,
        devices,
        aggregator,
    }
}

#[allow(clippy::too_many_arguments)]
fn deploy_device<S: SimHost>(
    sim: &mut S,
    scenario: &Scenario,
    district: &DistrictSpec,
    entity_id: &str,
    dev: &DeviceSpec,
    master: NodeId,
    broker: NodeId,
    shard: usize,
) -> (NodeId, NodeId) {
    let config = &scenario.config;
    let pan = PanId(0x2300 + district_pan_offset(district));
    let adapter: Box<dyn DeviceAdapter> = match dev.protocol {
        ProtocolKind::Ieee802154 => Box::new(Ieee802154Adapter::new(pan, dev.address as u16)),
        ProtocolKind::Zigbee => Box::new(ZigbeeAdapter::new(dev.address as u16)),
        ProtocolKind::EnOcean => Box::new(EnoceanAdapter::new(
            dev.address,
            dev.eep.unwrap_or(Eep::A50205),
        )),
        ProtocolKind::OpcUa => {
            // The adapter needs the field server's value node; create the
            // server model up front so ids agree.
            let server = OpcUaFieldServer::new(dev.quantity);
            Box::new(OpcUaAdapter::new(server.value_node().clone(), dev.quantity))
        }
        ProtocolKind::Coap => Box::new(CoapAdapter::new(dev.quantity)),
    };
    let proxy_config = DeviceProxyConfig {
        proxy: ProxyId::new(format!("proxy-{}", dev.device)).expect("grammatical"),
        district: district.district.clone(),
        entity_id: entity_id.to_owned(),
        device: dev.device.clone(),
        primary_quantity: dev.quantity,
        master,
        broker: Some(broker),
        device_node: None, // attached below
        poll_interval: matches!(dev.protocol, ProtocolKind::OpcUa | ProtocolKind::Coap)
            .then_some(config.sample_interval),
        retention: Some(SimDuration::from_hours(24 * 7)),
        location: Some(dev.location),
        epoch_offset_millis: config.epoch_offset_millis,
        publish_qos: config.publish_qos,
    };
    let proxy_node = sim.place_node(
        shard,
        format!("devproxy-{}", dev.device),
        DeviceProxyNode::new(proxy_config, adapter),
    );

    let profile = EnergyProfile::for_quantity(dev.quantity, config.seed ^ u64::from(dev.address));
    let device_node = match dev.protocol {
        ProtocolKind::OpcUa => sim.place_node(
            shard,
            format!("device-{}", dev.device),
            OpcUaFieldNode::new(
                OpcUaFieldServer::new(dev.quantity),
                profile,
                config.sample_interval,
                config.epoch_offset_millis,
            ),
        ),
        ProtocolKind::Coap => sim.place_node(
            shard,
            format!("device-{}", dev.device),
            CoapFieldNode::new(
                CoapFieldServer::new(dev.quantity),
                profile,
                config.sample_interval,
                config.epoch_offset_millis,
            ),
        ),
        push => {
            let device: Box<dyn UplinkDevice> = match push {
                ProtocolKind::Ieee802154 => {
                    Box::new(Ieee802154Sensor::new(pan, dev.address as u16, dev.quantity))
                }
                ProtocolKind::Zigbee => {
                    Box::new(ZigbeeSensor::new(dev.address as u16, dev.quantity))
                }
                ProtocolKind::EnOcean => Box::new(EnoceanSensor::new(
                    dev.address,
                    dev.eep.unwrap_or(Eep::A50205),
                )),
                ProtocolKind::OpcUa | ProtocolKind::Coap => unreachable!("handled above"),
            };
            sim.place_node(
                shard,
                format!("device-{}", dev.device),
                UplinkDeviceNode::new(
                    device,
                    profile,
                    proxy_node,
                    config.sample_interval,
                    config.epoch_offset_millis,
                ),
            )
        }
    };
    sim.host_node_mut::<DeviceProxyNode>(proxy_node)
        .expect("just added")
        .set_device_node(device_node);
    (proxy_node, device_node)
}

fn district_pan_offset(district: &DistrictSpec) -> u16 {
    // Stable per-district PAN: hash the id into a small offset.
    district.district.as_str().bytes().fold(0u16, |acc, b| {
        acc.wrapping_mul(31).wrapping_add(u16::from(b))
    }) % 0x100
}

/// Synthesizes the historical CSV archive of a district.
fn synthesize_archive(spec: &DistrictSpec, rows: usize, epoch_millis: i64) -> String {
    use storage::legacy::csv::CsvDocument;
    let mut doc = CsvDocument::new(
        ["timestamp", "device", "quantity", "value", "unit"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect(),
    );
    let devices: Vec<&DeviceSpec> = spec
        .buildings
        .iter()
        .flat_map(|b| b.devices.iter())
        .collect();
    if devices.is_empty() {
        return doc.encode();
    }
    let mut profiles: Vec<EnergyProfile> = devices
        .iter()
        .map(|d| EnergyProfile::for_quantity(d.quantity, 0xA5C1 ^ u64::from(d.address)))
        .collect();
    // History: the week before the simulation epoch, hourly.
    let start = epoch_millis - 7 * 24 * 3_600_000;
    for row in 0..rows {
        let idx = row % devices.len();
        let t = start + (row / devices.len()) as i64 * 3_600_000;
        let dev = devices[idx];
        let value = profiles[idx].sample(t);
        doc.push(vec![
            dimmer_core::Timestamp::from_unix_millis(t).to_string(),
            dev.device.as_str().to_owned(),
            dev.quantity.as_str().to_owned(),
            format!("{value:.3}"),
            dev.quantity.canonical_unit().symbol().to_owned(),
        ])
        .expect("archive schema is static");
    }
    doc.encode()
}

/// Looks up the primary quantity a device spec reports (exposed for
/// experiment harnesses that label series).
pub fn quantity_of(spec: &DeviceSpec) -> QuantityKind {
    spec.quantity
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use simnet::{SimConfig, Simulator};

    #[test]
    fn deployment_registers_everything() {
        let scenario = ScenarioConfig::small().build();
        let mut sim = Simulator::new(SimConfig::default());
        let deployment = Deployment::build(&mut sim, &scenario);
        // 1 master + 1 broker + (gis + archive + 4 bim + 1 sim) + 12*2 nodes
        assert_eq!(deployment.node_count(), sim.node_count());
        sim.run_for(simnet::SimDuration::from_secs(120));

        let m = sim.node_ref::<MasterNode>(deployment.master).unwrap();
        // gis + archive + 4 bim + 1 sim + 12 device proxies = 19
        assert_eq!(m.proxy_count(), 19, "stats: {:?}", m.stats());
        assert_eq!(m.ontology().device_count(), 12);
        assert_eq!(m.ontology().entity_count(), 5);

        // Every proxy saw its registration acknowledged.
        for p in deployment.device_proxies() {
            assert!(
                sim.node_ref::<DeviceProxyNode>(p).unwrap().is_registered(),
                "{}",
                sim.node_name(p)
            );
        }
        for p in deployment.database_proxies() {
            assert!(
                sim.node_ref::<DatabaseProxyNode>(p)
                    .unwrap()
                    .is_registered(),
                "{}",
                sim.node_name(p)
            );
        }
    }

    #[test]
    fn devices_feed_their_proxies() {
        let scenario = ScenarioConfig::small().build();
        let mut sim = Simulator::new(SimConfig::default());
        let deployment = Deployment::build(&mut sim, &scenario);
        sim.run_for(simnet::SimDuration::from_secs(600));
        let mut total = 0;
        for p in deployment.device_proxies() {
            let proxy = sim.node_ref::<DeviceProxyNode>(p).unwrap();
            assert!(
                proxy.stats().samples_ingested > 0,
                "{} ingested nothing",
                sim.node_name(p)
            );
            assert_eq!(proxy.stats().decode_errors, 0);
            total += proxy.stats().samples_ingested;
        }
        // 12 devices at 1/min for 10 min ≈ 120 samples (plus dual-quantity
        // EnOcean profiles).
        assert!(total >= 100, "total {total}");

        // The broker saw retained publications.
        let broker = sim.node_ref::<BrokerNode>(deployment.broker).unwrap();
        assert!(broker.stats().published > 0);
        assert!(broker.stats().retained > 0);
    }

    #[test]
    fn federated_deployment_bridges_districts() {
        use crate::live::LiveMonitorNode;
        use crate::scenario::FederationSpec;

        let scenario = ScenarioConfig::small()
            .with_districts(2)
            .with_federation(FederationSpec::sharded(2))
            .build();
        let mut sim = Simulator::new(SimConfig::default());
        let deployment = Deployment::build(&mut sim, &scenario);
        assert_eq!(deployment.brokers.len(), 2);
        assert_eq!(deployment.broker, deployment.brokers[0], "back-compat");
        assert_eq!(deployment.node_count(), sim.node_count());
        // Round-robin shard ownership: district 1 lives on broker 1.
        assert_eq!(deployment.districts[1].broker, deployment.brokers[1]);

        sim.run_for(simnet::SimDuration::from_secs(120));

        // The master's ontology records each district's owning shard.
        let shards: Vec<Option<String>> = {
            let m = sim.node_ref::<MasterNode>(deployment.master).unwrap();
            scenario
                .districts
                .iter()
                .map(|d| {
                    m.ontology()
                        .district(&d.district)
                        .unwrap()
                        .broker()
                        .map(str::to_owned)
                })
                .collect()
        };
        assert_eq!(shards, vec![Some("b0".into()), Some("b1".into())]);

        // Each district's devices publish into their local shard only.
        for (i, broker) in deployment.brokers.iter().enumerate() {
            let b = sim.node_ref::<BrokerNode>(*broker).unwrap();
            assert!(b.stats().published > 0, "shard {i} saw no publishes");
        }

        // A monitor of district 1 listening on broker 0 receives every
        // value across the bridge.
        let monitor = sim.add_node(
            "monitor",
            LiveMonitorNode::new(
                deployment.master,
                deployment.brokers[0],
                scenario.districts[1].district.clone(),
                scenario.districts[1].bbox(),
            ),
        );
        sim.run_for(simnet::SimDuration::from_secs(180));
        let m = sim.node_ref::<LiveMonitorNode>(monitor).unwrap();
        assert!(m.resolution().is_some(), "area resolved");
        assert!(
            !m.series().is_empty(),
            "retained messages crossed the bridge: {:?}",
            m.stats()
        );
        assert!(m.stats().updates > 0, "{:?}", m.stats());
        // The frames actually rode the bridge, batched.
        let b0 = sim.node_ref::<BrokerNode>(deployment.brokers[0]).unwrap();
        let b1 = sim.node_ref::<BrokerNode>(deployment.brokers[1]).unwrap();
        assert!(b0.bridge_stats().frames_received > 0);
        assert!(b1.bridge_stats().frames_acked > 0);
        assert_eq!(b1.bridge_stats().frames_dropped, 0);
    }

    #[test]
    fn parallel_deployment_places_districts_on_broker_shards() {
        use crate::scenario::FederationSpec;
        use simnet::parallel::{ParallelConfig, ParallelSimulator};

        let scenario = ScenarioConfig::small()
            .with_districts(4)
            .with_federation(FederationSpec::sharded(2))
            .build();
        let mut sim = ParallelSimulator::new(ParallelConfig {
            shards: 2,
            threads: 2,
            ..ParallelConfig::default()
        });
        let deployment = Deployment::build_parallel(&mut sim, &scenario);
        assert_eq!(deployment.master.shard(), 0);
        for (i, b) in deployment.brokers.iter().enumerate() {
            assert_eq!(b.shard(), i % 2, "broker {i} on its own shard");
        }
        // Every district node lives on its broker's shard.
        for d in &deployment.districts {
            let home = d.broker.shard();
            for id in d
                .device_proxies
                .iter()
                .chain(d.devices.iter())
                .chain([d.gis_proxy, d.archive_proxy].iter())
            {
                assert_eq!(id.shard(), home, "{}", sim.node_name(*id));
            }
        }

        sim.run_for(simnet::SimDuration::from_secs(120));
        // Cross-shard master RPCs all completed: every proxy registered.
        for p in deployment.device_proxies() {
            assert!(
                sim.node_ref::<DeviceProxyNode>(p).unwrap().is_registered(),
                "{}",
                sim.node_name(p)
            );
        }
        let m = sim.node_ref::<MasterNode>(deployment.master).unwrap();
        assert_eq!(m.ontology().device_count(), 4 * 12);
        assert!(sim.stats().cross_packets > 0, "RPCs crossed shards");
    }

    #[test]
    fn archive_synthesis_is_valid_csv() {
        let scenario = ScenarioConfig::small().build();
        let csv = synthesize_archive(&scenario.districts[0], 48, 1_000_000);
        let source = MeasurementArchiveSource::new(&csv).unwrap();
        assert_eq!(source.len(), 48);
    }
}
