//! The centralized baseline architecture.
//!
//! The paper argues that "the union of different databases into a single
//! one is usually not feasible" and that a central point would have to
//! understand every format itself. This module builds exactly that
//! strawman so experiments can quantify it: one [`CentralServerNode`]
//! that (i) receives **raw protocol frames** from every device and must
//! keep a per-device protocol adapter, (ii) stores everything in one
//! database, (iii) holds every BIM/SIM/GIS model, and (iv) answers area
//! queries by returning **all the data inline** — concentrating both the
//! interoperability burden and the traffic in one node.

use std::collections::HashMap;

use dimmer_core::{DeviceId, Measurement, MeasurementBatch, QuantityKind, Timestamp, Value};
use gis::geo::{BoundingBox, GeoPoint};
use models::profiles::EnergyProfile;
use protocols::device::{
    CoapFieldServer, EnoceanSensor, Ieee802154Sensor, OpcUaFieldServer, ZigbeeSensor,
};
use protocols::enocean::Eep;
use protocols::ieee802154::PanId;
use protocols::ProtocolKind;
use proxy::adapters::{
    CoapAdapter, DeviceAdapter, EnoceanAdapter, Ieee802154Adapter, OpcUaAdapter, ZigbeeAdapter,
};
use proxy::devices::{unix_millis_at, CoapFieldNode, OpcUaFieldNode, UplinkDeviceNode};
use proxy::webservice::{status, WsResponse, WsServer};
use proxy::{DEVICE_UPLINK_PORT, OPCUA_PORT, WS_PORT};
use simnet::rpc::{RequestTracker, RpcEvent};
use simnet::{Context, Node, NodeId, Packet, SimDuration, Simulator, TimerTag};
use storage::tskv::TimeSeriesStore;

use crate::scenario::Scenario;

const TAG_POLL: TimerTag = TimerTag(1);
const POLL_TAGS: u64 = 3_000_000_000;

/// Counters of the central server.
#[derive(Debug, Clone, Copy, Default)]
pub struct CentralStats {
    /// Raw frames decoded.
    pub frames_decoded: u64,
    /// Frames that failed decoding.
    pub decode_errors: u64,
    /// Samples stored.
    pub samples: u64,
    /// Area queries answered.
    pub queries: u64,
}

struct DeviceEntry {
    adapter: Box<dyn DeviceAdapter>,
    device: DeviceId,
    location: GeoPoint,
}

/// The monolithic central server.
pub struct CentralServerNode {
    /// device node → its protocol adapter (the interoperability burden
    /// the distributed design pushes to the edges).
    devices: HashMap<NodeId, DeviceEntry>,
    /// Polled (OPC UA) device nodes.
    polled: Vec<NodeId>,
    poll_tracker: RequestTracker,
    poll_interval: SimDuration,
    store: TimeSeriesStore,
    /// entity id → (location, translated model) — preloaded, the "union
    /// database".
    entities: Vec<(String, GeoPoint, Value)>,
    ws: WsServer,
    epoch_offset_millis: i64,
    stats: CentralStats,
}

impl std::fmt::Debug for CentralServerNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CentralServerNode")
            .field("devices", &self.devices.len())
            .field("entities", &self.entities.len())
            .field("samples", &self.stats.samples)
            .finish()
    }
}

impl CentralServerNode {
    /// Creates an empty central server.
    pub fn new(poll_interval: SimDuration, epoch_offset_millis: i64) -> Self {
        CentralServerNode {
            devices: HashMap::new(),
            polled: Vec::new(),
            poll_tracker: RequestTracker::new(POLL_TAGS),
            poll_interval,
            store: TimeSeriesStore::new(),
            entities: Vec::new(),
            ws: WsServer::new(),
            epoch_offset_millis,
            stats: CentralStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> CentralStats {
        self.stats
    }

    /// The single central store.
    pub fn store(&self) -> &TimeSeriesStore {
        &self.store
    }

    fn register_device(
        &mut self,
        node: NodeId,
        device: DeviceId,
        location: GeoPoint,
        adapter: Box<dyn DeviceAdapter>,
        polled: bool,
    ) {
        if polled {
            self.polled.push(node);
        }
        self.devices.insert(
            node,
            DeviceEntry {
                adapter,
                device,
                location,
            },
        );
    }

    fn add_entity(&mut self, id: String, location: GeoPoint, model: Value) {
        self.entities.push((id, location, model));
    }

    fn ingest(&mut self, from: NodeId, samples: Vec<(QuantityKind, f64)>, unix: i64) {
        let Some(entry) = self.devices.get(&from) else {
            return;
        };
        for (quantity, value) in samples {
            self.store.insert(
                &format!("{}:{}", entry.device, quantity.as_str()),
                unix,
                value,
            );
            self.stats.samples += 1;
        }
    }

    fn area(&self, bbox: &BoundingBox) -> Value {
        let entities: Vec<Value> = self
            .entities
            .iter()
            .filter(|(_, loc, _)| bbox.contains(loc))
            .map(|(id, _, model)| {
                Value::object([("id", Value::from(id.as_str())), ("model", model.clone())])
            })
            .collect();
        let mut batch = MeasurementBatch::new();
        for entry in self.devices.values() {
            if !bbox.contains(&entry.location) {
                continue;
            }
            for &q in QuantityKind::all() {
                let series = format!("{}:{}", entry.device, q.as_str());
                for (t, v) in self.store.range(&series, i64::MIN, i64::MAX) {
                    batch.push(Measurement::new(
                        entry.device.clone(),
                        q,
                        v,
                        q.canonical_unit(),
                        Timestamp::from_unix_millis(t),
                    ));
                }
            }
        }
        Value::object([
            ("entities", Value::Array(entities)),
            (
                "measurements",
                batch
                    .to_value()
                    .get("measurements")
                    .cloned()
                    .unwrap_or(Value::Array(vec![])),
            ),
        ])
    }
}

impl Node for CentralServerNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if !self.polled.is_empty() {
            ctx.set_timer(self.poll_interval, TAG_POLL);
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        match pkt.port {
            DEVICE_UPLINK_PORT => {
                let unix = unix_millis_at(self.epoch_offset_millis, ctx.now());
                let decoded = self
                    .devices
                    .get_mut(&pkt.src)
                    .map(|entry| entry.adapter.decode_uplink(&pkt.payload));
                match decoded {
                    Some(Ok(samples)) => {
                        self.stats.frames_decoded += 1;
                        self.ingest(pkt.src, samples, unix);
                    }
                    Some(Err(_)) => self.stats.decode_errors += 1,
                    None => {}
                }
            }
            OPCUA_PORT | proxy::COAP_PORT => {
                if let Some(RpcEvent::ResponseReceived { body, .. }) =
                    self.poll_tracker.accept(&pkt)
                {
                    let unix = unix_millis_at(self.epoch_offset_millis, ctx.now());
                    let decoded = self
                        .devices
                        .get_mut(&pkt.src)
                        .map(|entry| entry.adapter.decode_poll(&body));
                    match decoded {
                        Some(Ok(samples)) => {
                            self.stats.frames_decoded += 1;
                            self.ingest(pkt.src, samples, unix);
                        }
                        Some(Err(_)) => self.stats.decode_errors += 1,
                        None => {}
                    }
                }
            }
            WS_PORT => {
                if let Some(call) = self.ws.accept(ctx, &pkt) {
                    let response = match call.request.path.as_str() {
                        "/area" => match call.request.query("bbox").map(BoundingBox::parse_query) {
                            Some(Ok(bbox)) => {
                                self.stats.queries += 1;
                                WsResponse::ok(self.area(&bbox))
                            }
                            Some(Err(e)) => WsResponse::error(status::BAD_REQUEST, e.to_string()),
                            None => {
                                WsResponse::error(status::BAD_REQUEST, "bbox parameter required")
                            }
                        },
                        _ => WsResponse::error(status::NOT_FOUND, "unknown path"),
                    };
                    self.ws.respond(ctx, &call, response);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        match tag {
            TAG_POLL => {
                let polled = self.polled.clone();
                for node in polled {
                    if let Some((request, port)) = self.devices.get_mut(&node).and_then(|e| {
                        e.adapter
                            .poll_request()
                            .map(|request| (request, e.adapter.poll_port()))
                    }) {
                        self.poll_tracker.send_request(
                            ctx,
                            node,
                            port,
                            request,
                            SimDuration::from_secs(2),
                            1,
                        );
                    }
                }
                ctx.set_timer(self.poll_interval, TAG_POLL);
            }
            tag if tag.0 >= POLL_TAGS => {
                self.poll_tracker.on_timer(ctx, tag);
            }
            _ => {}
        }
    }
}

/// A deployed centralized scenario.
#[derive(Debug, Clone)]
pub struct CentralDeployment {
    /// The central server.
    pub server: NodeId,
    /// The device nodes.
    pub devices: Vec<NodeId>,
}

impl CentralDeployment {
    /// Instantiates the centralized counterpart of `scenario` on `sim`:
    /// the same devices and models, but one server instead of the proxy
    /// mesh.
    pub fn build(sim: &mut Simulator, scenario: &Scenario) -> CentralDeployment {
        let config = &scenario.config;
        let server = sim.add_node(
            "central",
            CentralServerNode::new(config.sample_interval, config.epoch_offset_millis),
        );
        let mut devices = Vec::new();
        for district in &scenario.districts {
            // Preload every model into the union database.
            for b in &district.buildings {
                let model = b.bim.to_value();
                sim.node_mut::<CentralServerNode>(server)
                    .expect("just added")
                    .add_entity(b.building.as_str().to_owned(), b.location, model);
            }
            for n in &district.networks {
                let model = n.model.to_value();
                sim.node_mut::<CentralServerNode>(server)
                    .expect("just added")
                    .add_entity(n.network.as_str().to_owned(), n.location, model);
            }
            let pan = PanId(0x2400);
            for b in &district.buildings {
                for dev in &b.devices {
                    let profile = EnergyProfile::for_quantity(
                        dev.quantity,
                        config.seed ^ u64::from(dev.address),
                    );
                    let (adapter, device_node, polled): (Box<dyn DeviceAdapter>, NodeId, bool) =
                        match dev.protocol {
                            ProtocolKind::Ieee802154 => (
                                Box::new(Ieee802154Adapter::new(pan, dev.address as u16)),
                                sim.add_node(
                                    format!("cdev-{}", dev.device),
                                    UplinkDeviceNode::new(
                                        Box::new(Ieee802154Sensor::new(
                                            pan,
                                            dev.address as u16,
                                            dev.quantity,
                                        )),
                                        profile,
                                        server,
                                        config.sample_interval,
                                        config.epoch_offset_millis,
                                    ),
                                ),
                                false,
                            ),
                            ProtocolKind::Zigbee => (
                                Box::new(ZigbeeAdapter::new(dev.address as u16)),
                                sim.add_node(
                                    format!("cdev-{}", dev.device),
                                    UplinkDeviceNode::new(
                                        Box::new(ZigbeeSensor::new(
                                            dev.address as u16,
                                            dev.quantity,
                                        )),
                                        profile,
                                        server,
                                        config.sample_interval,
                                        config.epoch_offset_millis,
                                    ),
                                ),
                                false,
                            ),
                            ProtocolKind::EnOcean => {
                                let eep = dev.eep.unwrap_or(Eep::A50205);
                                (
                                    Box::new(EnoceanAdapter::new(dev.address, eep)),
                                    sim.add_node(
                                        format!("cdev-{}", dev.device),
                                        UplinkDeviceNode::new(
                                            Box::new(EnoceanSensor::new(dev.address, eep)),
                                            profile,
                                            server,
                                            config.sample_interval,
                                            config.epoch_offset_millis,
                                        ),
                                    ),
                                    false,
                                )
                            }
                            ProtocolKind::OpcUa => {
                                let field = OpcUaFieldServer::new(dev.quantity);
                                let adapter =
                                    OpcUaAdapter::new(field.value_node().clone(), dev.quantity);
                                (
                                    Box::new(adapter),
                                    sim.add_node(
                                        format!("cdev-{}", dev.device),
                                        OpcUaFieldNode::new(
                                            field,
                                            profile,
                                            config.sample_interval,
                                            config.epoch_offset_millis,
                                        ),
                                    ),
                                    true,
                                )
                            }
                            ProtocolKind::Coap => (
                                Box::new(CoapAdapter::new(dev.quantity)),
                                sim.add_node(
                                    format!("cdev-{}", dev.device),
                                    CoapFieldNode::new(
                                        CoapFieldServer::new(dev.quantity),
                                        profile,
                                        config.sample_interval,
                                        config.epoch_offset_millis,
                                    ),
                                ),
                                true,
                            ),
                        };
                    sim.node_mut::<CentralServerNode>(server)
                        .expect("just added")
                        .register_device(
                            device_node,
                            dev.device.clone(),
                            dev.location,
                            adapter,
                            polled,
                        );
                    devices.push(device_node);
                }
            }
        }
        CentralDeployment { server, devices }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use proxy::webservice::{WsClient, WsClientEvent, WsRequest};
    use simnet::SimConfig;

    struct OneShot {
        client: WsClient,
        server: NodeId,
        request: WsRequest,
        response: Option<WsResponse>,
    }

    impl Node for OneShot {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let request = self.request.clone();
            self.client.request(ctx, self.server, &request);
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
            if let Some(WsClientEvent::Response { response, .. }) = self.client.accept(&pkt) {
                self.response = Some(response);
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
            self.client.on_timer(ctx, tag);
        }
    }

    #[test]
    fn central_server_ingests_and_serves() {
        let scenario = ScenarioConfig::small().build();
        let mut sim = Simulator::new(SimConfig::default());
        let deployment = CentralDeployment::build(&mut sim, &scenario);
        sim.run_for(SimDuration::from_secs(600));

        let server = sim
            .node_ref::<CentralServerNode>(deployment.server)
            .unwrap();
        assert!(server.stats().samples > 50, "{:?}", server.stats());
        assert_eq!(server.stats().decode_errors, 0);

        let bbox = scenario.districts[0].bbox();
        let probe = sim.add_node(
            "probe",
            OneShot {
                client: WsClient::new(1000),
                server: deployment.server,
                request: WsRequest::get("/area").with_query("bbox", bbox.to_query()),
                response: None,
            },
        );
        sim.run_for(SimDuration::from_secs(30));
        let response = sim
            .node_ref::<OneShot>(probe)
            .unwrap()
            .response
            .clone()
            .expect("central answered");
        assert!(response.is_ok());
        let entities = response.body.require_array("t", "entities").unwrap();
        assert_eq!(entities.len(), 5, "4 buildings + 1 network in the box");
        let measurements = response.body.require_array("t", "measurements").unwrap();
        assert!(measurements.len() > 50);
    }
}
