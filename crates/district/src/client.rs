//! The end-user application.
//!
//! "When the end-user application queries the master node for a
//! particular area of the district, the master node refers to the
//! ontology and returns the URIs of the proxies' Web Services for the
//! interested entities in the area … Afterwards, the end-user
//! application queries directly each returned proxy and retrieves the
//! model and the data for each entity."
//!
//! [`ClientNode`] is that application: a three-phase state machine
//! (resolve → fetch → integrate) producing [`AreaSnapshot`]s, with
//! latency and traffic accounting for the experiments.

use std::collections::HashMap;

use dimmer_core::codec::DataFormat;
use dimmer_core::{DistrictId, MeasurementBatch, Value};
use gis::geo::BoundingBox;
use ontology::AreaResolution;
use proxy::webservice::{WsClient, WsClientEvent, WsRequest, WsResponse};
use proxy::{uri_node, WS_PORT};
use simnet::{Context, Node, NodeId, Packet, SimDuration, SimTime, TimerTag};

use crate::deploy::Deployment;

const WS_TAGS: u64 = 1_000_000_000;
const TAG_PERIODIC: TimerTag = TimerTag(1);

/// The integrated result of one area query — the "comprehensive model of
/// the interested area" the paper describes.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaSnapshot {
    /// When the query was issued.
    pub started_at: SimTime,
    /// When the last fetch completed.
    pub completed_at: SimTime,
    /// The master's redirect response.
    pub resolution: AreaResolution,
    /// Per-entity translated models, keyed by entity id.
    pub entities: HashMap<String, Value>,
    /// All device data fetched, already in the common format.
    pub measurements: MeasurementBatch,
    /// Requests issued (1 resolve + N fetches).
    pub requests: u64,
    /// Fetches that failed or timed out.
    pub errors: u64,
}

impl AreaSnapshot {
    /// End-to-end latency of the query.
    pub fn latency(&self) -> SimDuration {
        self.completed_at.saturating_since(self.started_at)
    }
}

#[derive(Debug)]
enum FetchKind {
    Resolution,
    EntityModel(String),
    DeviceData,
}

#[derive(Debug)]
struct QueryState {
    started_at: SimTime,
    resolution: Option<AreaResolution>,
    entities: HashMap<String, Value>,
    measurements: MeasurementBatch,
    outstanding: usize,
    requests: u64,
    errors: u64,
}

/// Configuration of a [`ClientNode`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The master node to query.
    pub master: NodeId,
    /// The district to query.
    pub district: DistrictId,
    /// The area of interest.
    pub bbox: BoundingBox,
    /// Unix-millis window of device data to fetch (`None` = everything).
    pub data_window_millis: Option<(i64, i64)>,
    /// Re-issue the query with this period (`None` = once at start).
    pub period: Option<SimDuration>,
    /// The open format to request (JSON or XML).
    pub format: DataFormat,
}

/// The end-user application node.
#[derive(Debug)]
pub struct ClientNode {
    config: ClientConfig,
    ws: WsClient,
    /// request id → (query index, what it fetches)
    in_flight: HashMap<u64, (usize, FetchKind)>,
    queries: Vec<QueryState>,
    snapshots: Vec<AreaSnapshot>,
}

impl ClientNode {
    /// Creates a client.
    pub fn new(config: ClientConfig) -> Self {
        ClientNode {
            config,
            ws: WsClient::new(WS_TAGS),
            in_flight: HashMap::new(),
            queries: Vec::new(),
            snapshots: Vec::new(),
        }
    }

    /// Convenience: adds a one-shot client node querying `district` over
    /// `bbox` on `deployment`'s master.
    pub fn spawn(
        sim: &mut simnet::Simulator,
        deployment: &Deployment,
        district: DistrictId,
        bbox: BoundingBox,
    ) -> NodeId {
        let name = format!("client-{}", sim.node_count());
        sim.add_node(
            name,
            ClientNode::new(ClientConfig {
                master: deployment.master,
                district,
                bbox,
                data_window_millis: None,
                period: None,
                format: DataFormat::Json,
            }),
        )
    }

    /// Convenience: adds a one-shot profile client fetching `district`'s
    /// pre-computed `quantity` rollups over the unix-millis `range`.
    /// The master redirects to the district aggregator; see
    /// [`crate::profile`].
    pub fn profile(
        sim: &mut simnet::Simulator,
        deployment: &Deployment,
        district: DistrictId,
        quantity: dimmer_core::QuantityKind,
        range: (i64, i64),
    ) -> NodeId {
        crate::profile::ProfileClientNode::spawn(sim, deployment, district, quantity, range)
    }

    /// Completed snapshots, oldest first.
    pub fn snapshots(&self) -> &[AreaSnapshot] {
        &self.snapshots
    }

    /// The most recent completed snapshot.
    pub fn latest_snapshot(&self) -> Option<&AreaSnapshot> {
        self.snapshots.last()
    }

    /// Number of queries still in progress.
    pub fn queries_in_flight(&self) -> usize {
        self.queries.iter().filter(|q| q.outstanding > 0).count()
    }

    fn issue_query(&mut self, ctx: &mut Context<'_>) {
        let query_index = self.queries.len();
        self.queries.push(QueryState {
            started_at: ctx.now(),
            resolution: None,
            entities: HashMap::new(),
            measurements: MeasurementBatch::new(),
            outstanding: 1,
            requests: 1,
            errors: 0,
        });
        let request = WsRequest::get(format!("/district/{}/area", self.config.district))
            .with_query("bbox", self.config.bbox.to_query())
            .with_format(self.config.format);
        let id = self.ws.request(ctx, self.config.master, &request);
        self.in_flight
            .insert(id, (query_index, FetchKind::Resolution));
    }

    fn on_resolution(&mut self, ctx: &mut Context<'_>, query_index: usize, response: WsResponse) {
        let Ok(resolution) = AreaResolution::from_value(&response.body) else {
            self.queries[query_index].errors += 1;
            self.finish_if_done(ctx, query_index);
            return;
        };
        // Fan out: one /model fetch per entity, one /data fetch per device.
        let mut fetches: Vec<(NodeId, WsRequest, FetchKind)> = Vec::new();
        for entity in &resolution.entities {
            if let Some(node) = uri_node(entity.db_proxy()) {
                let request = WsRequest::get("/model").with_format(self.config.format);
                fetches.push((
                    node,
                    request,
                    FetchKind::EntityModel(entity.id().to_owned()),
                ));
            }
        }
        for device in &resolution.devices {
            if let Some(node) = uri_node(device.proxy()) {
                let mut request = WsRequest::get("/data")
                    .with_query("quantity", device.quantity().as_str())
                    .with_format(self.config.format);
                if let Some((from, to)) = self.config.data_window_millis {
                    request = request
                        .with_query("from", from.to_string())
                        .with_query("to", to.to_string());
                }
                fetches.push((node, request, FetchKind::DeviceData));
            }
        }
        {
            let query = &mut self.queries[query_index];
            query.resolution = Some(resolution);
            query.outstanding += fetches.len();
            query.requests += fetches.len() as u64;
        }
        for (node, request, kind) in fetches {
            let id = self.ws.request(ctx, node, &request);
            self.in_flight.insert(id, (query_index, kind));
        }
        self.finish_if_done(ctx, query_index);
    }

    fn on_fetch(
        &mut self,
        ctx: &mut Context<'_>,
        query_index: usize,
        kind: FetchKind,
        response: Option<WsResponse>,
    ) {
        {
            let query = &mut self.queries[query_index];
            match response {
                Some(response) if response.is_ok() => match kind {
                    FetchKind::EntityModel(entity_id) => {
                        query.entities.insert(entity_id, response.body);
                    }
                    FetchKind::DeviceData => match MeasurementBatch::from_value(&response.body) {
                        Ok(batch) => query.measurements.extend(batch),
                        Err(_) => query.errors += 1,
                    },
                    FetchKind::Resolution => unreachable!("handled in on_resolution"),
                },
                _ => query.errors += 1,
            }
        }
        self.finish_if_done(ctx, query_index);
    }

    fn finish_if_done(&mut self, ctx: &mut Context<'_>, query_index: usize) {
        let query = &mut self.queries[query_index];
        query.outstanding = query.outstanding.saturating_sub(1);
        if query.outstanding > 0 {
            return;
        }
        let resolution = query.resolution.take().unwrap_or_default();
        self.snapshots.push(AreaSnapshot {
            started_at: query.started_at,
            completed_at: ctx.now(),
            resolution,
            entities: std::mem::take(&mut query.entities),
            measurements: std::mem::take(&mut query.measurements),
            requests: query.requests,
            errors: query.errors,
        });
    }
}

impl Node for ClientNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.issue_query(ctx);
        if let Some(period) = self.config.period {
            ctx.set_timer(period, TAG_PERIODIC);
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if pkt.port != WS_PORT {
            return;
        }
        if let Some(WsClientEvent::Response { id, response }) = self.ws.accept(&pkt) {
            if let Some((query_index, kind)) = self.in_flight.remove(&id) {
                match kind {
                    FetchKind::Resolution => {
                        if response.is_ok() {
                            self.on_resolution(ctx, query_index, response);
                        } else {
                            self.queries[query_index].errors += 1;
                            self.finish_if_done(ctx, query_index);
                        }
                    }
                    other => self.on_fetch(ctx, query_index, other, Some(response)),
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        if tag == TAG_PERIODIC {
            self.issue_query(ctx);
            if let Some(period) = self.config.period {
                ctx.set_timer(period, TAG_PERIODIC);
            }
            return;
        }
        if let Some(WsClientEvent::TimedOut { id }) = self.ws.on_timer(ctx, tag) {
            if let Some((query_index, kind)) = self.in_flight.remove(&id) {
                match kind {
                    FetchKind::Resolution => {
                        self.queries[query_index].errors += 1;
                        self.finish_if_done(ctx, query_index);
                    }
                    other => self.on_fetch(ctx, query_index, other, None),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use simnet::{SimConfig, Simulator};

    fn deployed() -> (Simulator, Deployment, crate::scenario::Scenario) {
        let scenario = ScenarioConfig::small().build();
        let mut sim = Simulator::new(SimConfig::default());
        let deployment = Deployment::build(&mut sim, &scenario);
        sim.run_for(SimDuration::from_secs(600));
        (sim, deployment, scenario)
    }

    #[test]
    fn end_to_end_area_query_integrates_models_and_data() {
        let (mut sim, deployment, scenario) = deployed();
        let district = scenario.districts[0].district.clone();
        let bbox = scenario.districts[0].bbox();
        let client = ClientNode::spawn(&mut sim, &deployment, district, bbox);
        sim.run_for(SimDuration::from_secs(60));

        let c = sim.node_ref::<ClientNode>(client).unwrap();
        assert_eq!(c.snapshots().len(), 1);
        let snapshot = c.latest_snapshot().unwrap();
        assert_eq!(snapshot.errors, 0, "snapshot: {snapshot:?}");
        // All 4 buildings + the network registered with a location at the
        // district centre are resolved; every entity model fetched.
        assert_eq!(snapshot.resolution.entities.len(), 5);
        assert_eq!(snapshot.entities.len(), 5);
        // BIM models carry their derived quantities.
        let bim = snapshot
            .entities
            .get("d0-b0")
            .expect("building model fetched");
        assert!(
            bim.get("heat_loss_w_per_k")
                .and_then(Value::as_f64)
                .unwrap()
                > 0.0
        );
        // Devices reported for 10 minutes: data flowed through proxies.
        assert_eq!(snapshot.resolution.devices.len(), 12);
        assert!(
            snapshot.measurements.len() > 50,
            "measurements: {}",
            snapshot.measurements.len()
        );
        assert!(snapshot.latency() > SimDuration::ZERO);
        assert!(snapshot.latency() < SimDuration::from_secs(5));
    }

    #[test]
    fn narrow_bbox_selects_subset() {
        let (mut sim, deployment, scenario) = deployed();
        let district = scenario.districts[0].district.clone();
        // A box only around the first building.
        let loc = scenario.districts[0].buildings[0].location;
        let bbox = BoundingBox::new(loc, loc).expanded(1e-4);
        let client = ClientNode::spawn(&mut sim, &deployment, district, bbox);
        sim.run_for(SimDuration::from_secs(60));
        let snapshot = sim
            .node_ref::<ClientNode>(client)
            .unwrap()
            .latest_snapshot()
            .unwrap()
            .clone();
        assert!(
            snapshot.resolution.entities.len() < 5,
            "narrow bbox must exclude distant buildings"
        );
        assert!(snapshot
            .resolution
            .entities
            .iter()
            .any(|e| e.id() == "d0-b0"));
    }

    #[test]
    fn periodic_client_produces_multiple_snapshots() {
        let (mut sim, deployment, scenario) = deployed();
        let district = scenario.districts[0].district.clone();
        let bbox = scenario.districts[0].bbox();
        let client = sim.add_node(
            "periodic-client",
            ClientNode::new(ClientConfig {
                master: deployment.master,
                district,
                bbox,
                data_window_millis: None,
                period: Some(SimDuration::from_secs(30)),
                format: DataFormat::Json,
            }),
        );
        sim.run_for(SimDuration::from_secs(125));
        let c = sim.node_ref::<ClientNode>(client).unwrap();
        assert!(c.snapshots().len() >= 4, "{}", c.snapshots().len());
    }

    #[test]
    fn xml_format_works_end_to_end() {
        let (mut sim, deployment, scenario) = deployed();
        let district = scenario.districts[0].district.clone();
        let bbox = scenario.districts[0].bbox();
        let client = sim.add_node(
            "xml-client",
            ClientNode::new(ClientConfig {
                master: deployment.master,
                district,
                bbox,
                data_window_millis: None,
                period: None,
                format: DataFormat::Xml,
            }),
        );
        sim.run_for(SimDuration::from_secs(60));
        let snapshot = sim
            .node_ref::<ClientNode>(client)
            .unwrap()
            .latest_snapshot()
            .unwrap()
            .clone();
        assert_eq!(snapshot.errors, 0);
        assert!(!snapshot.measurements.is_empty());
    }

    #[test]
    fn data_window_filters_measurements() {
        let (mut sim, deployment, scenario) = deployed();
        let district = scenario.districts[0].district.clone();
        let bbox = scenario.districts[0].bbox();
        let epoch = scenario.config.epoch_offset_millis;
        // Only the first five minutes of the run.
        let client = sim.add_node(
            "windowed-client",
            ClientNode::new(ClientConfig {
                master: deployment.master,
                district,
                bbox,
                data_window_millis: Some((epoch, epoch + 300_000)),
                period: None,
                format: DataFormat::Json,
            }),
        );
        sim.run_for(SimDuration::from_secs(60));
        let snapshot = sim
            .node_ref::<ClientNode>(client)
            .unwrap()
            .latest_snapshot()
            .unwrap()
            .clone();
        for m in snapshot.measurements.iter() {
            let t = m.timestamp().as_unix_millis();
            assert!((epoch..epoch + 300_000).contains(&t));
        }
        assert!(!snapshot.measurements.is_empty());
    }

    #[test]
    fn unknown_district_fails_gracefully() {
        let (mut sim, deployment, scenario) = deployed();
        let bbox = scenario.districts[0].bbox();
        let client = ClientNode::spawn(
            &mut sim,
            &deployment,
            DistrictId::new("ghost").unwrap(),
            bbox,
        );
        sim.run_for(SimDuration::from_secs(60));
        let snapshot = sim
            .node_ref::<ClientNode>(client)
            .unwrap()
            .latest_snapshot()
            .unwrap()
            .clone();
        assert_eq!(snapshot.errors, 1);
        assert!(snapshot.resolution.entities.is_empty());
        assert!(snapshot.measurements.is_empty());
    }
}
