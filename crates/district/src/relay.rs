//! The relaying aggregator — ablation of the redirect design.
//!
//! The paper's master *redirects*: it returns proxy URIs and the client
//! fetches the data itself. The obvious alternative routes all data
//! through the central point. [`RelayNode`] implements that alternative:
//! it serves `GET /area?district=&bbox=` by resolving through the real
//! master, fetching every proxy itself, and returning the aggregated
//! data inline. Experiment E5 measures what this does to the relay's
//! traffic and the end-to-end latency.

use std::collections::HashMap;

use dimmer_core::{MeasurementBatch, Value};
use gis::geo::BoundingBox;
use ontology::AreaResolution;
use proxy::webservice::{status, WsCall, WsClient, WsClientEvent, WsRequest, WsResponse, WsServer};
use proxy::{uri_node, WS_PORT};
use simnet::{Context, Node, NodeId, Packet, TimerTag};

const WS_TAGS: u64 = 1_000_000_000;

#[derive(Debug)]
enum FetchKind {
    Resolution,
    EntityModel(String),
    DeviceData,
}

#[derive(Debug)]
struct RelayQuery {
    call: WsCall,
    entities: HashMap<String, Value>,
    measurements: MeasurementBatch,
    outstanding: usize,
    errors: u64,
}

/// Counters of the relay.
#[derive(Debug, Clone, Copy, Default)]
pub struct RelayStats {
    /// Client queries served.
    pub queries: u64,
    /// Upstream fetches issued.
    pub fetches: u64,
}

/// The relaying aggregator node.
#[derive(Debug)]
pub struct RelayNode {
    master: NodeId,
    ws: WsServer,
    client: WsClient,
    in_flight: HashMap<u64, (usize, FetchKind)>,
    queries: Vec<Option<RelayQuery>>,
    stats: RelayStats,
}

impl RelayNode {
    /// Creates a relay resolving through `master`.
    pub fn new(master: NodeId) -> Self {
        RelayNode {
            master,
            ws: WsServer::new(),
            client: WsClient::new(WS_TAGS),
            in_flight: HashMap::new(),
            queries: Vec::new(),
            stats: RelayStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> RelayStats {
        self.stats
    }

    fn start_query(&mut self, ctx: &mut Context<'_>, call: WsCall) {
        let (district, bbox) = match (
            call.request.query("district"),
            call.request.query("bbox").map(BoundingBox::parse_query),
        ) {
            (Some(d), Some(Ok(b))) => (d.to_owned(), b),
            _ => {
                self.ws.respond(
                    ctx,
                    &call,
                    WsResponse::error(status::BAD_REQUEST, "district and bbox required"),
                );
                return;
            }
        };
        self.stats.queries += 1;
        let index = self.queries.len();
        self.queries.push(Some(RelayQuery {
            call,
            entities: HashMap::new(),
            measurements: MeasurementBatch::new(),
            outstanding: 1,
            errors: 0,
        }));
        let request = WsRequest::get(format!("/district/{district}/area"))
            .with_query("bbox", bbox.to_query());
        let id = self.client.request(ctx, self.master, &request);
        self.in_flight.insert(id, (index, FetchKind::Resolution));
        self.stats.fetches += 1;
    }

    fn on_resolution(&mut self, ctx: &mut Context<'_>, index: usize, response: WsResponse) {
        let resolution = if response.is_ok() {
            AreaResolution::from_value(&response.body).ok()
        } else {
            None
        };
        let Some(resolution) = resolution else {
            if let Some(query) = &mut self.queries[index] {
                query.errors += 1;
            }
            self.step(ctx, index);
            return;
        };
        let mut fetches = Vec::new();
        for entity in &resolution.entities {
            if let Some(node) = uri_node(entity.db_proxy()) {
                fetches.push((
                    node,
                    WsRequest::get("/model"),
                    FetchKind::EntityModel(entity.id().to_owned()),
                ));
            }
        }
        for device in &resolution.devices {
            if let Some(node) = uri_node(device.proxy()) {
                fetches.push((
                    node,
                    WsRequest::get("/data").with_query("quantity", device.quantity().as_str()),
                    FetchKind::DeviceData,
                ));
            }
        }
        if let Some(query) = &mut self.queries[index] {
            query.outstanding += fetches.len();
        }
        self.stats.fetches += fetches.len() as u64;
        for (node, request, kind) in fetches {
            let id = self.client.request(ctx, node, &request);
            self.in_flight.insert(id, (index, kind));
        }
        self.step(ctx, index);
    }

    fn on_fetch(
        &mut self,
        ctx: &mut Context<'_>,
        index: usize,
        kind: FetchKind,
        response: Option<WsResponse>,
    ) {
        if let Some(query) = &mut self.queries[index] {
            match response {
                Some(response) if response.is_ok() => match kind {
                    FetchKind::EntityModel(id) => {
                        query.entities.insert(id, response.body);
                    }
                    FetchKind::DeviceData => match MeasurementBatch::from_value(&response.body) {
                        Ok(batch) => query.measurements.extend(batch),
                        Err(_) => query.errors += 1,
                    },
                    FetchKind::Resolution => unreachable!("handled separately"),
                },
                _ => query.errors += 1,
            }
        }
        self.step(ctx, index);
    }

    /// Decrements the outstanding count; responds when the fan-in is
    /// complete.
    fn step(&mut self, ctx: &mut Context<'_>, index: usize) {
        let done = match &mut self.queries[index] {
            Some(query) => {
                query.outstanding = query.outstanding.saturating_sub(1);
                query.outstanding == 0
            }
            None => false,
        };
        if !done {
            return;
        }
        let query = self.queries[index].take().expect("checked above");
        let body = Value::object([
            ("entities", Value::object(query.entities)),
            (
                "measurements",
                query
                    .measurements
                    .to_value()
                    .get("measurements")
                    .cloned()
                    .unwrap_or(Value::Array(vec![])),
            ),
            ("errors", Value::from(query.errors as i64)),
        ]);
        self.ws.respond(ctx, &query.call, WsResponse::ok(body));
    }
}

impl Node for RelayNode {
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if pkt.port != WS_PORT {
            return;
        }
        if let Some(event) = self.client.accept(&pkt) {
            if let WsClientEvent::Response { id, response } = event {
                if let Some((index, kind)) = self.in_flight.remove(&id) {
                    match kind {
                        FetchKind::Resolution => self.on_resolution(ctx, index, response),
                        other => self.on_fetch(ctx, index, other, Some(response)),
                    }
                }
            }
            return;
        }
        if let Some(call) = self.ws.accept(ctx, &pkt) {
            if call.request.path == "/area" {
                self.start_query(ctx, call);
            } else {
                self.ws.respond(
                    ctx,
                    &call,
                    WsResponse::error(status::NOT_FOUND, "unknown path"),
                );
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        if let Some(WsClientEvent::TimedOut { id }) = self.client.on_timer(ctx, tag) {
            if let Some((index, kind)) = self.in_flight.remove(&id) {
                match kind {
                    FetchKind::Resolution => {
                        if let Some(query) = &mut self.queries[index] {
                            query.errors += 1;
                        }
                        self.step(ctx, index);
                    }
                    other => self.on_fetch(ctx, index, other, None),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::Deployment;
    use crate::scenario::ScenarioConfig;
    use simnet::{SimConfig, SimDuration, Simulator};

    struct OneShot {
        client: WsClient,
        server: NodeId,
        request: WsRequest,
        response: Option<WsResponse>,
    }

    impl Node for OneShot {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let request = self.request.clone();
            self.client.request(ctx, self.server, &request);
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
            if let Some(WsClientEvent::Response { response, .. }) = self.client.accept(&pkt) {
                self.response = Some(response);
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
            self.client.on_timer(ctx, tag);
        }
    }

    #[test]
    fn relay_aggregates_full_area() {
        let scenario = ScenarioConfig::small().build();
        let mut sim = Simulator::new(SimConfig::default());
        let deployment = Deployment::build(&mut sim, &scenario);
        let relay = sim.add_node("relay", RelayNode::new(deployment.master));
        sim.run_for(SimDuration::from_secs(600));

        let bbox = scenario.districts[0].bbox();
        let probe = sim.add_node(
            "probe",
            OneShot {
                client: WsClient::new(1000),
                server: relay,
                request: WsRequest::get("/area")
                    .with_query("district", "d0")
                    .with_query("bbox", bbox.to_query()),
                response: None,
            },
        );
        sim.run_for(SimDuration::from_secs(30));
        let response = sim
            .node_ref::<OneShot>(probe)
            .unwrap()
            .response
            .clone()
            .expect("relay answered");
        assert!(response.is_ok());
        assert_eq!(response.body.get("errors").and_then(Value::as_i64), Some(0));
        assert_eq!(
            response
                .body
                .get("entities")
                .and_then(Value::as_object)
                .unwrap()
                .len(),
            5
        );
        assert!(
            response
                .body
                .require_array("t", "measurements")
                .unwrap()
                .len()
                > 50
        );
        let stats = sim.node_ref::<RelayNode>(relay).unwrap().stats();
        assert_eq!(stats.queries, 1);
        assert!(stats.fetches > 10, "{stats:?}");
    }

    #[test]
    fn relay_rejects_malformed_queries() {
        let scenario = ScenarioConfig::small().build();
        let mut sim = Simulator::new(SimConfig::default());
        let deployment = Deployment::build(&mut sim, &scenario);
        let relay = sim.add_node("relay", RelayNode::new(deployment.master));
        let probe = sim.add_node(
            "probe",
            OneShot {
                client: WsClient::new(1000),
                server: relay,
                request: WsRequest::get("/area"), // no district/bbox
                response: None,
            },
        );
        sim.run_for(SimDuration::from_secs(30));
        let response = sim
            .node_ref::<OneShot>(probe)
            .unwrap()
            .response
            .clone()
            .unwrap();
        assert_eq!(response.status, status::BAD_REQUEST);
    }
}
