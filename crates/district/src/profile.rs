//! Profile queries: rollup-served district consumption profiles.
//!
//! The redirect principle of the area query applies to profiling too:
//! the master never serves rollups itself, it returns the URIs of the
//! aggregators registered for the district. [`ProfileClientNode`]
//! dereferences the first URI and fetches pre-computed windows from the
//! aggregator's `/rollups` Web Service — two requests total, however
//! many devices the district holds. Compare [`crate::client::ClientNode`],
//! which fetches every device series and integrates client-side.

use dimmer_core::{DistrictId, QuantityKind, Uri, Value};
use proxy::webservice::{WsClient, WsClientEvent, WsRequest, WsResponse};
use proxy::{uri_node, WS_PORT};
use simnet::{Context, Node, NodeId, Packet, SimTime, TimerTag};
use streams::Rollup;

use crate::deploy::Deployment;

const WS_TAGS: u64 = 1_000_000_000;

/// Configuration of a [`ProfileClientNode`].
#[derive(Debug, Clone)]
pub struct ProfileConfig {
    /// The master node to query.
    pub master: NodeId,
    /// The district to profile.
    pub district: DistrictId,
    /// The quantity to profile.
    pub quantity: QuantityKind,
    /// Window size to request (`None` = the aggregator's default).
    pub window_millis: Option<i64>,
    /// Unix-millis range of windows to fetch, `[from, to)`.
    pub range: (i64, i64),
}

/// The result of one profile query.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSnapshot {
    /// When the query was issued.
    pub started_at: SimTime,
    /// When the last fetch completed.
    pub completed_at: SimTime,
    /// The aggregator URI the master redirected to (`None` when the
    /// district has no aggregation tier).
    pub aggregator: Option<Uri>,
    /// The district-tier windows, ascending by start.
    pub windows: Vec<Rollup>,
    /// Requests issued (1 resolve + 1 fetch).
    pub requests: u64,
    /// Requests that failed or timed out.
    pub errors: u64,
}

impl ProfileSnapshot {
    /// End-to-end latency of the query.
    pub fn latency(&self) -> simnet::SimDuration {
        self.completed_at.saturating_since(self.started_at)
    }
}

#[derive(Debug, Clone, Copy)]
enum Phase {
    Resolve,
    Fetch,
}

/// A client that profiles a district through its aggregator.
#[derive(Debug)]
pub struct ProfileClientNode {
    config: ProfileConfig,
    ws: WsClient,
    in_flight: Option<(u64, Phase)>,
    started_at: Option<SimTime>,
    aggregator: Option<Uri>,
    requests: u64,
    errors: u64,
    snapshots: Vec<ProfileSnapshot>,
}

impl ProfileClientNode {
    /// Creates a profile client.
    pub fn new(config: ProfileConfig) -> Self {
        ProfileClientNode {
            config,
            ws: WsClient::new(WS_TAGS),
            in_flight: None,
            started_at: None,
            aggregator: None,
            requests: 0,
            errors: 0,
            snapshots: Vec::new(),
        }
    }

    /// Convenience: adds a one-shot profile client for `district` on
    /// `deployment`'s master.
    pub fn spawn(
        sim: &mut simnet::Simulator,
        deployment: &Deployment,
        district: DistrictId,
        quantity: QuantityKind,
        range: (i64, i64),
    ) -> NodeId {
        let name = format!("profile-client-{}", sim.node_count());
        sim.add_node(
            name,
            ProfileClientNode::new(ProfileConfig {
                master: deployment.master,
                district,
                quantity,
                window_millis: None,
                range,
            }),
        )
    }

    /// Completed snapshots, oldest first.
    pub fn snapshots(&self) -> &[ProfileSnapshot] {
        &self.snapshots
    }

    /// The most recent completed snapshot.
    pub fn latest_snapshot(&self) -> Option<&ProfileSnapshot> {
        self.snapshots.last()
    }

    fn finish(&mut self, ctx: &Context<'_>, windows: Vec<Rollup>) {
        self.snapshots.push(ProfileSnapshot {
            started_at: self.started_at.take().unwrap_or_else(|| ctx.now()),
            completed_at: ctx.now(),
            aggregator: self.aggregator.take(),
            windows,
            requests: self.requests,
            errors: self.errors,
        });
    }

    fn on_resolution(&mut self, ctx: &mut Context<'_>, response: WsResponse) {
        let uri = response
            .is_ok()
            .then(|| response.body.get("aggregators"))
            .flatten()
            .and_then(Value::as_array)
            .and_then(|uris| uris.first())
            .and_then(Value::as_str)
            .and_then(|raw| Uri::parse(raw).ok());
        let Some(uri) = uri else {
            self.errors += 1;
            self.finish(ctx, Vec::new());
            return;
        };
        let Some(node) = uri_node(&uri) else {
            self.errors += 1;
            self.finish(ctx, Vec::new());
            return;
        };
        self.aggregator = Some(uri);
        let (from, to) = self.config.range;
        let mut request = WsRequest::get("/rollups")
            .with_query("level", "district")
            .with_query("quantity", self.config.quantity.as_str())
            .with_query("from", from.to_string())
            .with_query("to", to.to_string());
        if let Some(window) = self.config.window_millis {
            request = request.with_query("window", window.to_string());
        }
        self.requests += 1;
        let id = self.ws.request(ctx, node, &request);
        self.in_flight = Some((id, Phase::Fetch));
    }

    fn on_fetch(&mut self, ctx: &mut Context<'_>, response: WsResponse) {
        let mut windows = Vec::new();
        match response
            .is_ok()
            .then(|| response.body.get("rollups"))
            .flatten()
        {
            Some(Value::Array(items)) => {
                for item in items {
                    match Rollup::from_value(item) {
                        Ok(rollup) => windows.push(rollup),
                        Err(_) => self.errors += 1,
                    }
                }
            }
            _ => self.errors += 1,
        }
        self.finish(ctx, windows);
    }
}

impl Node for ProfileClientNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.started_at = Some(ctx.now());
        let request = WsRequest::get(format!("/district/{}/profile", self.config.district));
        self.requests += 1;
        let id = self.ws.request(ctx, self.config.master, &request);
        self.in_flight = Some((id, Phase::Resolve));
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if pkt.port != WS_PORT {
            return;
        }
        if let Some(WsClientEvent::Response { id, response }) = self.ws.accept(&pkt) {
            match self.in_flight.take_if(|(waiting, _)| *waiting == id) {
                Some((_, Phase::Resolve)) => self.on_resolution(ctx, response),
                Some((_, Phase::Fetch)) => self.on_fetch(ctx, response),
                None => {}
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        if let Some(WsClientEvent::TimedOut { id }) = self.ws.on_timer(ctx, tag) {
            if self
                .in_flight
                .take_if(|(waiting, _)| *waiting == id)
                .is_some()
            {
                self.errors += 1;
                self.finish(ctx, Vec::new());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientNode;
    use crate::scenario::{AggregationSpec, ScenarioConfig};
    use crate::DEFAULT_EPOCH_MILLIS;
    use simnet::{SimConfig, SimDuration, Simulator};

    #[test]
    fn profile_query_fetches_rollups_via_redirect() {
        let scenario = ScenarioConfig::small()
            .with_aggregation(AggregationSpec::tumbling(300_000).with_lateness(10_000))
            .build();
        let mut sim = Simulator::new(SimConfig::default());
        let deployment = crate::deploy::Deployment::build(&mut sim, &scenario);
        assert_eq!(deployment.node_count(), sim.node_count());
        assert_eq!(deployment.aggregators().count(), 1);
        // Two full windows plus slack for the lateness horizon.
        sim.run_for(SimDuration::from_secs(700));

        let district = scenario.districts[0].district.clone();
        let range = (DEFAULT_EPOCH_MILLIS, DEFAULT_EPOCH_MILLIS + 600_000);
        let client = ClientNode::profile(
            &mut sim,
            &deployment,
            district,
            dimmer_core::QuantityKind::Temperature,
            range,
        );
        sim.run_for(SimDuration::from_secs(30));

        let c = sim.node_ref::<ProfileClientNode>(client).unwrap();
        let snapshot = c.latest_snapshot().expect("query completed");
        assert_eq!(snapshot.errors, 0, "snapshot: {snapshot:?}");
        assert_eq!(snapshot.requests, 2);
        assert!(snapshot.aggregator.is_some());
        assert_eq!(snapshot.windows.len(), 2, "windows: {:?}", snapshot.windows);
        for w in &snapshot.windows {
            assert!(w.count > 0);
            assert!(w.min <= w.mean() && w.mean() <= w.max);
        }
        assert!(snapshot.latency() > SimDuration::ZERO);
    }

    #[test]
    fn profile_without_aggregation_tier_reports_error() {
        let scenario = ScenarioConfig::small().build();
        let mut sim = Simulator::new(SimConfig::default());
        let deployment = crate::deploy::Deployment::build(&mut sim, &scenario);
        sim.run_for(SimDuration::from_secs(60));
        let district = scenario.districts[0].district.clone();
        let client = ProfileClientNode::spawn(
            &mut sim,
            &deployment,
            district,
            dimmer_core::QuantityKind::Temperature,
            (0, 1),
        );
        sim.run_for(SimDuration::from_secs(30));
        let snapshot = sim
            .node_ref::<ProfileClientNode>(client)
            .unwrap()
            .latest_snapshot()
            .unwrap()
            .clone();
        assert_eq!(snapshot.errors, 1);
        assert!(snapshot.aggregator.is_none());
        assert!(snapshot.windows.is_empty());
    }
}
