//! Deterministic synthetic district scenarios.
//!
//! A scenario is the *data* of a district deployment: which districts
//! exist, their buildings (with BIM dumps and GIS footprints), their
//! distribution networks (with SIM dumps), and the devices installed in
//! each building (with protocols and quantities). The [`deploy`]
//! module turns a scenario into live nodes.
//!
//! [`deploy`]: crate::deploy

use dimmer_core::{BuildingId, DeviceId, DistrictId, NetworkId, QuantityKind};
use gis::geo::{BoundingBox, GeoPoint, Polygon};
use models::bim::BuildingModel;
use models::simmodel::{NetworkKind, NetworkModel};
use protocols::enocean::Eep;
use protocols::ProtocolKind;
use pubsub::QoS;
use simnet::rng::DeterministicRng;
use simnet::SimDuration;

use crate::DEFAULT_EPOCH_MILLIS;

/// One device installation in the scenario.
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// The device id.
    pub device: DeviceId,
    /// Its protocol family.
    pub protocol: ProtocolKind,
    /// The quantity it reports.
    pub quantity: QuantityKind,
    /// EnOcean equipment profile (EnOcean devices only).
    pub eep: Option<Eep>,
    /// Radio/NWK address material, unique per district.
    pub address: u32,
    /// Where it is installed.
    pub location: GeoPoint,
}

/// One building with its exported BIM and GIS footprint.
#[derive(Debug, Clone)]
pub struct BuildingSpec {
    /// The building id.
    pub building: BuildingId,
    /// The information model (exported to tables by the deployment).
    pub bim: BuildingModel,
    /// Footprint polygon for the GIS database.
    pub footprint: Polygon,
    /// Reference location (footprint centroid).
    pub location: GeoPoint,
    /// Devices installed in this building.
    pub devices: Vec<DeviceSpec>,
}

/// One distribution network with its legacy SIM dump.
#[derive(Debug, Clone)]
pub struct NetworkSpec {
    /// The network id.
    pub network: NetworkId,
    /// The network model (exported to fixed-width records on deploy).
    pub model: NetworkModel,
    /// Reference location.
    pub location: GeoPoint,
}

/// One district of the scenario.
#[derive(Debug, Clone)]
pub struct DistrictSpec {
    /// The district id.
    pub district: DistrictId,
    /// Human-readable name.
    pub name: String,
    /// Geographic centre.
    pub center: GeoPoint,
    /// The buildings.
    pub buildings: Vec<BuildingSpec>,
    /// The distribution networks.
    pub networks: Vec<NetworkSpec>,
}

impl DistrictSpec {
    /// A bounding box covering all buildings with a margin.
    pub fn bbox(&self) -> BoundingBox {
        BoundingBox::around(self.buildings.iter().map(|b| &b.location))
            .unwrap_or_else(|| BoundingBox::new(self.center, self.center))
            .expanded(0.002)
    }

    /// Total number of devices.
    pub fn device_count(&self) -> usize {
        self.buildings.iter().map(|b| b.devices.len()).sum()
    }
}

/// A complete scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The configuration it was generated from.
    pub config: ScenarioConfig,
    /// The districts.
    pub districts: Vec<DistrictSpec>,
}

impl Scenario {
    /// Total number of devices across districts.
    pub fn device_count(&self) -> usize {
        self.districts.iter().map(DistrictSpec::device_count).sum()
    }

    /// Total number of buildings across districts.
    pub fn building_count(&self) -> usize {
        self.districts.iter().map(|d| d.buildings.len()).sum()
    }
}

/// Relative weights of the four protocol families.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolMix {
    /// Raw IEEE 802.15.4 devices.
    pub ieee802154: f64,
    /// ZigBee devices.
    pub zigbee: f64,
    /// EnOcean devices.
    pub enocean: f64,
    /// OPC UA gateways.
    pub opcua: f64,
    /// CoAP motes (6LoWPAN IoT devices).
    pub coap: f64,
}

impl ProtocolMix {
    /// The default mix of a mostly-wireless district with a few legacy
    /// gateways.
    pub fn typical() -> Self {
        ProtocolMix {
            ieee802154: 0.2,
            zigbee: 0.35,
            enocean: 0.25,
            opcua: 0.1,
            coap: 0.1,
        }
    }

    /// A single-protocol mix (used by the per-protocol experiments).
    pub fn only(protocol: ProtocolKind) -> Self {
        let mut mix = ProtocolMix {
            ieee802154: 0.0,
            zigbee: 0.0,
            enocean: 0.0,
            opcua: 0.0,
            coap: 0.0,
        };
        match protocol {
            ProtocolKind::Ieee802154 => mix.ieee802154 = 1.0,
            ProtocolKind::Zigbee => mix.zigbee = 1.0,
            ProtocolKind::EnOcean => mix.enocean = 1.0,
            ProtocolKind::OpcUa => mix.opcua = 1.0,
            ProtocolKind::Coap => mix.coap = 1.0,
        }
        mix
    }

    fn pick(&self, rng: &mut DeterministicRng) -> ProtocolKind {
        let total = self.ieee802154 + self.zigbee + self.enocean + self.opcua + self.coap;
        assert!(total > 0.0, "protocol mix must have positive weight");
        let x = rng.next_f64() * total;
        if x < self.ieee802154 {
            ProtocolKind::Ieee802154
        } else if x < self.ieee802154 + self.zigbee {
            ProtocolKind::Zigbee
        } else if x < self.ieee802154 + self.zigbee + self.enocean {
            ProtocolKind::EnOcean
        } else if x < self.ieee802154 + self.zigbee + self.enocean + self.opcua {
            ProtocolKind::OpcUa
        } else {
            ProtocolKind::Coap
        }
    }
}

/// Aggregation-tier parameters: when set on a scenario, the
/// deployment adds one [`streams::AggregatorNode`] per district.
///
/// [`streams::AggregatorNode`]: https://docs.rs/dimmer-streams
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggregationSpec {
    /// Tumbling window size in milliseconds.
    pub window_millis: i64,
    /// Lateness horizon in milliseconds (how far out of order samples
    /// may arrive and still be accepted).
    pub lateness_millis: i64,
}

impl AggregationSpec {
    /// Tumbling windows of `window_millis` with a default 30 s
    /// lateness horizon.
    pub fn tumbling(window_millis: i64) -> Self {
        AggregationSpec {
            window_millis,
            lateness_millis: 30_000,
        }
    }

    /// Overrides the lateness horizon (fluent).
    pub fn with_lateness(mut self, lateness_millis: i64) -> Self {
        self.lateness_millis = lateness_millis;
        self
    }
}

/// Broker-federation parameters: when set on a scenario, the deployment
/// runs `shards` brokers instead of one, assigns district `i` to broker
/// `i % shards` in the shard map, and bridges the brokers with batched
/// wire frames (see [`pubsub::federation`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FederationSpec {
    /// Number of broker shards (1 = the classic single broker, but
    /// deployed through the federation path).
    pub shards: usize,
    /// Max publishes per bridge batch.
    pub batch_max_items: usize,
    /// Max payload bytes per bridge batch.
    pub batch_max_bytes: usize,
    /// Max age of a buffered bridge frame before a forced flush.
    pub batch_max_age: SimDuration,
}

impl FederationSpec {
    /// `shards` brokers under the default bridge batch policy.
    pub fn sharded(shards: usize) -> Self {
        let policy = simnet::batch::BatchPolicy::default();
        FederationSpec {
            shards,
            batch_max_items: policy.max_items,
            batch_max_bytes: policy.max_bytes,
            batch_max_age: policy.max_age,
        }
    }

    /// Overrides the bridge flush policy (fluent).
    pub fn with_batch(mut self, max_items: usize, max_bytes: usize, max_age: SimDuration) -> Self {
        self.batch_max_items = max_items;
        self.batch_max_bytes = max_bytes;
        self.batch_max_age = max_age;
        self
    }

    /// The simnet batch policy this spec describes.
    pub fn batch_policy(&self) -> simnet::batch::BatchPolicy {
        simnet::batch::BatchPolicy {
            max_items: self.batch_max_items,
            max_bytes: self.batch_max_bytes,
            max_age: self.batch_max_age,
        }
    }
}

/// Overload-protection parameters: admission limits applied to the
/// deployment's query endpoints (master redirect, aggregator
/// `/rollups`). `None` on a scenario keeps each node's generous
/// defaults; setting it sizes the system for a capacity experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadSpec {
    /// Master query-admission bound (queued queries).
    pub master_capacity: u64,
    /// Master sustained query rate (queries per second).
    pub master_rate: f64,
    /// Aggregator `/rollups` admission bound.
    pub aggregator_capacity: u64,
    /// Aggregator sustained `/rollups` rate (queries per second).
    pub aggregator_rate: f64,
}

impl OverloadSpec {
    /// Sizes both admission gates from a single target service rate:
    /// capacity covers one second of burst at that rate.
    pub fn rate_limited(queries_per_sec: f64) -> Self {
        let capacity = (queries_per_sec.ceil() as u64).max(1);
        OverloadSpec {
            master_capacity: capacity,
            master_rate: queries_per_sec,
            aggregator_capacity: capacity,
            aggregator_rate: queries_per_sec,
        }
    }

    /// Overrides the master gate (fluent).
    pub fn with_master(mut self, capacity: u64, rate: f64) -> Self {
        self.master_capacity = capacity;
        self.master_rate = rate;
        self
    }

    /// Overrides the aggregator gate (fluent).
    pub fn with_aggregator(mut self, capacity: u64, rate: f64) -> Self {
        self.aggregator_capacity = capacity;
        self.aggregator_rate = rate;
        self
    }
}

/// Scenario generation parameters.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Seed for all generation randomness.
    pub seed: u64,
    /// Number of districts.
    pub districts: usize,
    /// Buildings per district.
    pub buildings_per_district: usize,
    /// Devices per building.
    pub devices_per_building: usize,
    /// Distribution networks per district.
    pub networks_per_district: usize,
    /// Protocol weights.
    pub protocol_mix: ProtocolMix,
    /// How often devices report.
    pub sample_interval: SimDuration,
    /// Unix time at simulation start.
    pub epoch_offset_millis: i64,
    /// Centre of the first district (neighbouring districts shift east).
    pub center: GeoPoint,
    /// QoS of middleware publication.
    pub publish_qos: QoS,
    /// Rows of synthetic history per district measurement archive.
    pub archive_rows: usize,
    /// Optional aggregation tier; `None` (the default) deploys no
    /// aggregators, preserving the seed topology.
    pub aggregation: Option<AggregationSpec>,
    /// Optional broker federation; `None` (the default) deploys the
    /// classic single broker, preserving the seed topology.
    pub federation: Option<FederationSpec>,
    /// Optional overload sizing; `None` (the default) keeps each
    /// node's generous admission defaults.
    pub overload: Option<OverloadSpec>,
}

impl ScenarioConfig {
    /// A laptop-friendly scenario: 1 district, 4 buildings, 3 devices
    /// each, 1 heating network.
    pub fn small() -> Self {
        ScenarioConfig {
            seed: 0xD1CE,
            districts: 1,
            buildings_per_district: 4,
            devices_per_building: 3,
            networks_per_district: 1,
            protocol_mix: ProtocolMix::typical(),
            sample_interval: SimDuration::from_secs(60),
            epoch_offset_millis: DEFAULT_EPOCH_MILLIS,
            center: GeoPoint::new(45.0703, 7.6869), // Turin
            publish_qos: QoS::AtMostOnce,
            archive_rows: 32,
            aggregation: None,
            federation: None,
            overload: None,
        }
    }

    /// Scales the scenario's building count (fluent, for sweeps).
    pub fn with_buildings(mut self, n: usize) -> Self {
        self.buildings_per_district = n;
        self
    }

    /// Scales the per-building device count (fluent, for sweeps).
    pub fn with_devices_per_building(mut self, n: usize) -> Self {
        self.devices_per_building = n;
        self
    }

    /// Sets the seed (fluent).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables the aggregation tier (fluent).
    pub fn with_aggregation(mut self, aggregation: AggregationSpec) -> Self {
        self.aggregation = Some(aggregation);
        self
    }

    /// Enables the federated broker tier (fluent).
    pub fn with_federation(mut self, federation: FederationSpec) -> Self {
        self.federation = Some(federation);
        self
    }

    /// Sets the district count (fluent, for federation sweeps).
    pub fn with_districts(mut self, n: usize) -> Self {
        self.districts = n;
        self
    }

    /// Sizes the deployment's admission gates (fluent).
    pub fn with_overload(mut self, overload: OverloadSpec) -> Self {
        self.overload = Some(overload);
        self
    }

    /// Generates the scenario.
    pub fn build(self) -> Scenario {
        let mut rng = DeterministicRng::seed_from(self.seed);
        let quantities = [
            QuantityKind::Temperature,
            QuantityKind::ActivePower,
            QuantityKind::ElectricalEnergy,
            QuantityKind::Humidity,
            QuantityKind::SwitchState,
        ];
        let mut districts = Vec::with_capacity(self.districts);
        let mut next_address: u32 = 0x100;
        for d in 0..self.districts {
            let district = DistrictId::new(format!("d{d}")).expect("grammatical");
            let center = GeoPoint::new(self.center.lat, self.center.lon + 0.03 * d as f64);
            let mut buildings = Vec::with_capacity(self.buildings_per_district);
            for b in 0..self.buildings_per_district {
                let building = BuildingId::new(format!("d{d}-b{b}")).expect("grammatical");
                // Buildings on a jittered grid around the centre.
                let grid = (self.buildings_per_district as f64).sqrt().ceil() as usize;
                let row = b / grid;
                let col = b % grid;
                let lat = center.lat + 0.001 * row as f64 + rng.next_f64_range(-2e-4, 2e-4);
                let lon = center.lon + 0.0012 * col as f64 + rng.next_f64_range(-2e-4, 2e-4);
                let location = GeoPoint::new(lat, lon);
                let storeys = 2 + (rng.next_bounded(4) as usize);
                let spaces = 2 + (rng.next_bounded(5) as usize);
                let bim = BuildingModel::sample(&building, storeys, spaces);
                let footprint = Polygon::new(vec![
                    GeoPoint::new(lat - 4e-5, lon - 5e-5),
                    GeoPoint::new(lat - 4e-5, lon + 5e-5),
                    GeoPoint::new(lat + 4e-5, lon + 5e-5),
                    GeoPoint::new(lat + 4e-5, lon - 5e-5),
                ]);
                let mut devices = Vec::with_capacity(self.devices_per_building);
                for v in 0..self.devices_per_building {
                    let protocol = self.protocol_mix.pick(&mut rng);
                    let (quantity, eep) = match protocol {
                        ProtocolKind::Zigbee => {
                            // Only quantities with a ZCL cluster mapping.
                            let supported = [
                                QuantityKind::Temperature,
                                QuantityKind::Humidity,
                                QuantityKind::ActivePower,
                                QuantityKind::ElectricalEnergy,
                                QuantityKind::SwitchState,
                            ];
                            (*rng.choose(&supported).expect("non-empty"), None)
                        }
                        ProtocolKind::EnOcean => {
                            let eep = *rng
                                .choose(&[Eep::A50205, Eep::A50401, Eep::A51201, Eep::D50001])
                                .expect("non-empty");
                            let quantity = match eep {
                                Eep::A50205 | Eep::A50401 => QuantityKind::Temperature,
                                Eep::A51201 => QuantityKind::ElectricalEnergy,
                                _ => QuantityKind::SwitchState,
                            };
                            (quantity, Some(eep))
                        }
                        ProtocolKind::OpcUa => (QuantityKind::ThermalEnergy, None),
                        ProtocolKind::Coap => (QuantityKind::Co2, None),
                        ProtocolKind::Ieee802154 => {
                            (*rng.choose(&quantities).expect("non-empty"), None)
                        }
                    };
                    let address = next_address;
                    next_address += 1;
                    devices.push(DeviceSpec {
                        device: DeviceId::new(format!("d{d}-b{b}-dev{v}")).expect("grammatical"),
                        protocol,
                        quantity,
                        eep,
                        address,
                        location: GeoPoint::new(
                            lat + rng.next_f64_range(-3e-5, 3e-5),
                            lon + rng.next_f64_range(-3e-5, 3e-5),
                        ),
                    });
                }
                buildings.push(BuildingSpec {
                    building,
                    bim,
                    footprint,
                    location,
                    devices,
                });
            }
            let mut networks = Vec::with_capacity(self.networks_per_district);
            for n in 0..self.networks_per_district {
                let network = NetworkId::new(format!("d{d}-net{n}")).expect("grammatical");
                let kind = if n % 2 == 0 {
                    NetworkKind::DistrictHeating
                } else {
                    NetworkKind::Electrical
                };
                let substations = 1 + self.buildings_per_district / 4;
                let consumers = (self.buildings_per_district / substations).max(1);
                networks.push(NetworkSpec {
                    model: NetworkModel::sample(&network, kind, substations, consumers),
                    network,
                    location: center,
                });
            }
            districts.push(DistrictSpec {
                district,
                name: format!("District {d}"),
                center,
                buildings,
                networks,
            });
        }
        Scenario {
            config: self,
            districts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scenario_shape() {
        let s = ScenarioConfig::small().build();
        assert_eq!(s.districts.len(), 1);
        assert_eq!(s.building_count(), 4);
        assert_eq!(s.device_count(), 12);
        assert_eq!(s.districts[0].networks.len(), 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ScenarioConfig::small().build();
        let b = ScenarioConfig::small().build();
        for (da, db) in a.districts.iter().zip(&b.districts) {
            assert_eq!(da.district, db.district);
            for (ba, bb) in da.buildings.iter().zip(&db.buildings) {
                assert_eq!(ba.building, bb.building);
                assert_eq!(ba.location, bb.location);
                for (va, vb) in ba.devices.iter().zip(&bb.devices) {
                    assert_eq!(va.device, vb.device);
                    assert_eq!(va.protocol, vb.protocol);
                    assert_eq!(va.quantity, vb.quantity);
                }
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ScenarioConfig::small().with_seed(1).build();
        let b = ScenarioConfig::small().with_seed(2).build();
        let protos = |s: &Scenario| {
            s.districts[0]
                .buildings
                .iter()
                .flat_map(|b| b.devices.iter().map(|d| d.protocol))
                .collect::<Vec<_>>()
        };
        assert_ne!(protos(&a), protos(&b));
    }

    #[test]
    fn bbox_covers_all_buildings() {
        let s = ScenarioConfig::small().with_buildings(9).build();
        let d = &s.districts[0];
        let bbox = d.bbox();
        for b in &d.buildings {
            assert!(bbox.contains(&b.location), "{}", b.building);
        }
    }

    #[test]
    fn addresses_are_unique() {
        let s = ScenarioConfig::small().with_buildings(6).build();
        let mut seen = std::collections::HashSet::new();
        for b in &s.districts[0].buildings {
            for dev in &b.devices {
                assert!(seen.insert(dev.address));
            }
        }
    }

    #[test]
    fn single_protocol_mix_respected() {
        let mut config = ScenarioConfig::small();
        config.protocol_mix = ProtocolMix::only(ProtocolKind::Zigbee);
        let s = config.build();
        for b in &s.districts[0].buildings {
            for dev in &b.devices {
                assert_eq!(dev.protocol, ProtocolKind::Zigbee);
            }
        }
    }

    #[test]
    fn multi_district_ids_distinct() {
        let mut config = ScenarioConfig::small();
        config.districts = 3;
        let s = config.build();
        assert_eq!(s.districts.len(), 3);
        let ids: std::collections::HashSet<_> =
            s.districts.iter().map(|d| d.district.clone()).collect();
        assert_eq!(ids.len(), 3);
    }
}
