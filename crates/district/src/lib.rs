//! # dimmer-district — the framework facade
//!
//! Ties every subsystem together into the runnable infrastructure of the
//! paper's Fig. 1(a):
//!
//! * [`scenario`] — deterministic synthetic district generation
//!   (buildings + BIM dumps, networks + SIM dumps, GIS features,
//!   measurement archives, devices with protocol mixes);
//! * [`deploy`] — instantiates a scenario on a [`simnet::Simulator`]:
//!   master node, middleware broker, every proxy, every device;
//! * [`client`] — the end-user application: query the master for an
//!   area, dereference the returned URIs, integrate the translated data
//!   into one [`client::AreaSnapshot`];
//! * [`live`] — the event-driven extension: resolve an area once, then
//!   track it through middleware subscriptions instead of polling;
//! * [`profile`] — the rollup-served profile query: the master
//!   redirects to the district aggregator, which answers from
//!   pre-computed windows ([`profile::ProfileSnapshot`]);
//! * [`baseline`] — the centralized comparison architecture (one server
//!   ingesting every raw frame and serving every query itself);
//! * [`relay`] — a master variant that fetches and aggregates data
//!   itself instead of redirecting (ablation for experiment E5);
//! * [`report`] — plain-text tables for the experiment binaries.
//!
//! ## Quickstart
//!
//! ```
//! use district::scenario::ScenarioConfig;
//! use district::deploy::Deployment;
//! use district::client::ClientNode;
//! use simnet::{Simulator, SimConfig, SimDuration};
//!
//! let scenario = ScenarioConfig::small().build();
//! let mut sim = Simulator::new(SimConfig::default());
//! let deployment = Deployment::build(&mut sim, &scenario);
//! // Let proxies register and devices report for ten minutes.
//! sim.run_for(SimDuration::from_secs(600));
//!
//! // Query the whole first district.
//! let district = scenario.districts[0].district.clone();
//! let bbox = scenario.districts[0].bbox();
//! let client = ClientNode::spawn(&mut sim, &deployment, district, bbox);
//! sim.run_for(SimDuration::from_secs(60));
//!
//! let snapshot = sim.node_ref::<ClientNode>(client).unwrap().latest_snapshot().unwrap();
//! assert!(!snapshot.entities.is_empty());
//! assert!(!snapshot.measurements.is_empty());
//! ```

pub mod baseline;
pub mod client;
pub mod deploy;
pub mod live;
pub mod profile;
pub mod relay;
pub mod report;
pub mod scenario;

/// Unix millis of 2015-03-09T00:00:00Z — the default epoch the
/// simulations map their virtual time onto (the week of DATE 2015).
pub const DEFAULT_EPOCH_MILLIS: i64 = 1_425_859_200_000;
