//! Plain-text tables for the experiment binaries.

use std::fmt;

use simnet::telemetry::{MetricsSnapshot, SloReport, SloSpec, Telemetry};

/// A column-aligned table that prints like the tables in a paper.
///
/// ```
/// use district::report::Table;
/// let mut t = Table::new("E0: demo", ["n", "latency_ms"]);
/// t.row(["10", "4.2"]);
/// t.row(["100", "5.9"]);
/// let text = t.to_string();
/// assert!(text.contains("latency_ms"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new<H: Into<String>, I: IntoIterator<Item = H>>(
        title: impl Into<String>,
        headers: I,
    ) -> Self {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<C: Into<String>, I: IntoIterator<Item = C>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Emits the table as CSV (for the figure series).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:>w$} |", w = w)?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Renders a metrics snapshot as two tables: counters + gauges, then
/// histogram percentiles. Empty sections are omitted.
pub fn metrics_report(title: &str, snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snapshot.counters.is_empty() || !snapshot.gauges.is_empty() {
        let mut t = Table::new(format!("{title}: counters"), ["metric", "value"]);
        for (name, value) in &snapshot.counters {
            t.row([name.clone(), value.to_string()]);
        }
        for (name, value) in &snapshot.gauges {
            t.row([name.clone(), fmt_f64(*value, 3)]);
        }
        out.push_str(&t.to_string());
    }
    if !snapshot.histograms.is_empty() {
        let mut t = Table::new(
            format!("{title}: histograms"),
            [
                "metric", "count", "mean", "min", "p50", "p90", "p99", "p999", "max",
            ],
        );
        for (name, h) in &snapshot.histograms {
            t.row([
                name.clone(),
                h.count.to_string(),
                fmt_f64(h.mean, 3),
                fmt_f64(h.min, 3),
                fmt_f64(h.p50, 3),
                fmt_f64(h.p90, 3),
                fmt_f64(h.p99, 3),
                fmt_f64(h.p999, 3),
                fmt_f64(h.max, 3),
            ]);
        }
        out.push_str(&t.to_string());
    }
    out
}

/// Installs the framework's default latency objective: 99% of traced
/// publishes must reach a subscriber within 250 ms. The histogram is
/// fed by a trace harvest from `broker.publish` to `sub.receive`, so
/// it covers the full path including store-and-forward replays and
/// federation bridge hops. Idempotent.
pub fn install_default_slos(telemetry: &Telemetry) {
    telemetry
        .slos
        .add_harvest("slo.publish_to_deliver_ns", "broker.publish", "sub.receive");
    telemetry.slos.add_spec(SloSpec {
        name: "publish_to_deliver".to_string(),
        histogram: "slo.publish_to_deliver_ns".to_string(),
        target_ns: 250_000_000.0,
        objective: 0.99,
    });
}

/// Renders SLO reports as a table: target, objective, observed
/// attainment, and error-budget burn. Empty input renders nothing.
pub fn slo_report(title: &str, reports: &[SloReport]) -> String {
    if reports.is_empty() {
        return String::new();
    }
    let mut t = Table::new(
        format!("{title}: SLOs"),
        [
            "slo",
            "target_ms",
            "objective",
            "count",
            "attainment",
            "met",
            "burn",
        ],
    );
    for r in reports {
        t.row([
            r.name.clone(),
            fmt_f64(r.target_ns / 1e6, 1),
            fmt_f64(r.objective, 3),
            r.count.to_string(),
            fmt_f64(r.attainment, 4),
            if r.met { "yes" } else { "NO" }.to_string(),
            fmt_f64(r.burn, 2),
        ]);
    }
    t.to_string()
}

/// Dumps the flight-recorder trace as JSON lines when the `DIMMER_TRACE`
/// environment variable is set: to stdout for `-` or `1`, else to the
/// file it names. Returns a description of where the trace went, or
/// `None` when no dump was requested (or the write failed; the error
/// goes to stderr).
pub fn dump_trace_if_requested(telemetry: &Telemetry) -> Option<String> {
    let target = std::env::var("DIMMER_TRACE").ok()?;
    if target.is_empty() {
        return None;
    }
    let lines = telemetry.tracer.to_json_lines();
    if target == "-" || target == "1" {
        print!("{lines}");
        Some(format!("stdout ({} events)", telemetry.tracer.len()))
    } else {
        match std::fs::write(&target, &lines) {
            Ok(()) => Some(format!("{target} ({} events)", telemetry.tracer.len())),
            Err(e) => {
                eprintln!("DIMMER_TRACE: cannot write {target}: {e}");
                None
            }
        }
    }
}

/// Formats a float with `decimals` places (tables want strings).
pub fn fmt_f64(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Formats bytes with a binary-prefix unit.
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= 1024 * 1024 {
        format!("{:.2}MiB", bytes as f64 / (1024.0 * 1024.0))
    } else if bytes >= 1024 {
        format!("{:.2}KiB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("T", ["col", "value_with_long_header"]);
        t.row(["a", "1"]);
        t.row(["bbbb", "2"]);
        let text = t.to_string();
        assert!(text.starts_with("## T\n"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        // All body lines have the same width.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new("T", ["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("T", ["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn metrics_report_renders_counters_and_histograms() {
        let telemetry = Telemetry::new();
        telemetry.metrics.incr("pubsub.publish");
        telemetry
            .metrics
            .set_gauge("pubsub.pending_deliveries", 2.0);
        for v in 1..=100 {
            telemetry.metrics.observe("net.link_delay_ns", f64::from(v));
        }
        let text = metrics_report("E8", &telemetry.metrics.snapshot());
        assert!(text.contains("E8: counters"));
        assert!(text.contains("pubsub.publish"));
        assert!(text.contains("pubsub.pending_deliveries"));
        assert!(text.contains("E8: histograms"));
        assert!(text.contains("net.link_delay_ns"));
        // An empty snapshot renders nothing.
        assert_eq!(
            metrics_report("x", &Telemetry::new().metrics.snapshot()),
            ""
        );
    }

    #[test]
    fn default_slos_harvest_publish_to_deliver() {
        let telemetry = Telemetry::new();
        install_default_slos(&telemetry);
        install_default_slos(&telemetry); // idempotent
        let trace = telemetry.tracer.next_trace_id();
        telemetry
            .tracer
            .record(1_000, 1, "broker.publish", trace, "");
        telemetry
            .tracer
            .record(2_000_000, 2, "sub.receive", trace, "");
        let reports = telemetry.slo_refresh();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.name, "publish_to_deliver");
        assert_eq!(r.count, 1);
        assert!(r.met, "2 ms flight is inside the 250 ms target");
        let text = slo_report("E13", &reports);
        assert!(text.contains("E13: SLOs"));
        assert!(text.contains("publish_to_deliver"));
        assert!(text.contains("yes"));
        // Gauges landed in the registry.
        let snap = telemetry.metrics.snapshot();
        assert!(snap
            .gauges
            .iter()
            .any(|(n, _)| n == "slo.publish_to_deliver.attainment"));
        // Empty input renders nothing.
        assert_eq!(slo_report("x", &[]), "");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.00KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00MiB");
    }
}
