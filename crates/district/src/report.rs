//! Plain-text tables for the experiment binaries.

use std::fmt;

/// A column-aligned table that prints like the tables in a paper.
///
/// ```
/// use district::report::Table;
/// let mut t = Table::new("E0: demo", ["n", "latency_ms"]);
/// t.row(["10", "4.2"]);
/// t.row(["100", "5.9"]);
/// let text = t.to_string();
/// assert!(text.contains("latency_ms"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new<H: Into<String>, I: IntoIterator<Item = H>>(
        title: impl Into<String>,
        headers: I,
    ) -> Self {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
        rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<C: Into<String>, I: IntoIterator<Item = C>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Emits the table as CSV (for the figure series).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:>w$} |", w = w)?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with `decimals` places (tables want strings).
pub fn fmt_f64(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Formats bytes with a binary-prefix unit.
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= 1024 * 1024 {
        format!("{:.2}MiB", bytes as f64 / (1024.0 * 1024.0))
    } else if bytes >= 1024 {
        format!("{:.2}KiB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("T", ["col", "value_with_long_header"]);
        t.row(["a", "1"]);
        t.row(["bbbb", "2"]);
        let text = t.to_string();
        assert!(text.starts_with("## T\n"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        // All body lines have the same width.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new("T", ["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("T", ["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.00KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00MiB");
    }
}
