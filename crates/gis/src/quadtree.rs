//! A point quadtree over geographic coordinates.
//!
//! The GIS database uses it to answer "which buildings fall inside this
//! area?" without scanning every feature — the query pattern behind the
//! master node's area resolution. Leaves split at a capacity threshold;
//! items on split boundaries stay unambiguous because each child claims a
//! half-open range.

use crate::geo::{BoundingBox, GeoPoint};

const LEAF_CAPACITY: usize = 16;
const MAX_DEPTH: usize = 24;

/// A quadtree mapping [`GeoPoint`]s to values.
///
/// ```
/// use gis::quadtree::QuadTree;
/// use gis::geo::{GeoPoint, BoundingBox};
///
/// let bounds = BoundingBox::new(GeoPoint::new(45.0, 7.6), GeoPoint::new(45.1, 7.7));
/// let mut tree = QuadTree::new(bounds);
/// tree.insert(GeoPoint::new(45.05, 7.65), "building-1");
/// let hits = tree.query(&BoundingBox::new(
///     GeoPoint::new(45.04, 7.64), GeoPoint::new(45.06, 7.66)));
/// assert_eq!(hits.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct QuadTree<T> {
    bounds: BoundingBox,
    root: Node<T>,
    len: usize,
}

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf(Vec<(GeoPoint, T)>),
    Branch(Box<[Node<T>; 4]>),
}

impl<T> QuadTree<T> {
    /// Creates an empty tree covering `bounds`.
    pub fn new(bounds: BoundingBox) -> Self {
        QuadTree {
            bounds,
            root: Node::Leaf(Vec::new()),
            len: 0,
        }
    }

    /// The covered region.
    pub fn bounds(&self) -> BoundingBox {
        self.bounds
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no items are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an item at `point`.
    ///
    /// # Panics
    ///
    /// Panics if `point` lies outside the tree bounds — callers build the
    /// tree from the district bounding box, so an outside point is a bug.
    pub fn insert(&mut self, point: GeoPoint, item: T) {
        assert!(
            self.bounds.contains(&point),
            "point {point} outside quadtree bounds"
        );
        insert_into(&mut self.root, self.bounds, point, item, 0);
        self.len += 1;
    }

    /// Collects every item whose point falls inside `query` (inclusive).
    pub fn query(&self, query: &BoundingBox) -> Vec<(&GeoPoint, &T)> {
        let mut out = Vec::new();
        query_node(&self.root, self.bounds, query, &mut out);
        out
    }

    /// Visits all items.
    pub fn iter(&self) -> impl Iterator<Item = (&GeoPoint, &T)> {
        let mut stack = vec![&self.root];
        std::iter::from_fn(move || loop {
            let node = stack.pop()?;
            match node {
                Node::Leaf(items) => {
                    if !items.is_empty() {
                        // Return leaves one item at a time via a nested index
                        // would complicate the iterator; instead flatten by
                        // chunking leaves onto an items stack.
                        return Some(items);
                    }
                }
                Node::Branch(children) => {
                    for c in children.iter() {
                        stack.push(c);
                    }
                }
            }
        })
        .flat_map(|items| items.iter().map(|(p, t)| (p, t)))
    }
}

fn quadrant_bounds(bounds: BoundingBox, q: usize) -> BoundingBox {
    let c = bounds.center();
    let (min, max) = (bounds.min(), bounds.max());
    match q {
        0 => BoundingBox::new(min, c),
        1 => BoundingBox::new(
            GeoPoint {
                lat: min.lat,
                lon: c.lon,
            },
            GeoPoint {
                lat: c.lat,
                lon: max.lon,
            },
        ),
        2 => BoundingBox::new(
            GeoPoint {
                lat: c.lat,
                lon: min.lon,
            },
            GeoPoint {
                lat: max.lat,
                lon: c.lon,
            },
        ),
        _ => BoundingBox::new(c, max),
    }
}

fn quadrant_of(bounds: BoundingBox, p: GeoPoint) -> usize {
    let c = bounds.center();
    let east = p.lon >= c.lon;
    let north = p.lat >= c.lat;
    usize::from(east) + 2 * usize::from(north)
}

fn insert_into<T>(node: &mut Node<T>, bounds: BoundingBox, point: GeoPoint, item: T, depth: usize) {
    match node {
        Node::Leaf(items) => {
            if items.len() < LEAF_CAPACITY || depth >= MAX_DEPTH {
                items.push((point, item));
                return;
            }
            // Split: redistribute, then insert.
            let old = std::mem::take(items);
            let mut children: Box<[Node<T>; 4]> = Box::new([
                Node::Leaf(Vec::new()),
                Node::Leaf(Vec::new()),
                Node::Leaf(Vec::new()),
                Node::Leaf(Vec::new()),
            ]);
            for (p, t) in old {
                let q = quadrant_of(bounds, p);
                insert_into(
                    &mut children[q],
                    quadrant_bounds(bounds, q),
                    p,
                    t,
                    depth + 1,
                );
            }
            *node = Node::Branch(children);
            insert_into(node, bounds, point, item, depth);
        }
        Node::Branch(children) => {
            let q = quadrant_of(bounds, point);
            insert_into(
                &mut children[q],
                quadrant_bounds(bounds, q),
                point,
                item,
                depth + 1,
            );
        }
    }
}

fn query_node<'a, T>(
    node: &'a Node<T>,
    bounds: BoundingBox,
    query: &BoundingBox,
    out: &mut Vec<(&'a GeoPoint, &'a T)>,
) {
    if !bounds.intersects(query) {
        return;
    }
    match node {
        Node::Leaf(items) => {
            for (p, t) in items {
                if query.contains(p) {
                    out.push((p, t));
                }
            }
        }
        Node::Branch(children) => {
            for (q, child) in children.iter().enumerate() {
                query_node(child, quadrant_bounds(bounds, q), query, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> BoundingBox {
        BoundingBox::new(GeoPoint::new(0.0, 0.0), GeoPoint::new(10.0, 10.0))
    }

    fn grid_tree(n: u32) -> QuadTree<u32> {
        // n*n points on a grid strictly inside the bounds.
        let mut tree = QuadTree::new(bounds());
        let mut id = 0;
        for i in 0..n {
            for j in 0..n {
                let lat = 10.0 * (f64::from(i) + 0.5) / f64::from(n);
                let lon = 10.0 * (f64::from(j) + 0.5) / f64::from(n);
                tree.insert(GeoPoint::new(lat, lon), id);
                id += 1;
            }
        }
        tree
    }

    #[test]
    fn query_matches_linear_scan() {
        let tree = grid_tree(20); // 400 points, forces splits
        assert_eq!(tree.len(), 400);
        let q = BoundingBox::new(GeoPoint::new(2.0, 3.0), GeoPoint::new(5.5, 7.25));
        let mut from_tree: Vec<u32> = tree.query(&q).iter().map(|(_, &id)| id).collect();
        let mut from_scan: Vec<u32> = tree
            .iter()
            .filter(|(p, _)| q.contains(p))
            .map(|(_, &id)| id)
            .collect();
        from_tree.sort_unstable();
        from_scan.sort_unstable();
        assert!(!from_tree.is_empty());
        assert_eq!(from_tree, from_scan);
    }

    #[test]
    fn whole_bounds_query_returns_everything() {
        let tree = grid_tree(10);
        assert_eq!(tree.query(&bounds()).len(), 100);
    }

    #[test]
    fn empty_region_query_is_empty() {
        let tree = grid_tree(10);
        let q = BoundingBox::new(GeoPoint::new(0.0, 0.0), GeoPoint::new(0.01, 0.01));
        assert!(tree.query(&q).is_empty());
    }

    #[test]
    fn duplicate_points_all_stored() {
        let mut tree = QuadTree::new(bounds());
        let p = GeoPoint::new(5.0, 5.0);
        for i in 0..50 {
            tree.insert(p, i);
        }
        assert_eq!(tree.len(), 50);
        let q = BoundingBox::new(GeoPoint::new(4.9, 4.9), GeoPoint::new(5.1, 5.1));
        assert_eq!(tree.query(&q).len(), 50, "depth cap keeps identical points");
    }

    #[test]
    fn boundary_points_on_split_lines_found() {
        let mut tree = QuadTree::new(bounds());
        // Center point lies exactly on both split lines after a split.
        for i in 0..(LEAF_CAPACITY as u32 + 1) {
            tree.insert(GeoPoint::new(5.0, 5.0), i);
        }
        tree.insert(GeoPoint::new(2.0, 2.0), 99);
        let q = BoundingBox::new(GeoPoint::new(5.0, 5.0), GeoPoint::new(5.0, 5.0));
        assert_eq!(tree.query(&q).len(), LEAF_CAPACITY + 1);
    }

    #[test]
    #[should_panic(expected = "outside quadtree bounds")]
    fn outside_insert_panics() {
        let mut tree = QuadTree::new(bounds());
        tree.insert(GeoPoint::new(20.0, 5.0), 0);
    }

    #[test]
    fn iter_visits_all() {
        let tree = grid_tree(7);
        assert_eq!(tree.iter().count(), 49);
        assert!(QuadTree::<u32>::new(bounds()).is_empty());
    }
}
