//! GIS features and the georeferenced feature database.
//!
//! A feature is a geometry (point or building-footprint polygon) plus a
//! property document. The [`GisDatabase`] indexes features' reference
//! points in a quadtree and answers the bounding-box queries the GIS
//! Database-proxy serves.

use dimmer_core::{CoreError, Value};
use storage::document::DocumentStore;

use crate::geo::{BoundingBox, GeoPoint, Polygon};
use crate::quadtree::QuadTree;

/// A feature geometry.
#[derive(Debug, Clone, PartialEq)]
pub enum Geometry {
    /// A point of interest (sensor pole, cabinet, …).
    Point(GeoPoint),
    /// A footprint polygon (building, plant, …).
    Polygon(Polygon),
}

impl Geometry {
    /// The representative point used for spatial indexing: the point
    /// itself or the polygon centroid.
    pub fn reference_point(&self) -> GeoPoint {
        match self {
            Geometry::Point(p) => *p,
            Geometry::Polygon(poly) => poly.centroid(),
        }
    }

    /// Translates to the common data format.
    pub fn to_value(&self) -> Value {
        match self {
            Geometry::Point(p) => Value::object([
                ("type", Value::from("point")),
                ("coordinates", p.to_value()),
            ]),
            Geometry::Polygon(poly) => Value::object([
                ("type", Value::from("polygon")),
                (
                    "coordinates",
                    Value::Array(poly.vertices().iter().map(GeoPoint::to_value).collect()),
                ),
            ]),
        }
    }

    /// Decodes a value produced by [`Geometry::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] on the wrong shape.
    pub fn from_value(v: &Value) -> Result<Self, CoreError> {
        match v.require_str("geometry", "type")? {
            "point" => Ok(Geometry::Point(GeoPoint::from_value(
                v.require("geometry", "coordinates")?,
            )?)),
            "polygon" => {
                let coords = v.require_array("geometry", "coordinates")?;
                if coords.len() < 3 {
                    return Err(CoreError::Shape {
                        target: "geometry",
                        reason: "polygon needs at least 3 vertices".into(),
                    });
                }
                let vertices = coords
                    .iter()
                    .map(GeoPoint::from_value)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Geometry::Polygon(Polygon::new(vertices)))
            }
            other => Err(CoreError::Shape {
                target: "geometry",
                reason: format!("unknown geometry type {other:?}"),
            }),
        }
    }
}

/// A georeferenced feature: id + geometry + properties.
#[derive(Debug, Clone, PartialEq)]
pub struct Feature {
    id: String,
    geometry: Geometry,
    properties: Value,
}

impl Feature {
    /// Creates a feature. `properties` should be an object (or `Null`).
    pub fn new(id: impl Into<String>, geometry: Geometry, properties: Value) -> Self {
        Feature {
            id: id.into(),
            geometry,
            properties,
        }
    }

    /// The feature id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The property document.
    pub fn properties(&self) -> &Value {
        &self.properties
    }

    /// Translates to the common data format.
    pub fn to_value(&self) -> Value {
        Value::object([
            ("id", Value::from(self.id.as_str())),
            ("geometry", self.geometry.to_value()),
            ("properties", self.properties.clone()),
        ])
    }

    /// Decodes a value produced by [`Feature::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] on the wrong shape.
    pub fn from_value(v: &Value) -> Result<Self, CoreError> {
        Ok(Feature {
            id: v.require_str("feature", "id")?.to_owned(),
            geometry: Geometry::from_value(v.require("feature", "geometry")?)?,
            properties: v.get("properties").cloned().unwrap_or(Value::Null),
        })
    }
}

/// The georeferenced database behind the GIS Database-proxy.
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct GisDatabase {
    docs: DocumentStore,
    index: QuadTree<String>,
}

/// World bounds for the spatial index; districts cover a tiny fraction,
/// the tree adapts by splitting only where features are.
fn world() -> BoundingBox {
    BoundingBox::new(GeoPoint::new(-90.0, -180.0), GeoPoint::new(90.0, 180.0))
}

impl GisDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        GisDatabase {
            docs: DocumentStore::new(),
            index: QuadTree::new(world()),
        }
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Inserts a feature.
    ///
    /// # Errors
    ///
    /// Returns [`storage::StorageError::DuplicateId`] if the id is taken.
    pub fn insert(&mut self, feature: Feature) -> Result<(), storage::StorageError> {
        let id = feature.id().to_owned();
        let point = feature.geometry().reference_point();
        self.docs.insert(&id, feature.to_value())?;
        self.index.insert(point, id);
        Ok(())
    }

    /// Fetches a feature by id.
    pub fn get(&self, id: &str) -> Option<Feature> {
        self.docs.get(id).and_then(|v| Feature::from_value(v).ok())
    }

    /// All features whose reference point falls inside `bbox`.
    pub fn query_bbox(&self, bbox: &BoundingBox) -> Vec<Feature> {
        self.index
            .query(bbox)
            .into_iter()
            .filter_map(|(_, id)| self.get(id))
            .collect()
    }

    /// All feature ids, sorted.
    pub fn ids(&self) -> Vec<&str> {
        self.docs.iter().map(|(id, _)| id).collect()
    }

    /// Translates the whole database to a feature-collection value.
    pub fn to_value(&self) -> Value {
        Value::object([(
            "features",
            Value::Array(self.docs.iter().map(|(_, v)| v.clone()).collect()),
        )])
    }
}

impl Default for GisDatabase {
    fn default() -> Self {
        GisDatabase::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn building(id: &str, lat: f64, lon: f64) -> Feature {
        Feature::new(
            id,
            Geometry::Polygon(Polygon::new(vec![
                GeoPoint::new(lat, lon),
                GeoPoint::new(lat, lon + 0.001),
                GeoPoint::new(lat + 0.001, lon + 0.001),
                GeoPoint::new(lat + 0.001, lon),
            ])),
            Value::object([("kind", Value::from("building"))]),
        )
    }

    #[test]
    fn geometry_value_round_trip() {
        let p = Geometry::Point(GeoPoint::new(45.07, 7.68));
        assert_eq!(Geometry::from_value(&p.to_value()).unwrap(), p);
        let poly = building("x", 45.0, 7.6).geometry().clone();
        assert_eq!(Geometry::from_value(&poly.to_value()).unwrap(), poly);
        assert!(Geometry::from_value(&Value::object([("type", Value::from("circle"))])).is_err());
    }

    #[test]
    fn feature_value_round_trip() {
        let f = building("b1", 45.05, 7.65);
        assert_eq!(Feature::from_value(&f.to_value()).unwrap(), f);
    }

    #[test]
    fn insert_get_query() {
        let mut db = GisDatabase::new();
        db.insert(building("b1", 45.05, 7.65)).unwrap();
        db.insert(building("b2", 45.06, 7.66)).unwrap();
        db.insert(building("far", 52.5, 13.4)).unwrap();
        assert_eq!(db.len(), 3);
        assert_eq!(db.get("b1").unwrap().id(), "b1");
        assert!(db.get("ghost").is_none());

        let turin = BoundingBox::new(GeoPoint::new(45.0, 7.6), GeoPoint::new(45.1, 7.7));
        let mut ids: Vec<String> = db
            .query_bbox(&turin)
            .into_iter()
            .map(|f| f.id().to_owned())
            .collect();
        ids.sort();
        assert_eq!(ids, vec!["b1", "b2"]);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut db = GisDatabase::new();
        db.insert(building("b1", 45.0, 7.6)).unwrap();
        assert!(db.insert(building("b1", 45.0, 7.6)).is_err());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn polygon_indexed_by_centroid() {
        let mut db = GisDatabase::new();
        db.insert(building("b1", 45.05, 7.65)).unwrap();
        // Query box around the centroid but excluding the SW vertex.
        let q = BoundingBox::new(
            GeoPoint::new(45.0504, 7.6504),
            GeoPoint::new(45.0506, 7.6506),
        );
        assert_eq!(db.query_bbox(&q).len(), 1);
    }

    #[test]
    fn to_value_is_feature_collection() {
        let mut db = GisDatabase::new();
        db.insert(building("b1", 45.0, 7.6)).unwrap();
        let v = db.to_value();
        assert_eq!(v.require_array("gis", "features").unwrap().len(), 1);
    }
}
