//! # dimmer-gis — the geographic substrate
//!
//! One or more GIS databases "store georeferenced information about
//! buildings in the district". This crate provides that substrate:
//!
//! * [`geo`] — WGS-84 points, bounding boxes, polygons, haversine
//!   distances and point-in-polygon tests;
//! * [`quadtree`] — a point quadtree for fast bounding-box queries;
//! * [`feature`] — GIS features (geometry + properties) and the
//!   [`feature::GisDatabase`] the GIS Database-proxy serves.
//!
//! ## Example
//!
//! ```
//! use gis::geo::{GeoPoint, BoundingBox};
//! use gis::feature::{Feature, Geometry, GisDatabase};
//! use dimmer_core::Value;
//!
//! let mut db = GisDatabase::new();
//! db.insert(Feature::new(
//!     "b1",
//!     Geometry::Point(GeoPoint::new(45.0703, 7.6869)), // Turin
//!     Value::object([("kind", Value::from("building"))]),
//! )).unwrap();
//! let hits = db.query_bbox(&BoundingBox::new(
//!     GeoPoint::new(45.0, 7.6), GeoPoint::new(45.1, 7.8)));
//! assert_eq!(hits.len(), 1);
//! ```

pub mod feature;
pub mod geo;
pub mod quadtree;
