//! Geographic primitives on the WGS-84 ellipsoid (spherical
//! approximation).

use std::fmt;

use dimmer_core::{CoreError, Value};

/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A WGS-84 coordinate.
///
/// ```
/// use gis::geo::GeoPoint;
/// let turin = GeoPoint::new(45.0703, 7.6869);
/// let milan = GeoPoint::new(45.4642, 9.1900);
/// let d = turin.distance_m(&milan);
/// assert!((d - 125_000.0).abs() < 5_000.0, "Turin-Milan is ~125 km, got {d}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GeoPoint {
    /// Latitude in degrees, south negative.
    pub lat: f64,
    /// Longitude in degrees, west negative.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point.
    ///
    /// # Panics
    ///
    /// Panics if latitude is outside ±90° or longitude outside ±180°.
    pub fn new(lat: f64, lon: f64) -> Self {
        assert!((-90.0..=90.0).contains(&lat), "latitude out of range");
        assert!((-180.0..=180.0).contains(&lon), "longitude out of range");
        GeoPoint { lat, lon }
    }

    /// Great-circle distance to `other` in metres (haversine).
    pub fn distance_m(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Translates to the common data format `{lat, lon}`.
    pub fn to_value(&self) -> Value {
        Value::object([
            ("lat", Value::from(self.lat)),
            ("lon", Value::from(self.lon)),
        ])
    }

    /// Decodes a value produced by [`GeoPoint::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] when members are missing or out of
    /// range.
    pub fn from_value(v: &Value) -> Result<Self, CoreError> {
        let lat = v.require_f64("geo point", "lat")?;
        let lon = v.require_f64("geo point", "lon")?;
        if !(-90.0..=90.0).contains(&lat) || !(-180.0..=180.0).contains(&lon) {
            return Err(CoreError::Shape {
                target: "geo point",
                reason: "coordinate out of range".into(),
            });
        }
        Ok(GeoPoint { lat, lon })
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.lat, self.lon)
    }
}

/// An axis-aligned bounding box in coordinate space.
///
/// Boxes do not wrap the antimeridian — districts are city-scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    min: GeoPoint,
    max: GeoPoint,
}

impl BoundingBox {
    /// Creates a box from two corners.
    ///
    /// # Panics
    ///
    /// Panics if `min` exceeds `max` on either axis.
    pub fn new(min: GeoPoint, max: GeoPoint) -> Self {
        assert!(
            min.lat <= max.lat && min.lon <= max.lon,
            "bounding box corners are inverted"
        );
        BoundingBox { min, max }
    }

    /// The smallest box containing all `points`.
    ///
    /// Returns `None` for an empty iterator.
    pub fn around<'a, I: IntoIterator<Item = &'a GeoPoint>>(points: I) -> Option<Self> {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let mut min = *first;
        let mut max = *first;
        for p in iter {
            min.lat = min.lat.min(p.lat);
            min.lon = min.lon.min(p.lon);
            max.lat = max.lat.max(p.lat);
            max.lon = max.lon.max(p.lon);
        }
        Some(BoundingBox { min, max })
    }

    /// The south-west corner.
    pub fn min(&self) -> GeoPoint {
        self.min
    }

    /// The north-east corner.
    pub fn max(&self) -> GeoPoint {
        self.max
    }

    /// The box centre.
    pub fn center(&self) -> GeoPoint {
        GeoPoint {
            lat: (self.min.lat + self.max.lat) / 2.0,
            lon: (self.min.lon + self.max.lon) / 2.0,
        }
    }

    /// Whether `p` lies inside (inclusive of edges).
    pub fn contains(&self, p: &GeoPoint) -> bool {
        (self.min.lat..=self.max.lat).contains(&p.lat)
            && (self.min.lon..=self.max.lon).contains(&p.lon)
    }

    /// Whether two boxes overlap (edge contact counts).
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.min.lat <= other.max.lat
            && other.min.lat <= self.max.lat
            && self.min.lon <= other.max.lon
            && other.min.lon <= self.max.lon
    }

    /// Grows the box by `margin_deg` degrees on every side (clamped to
    /// valid coordinates).
    pub fn expanded(&self, margin_deg: f64) -> BoundingBox {
        BoundingBox {
            min: GeoPoint {
                lat: (self.min.lat - margin_deg).max(-90.0),
                lon: (self.min.lon - margin_deg).max(-180.0),
            },
            max: GeoPoint {
                lat: (self.max.lat + margin_deg).min(90.0),
                lon: (self.max.lon + margin_deg).min(180.0),
            },
        }
    }

    /// Encodes as the `"minLat,minLon,maxLat,maxLon"` string used in
    /// query parameters.
    pub fn to_query(&self) -> String {
        format!(
            "{},{},{},{}",
            self.min.lat, self.min.lon, self.max.lat, self.max.lon
        )
    }

    /// Parses the query-parameter form produced by
    /// [`BoundingBox::to_query`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] on malformed input.
    pub fn parse_query(s: &str) -> Result<Self, CoreError> {
        let parts: Vec<&str> = s.split(',').collect();
        let err = |reason: &str| CoreError::Shape {
            target: "bounding box",
            reason: reason.to_owned(),
        };
        if parts.len() != 4 {
            return Err(err("expected four comma-separated numbers"));
        }
        let mut nums = [0.0f64; 4];
        for (i, p) in parts.iter().enumerate() {
            nums[i] = p.parse().map_err(|_| err("invalid number"))?;
        }
        let [min_lat, min_lon, max_lat, max_lon] = nums;
        if min_lat > max_lat || min_lon > max_lon {
            return Err(err("corners inverted"));
        }
        if !(-90.0..=90.0).contains(&min_lat)
            || !(-90.0..=90.0).contains(&max_lat)
            || !(-180.0..=180.0).contains(&min_lon)
            || !(-180.0..=180.0).contains(&max_lon)
        {
            return Err(err("coordinate out of range"));
        }
        Ok(BoundingBox {
            min: GeoPoint {
                lat: min_lat,
                lon: min_lon,
            },
            max: GeoPoint {
                lat: max_lat,
                lon: max_lon,
            },
        })
    }
}

/// A simple (non-self-intersecting) polygon: an open ring of vertices.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    vertices: Vec<GeoPoint>,
}

impl Polygon {
    /// Creates a polygon from at least three vertices (do not repeat the
    /// first vertex at the end).
    ///
    /// # Panics
    ///
    /// Panics with fewer than three vertices.
    pub fn new(vertices: Vec<GeoPoint>) -> Self {
        assert!(vertices.len() >= 3, "a polygon needs at least 3 vertices");
        Polygon { vertices }
    }

    /// The vertex ring.
    pub fn vertices(&self) -> &[GeoPoint] {
        &self.vertices
    }

    /// The bounding box of the ring.
    pub fn bbox(&self) -> BoundingBox {
        BoundingBox::around(self.vertices.iter()).expect("at least 3 vertices")
    }

    /// The planar centroid of the vertex ring (adequate at city scale).
    pub fn centroid(&self) -> GeoPoint {
        let n = self.vertices.len() as f64;
        GeoPoint {
            lat: self.vertices.iter().map(|p| p.lat).sum::<f64>() / n,
            lon: self.vertices.iter().map(|p| p.lon).sum::<f64>() / n,
        }
    }

    /// Whether `p` lies inside the polygon (ray casting; boundary points
    /// are implementation-defined as is conventional).
    pub fn contains(&self, p: &GeoPoint) -> bool {
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let (vi, vj) = (&self.vertices[i], &self.vertices[j]);
            if (vi.lat > p.lat) != (vj.lat > p.lat) {
                let intersect_lon =
                    vj.lon + (p.lat - vj.lat) / (vi.lat - vj.lat) * (vi.lon - vj.lon);
                if p.lon < intersect_lon {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Approximate enclosed area in square metres (shoelace on a local
    /// equirectangular projection around the centroid).
    pub fn area_m2(&self) -> f64 {
        let c = self.centroid();
        let scale_lat = EARTH_RADIUS_M.to_radians(); // metres per degree lat
        let scale_lon = scale_lat * c.lat.to_radians().cos();
        let xy: Vec<(f64, f64)> = self
            .vertices
            .iter()
            .map(|p| ((p.lon - c.lon) * scale_lon, (p.lat - c.lat) * scale_lat))
            .collect();
        let mut sum = 0.0;
        for i in 0..xy.len() {
            let (x1, y1) = xy[i];
            let (x2, y2) = xy[(i + 1) % xy.len()];
            sum += x1 * y2 - x2 * y1;
        }
        (sum / 2.0).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Polygon {
        Polygon::new(vec![
            GeoPoint::new(45.00, 7.60),
            GeoPoint::new(45.00, 7.70),
            GeoPoint::new(45.10, 7.70),
            GeoPoint::new(45.10, 7.60),
        ])
    }

    #[test]
    fn haversine_known_distances() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 1.0);
        // One degree of longitude at the equator ≈ 111.19 km.
        assert!((a.distance_m(&b) - 111_195.0).abs() < 100.0);
        assert_eq!(a.distance_m(&a), 0.0);
        // Symmetry.
        assert_eq!(a.distance_m(&b), b.distance_m(&a));
    }

    #[test]
    #[should_panic(expected = "latitude")]
    fn latitude_validated() {
        GeoPoint::new(91.0, 0.0);
    }

    #[test]
    fn point_value_round_trip() {
        let p = GeoPoint::new(45.0703, 7.6869);
        assert_eq!(GeoPoint::from_value(&p.to_value()).unwrap(), p);
        assert!(GeoPoint::from_value(&Value::object([
            ("lat", Value::from(99.0)),
            ("lon", Value::from(0.0))
        ]))
        .is_err());
        assert!(GeoPoint::from_value(&Value::Null).is_err());
    }

    #[test]
    fn bbox_contains_and_intersects() {
        let b = BoundingBox::new(GeoPoint::new(45.0, 7.6), GeoPoint::new(45.1, 7.7));
        assert!(b.contains(&GeoPoint::new(45.05, 7.65)));
        assert!(
            b.contains(&b.min()) && b.contains(&b.max()),
            "edges inclusive"
        );
        assert!(!b.contains(&GeoPoint::new(44.99, 7.65)));
        let c = BoundingBox::new(GeoPoint::new(45.05, 7.65), GeoPoint::new(45.2, 7.8));
        assert!(b.intersects(&c) && c.intersects(&b));
        let d = BoundingBox::new(GeoPoint::new(46.0, 8.0), GeoPoint::new(46.1, 8.1));
        assert!(!b.intersects(&d));
    }

    #[test]
    fn bbox_around_points() {
        let points = [
            GeoPoint::new(45.05, 7.62),
            GeoPoint::new(45.01, 7.69),
            GeoPoint::new(45.09, 7.61),
        ];
        let b = BoundingBox::around(points.iter()).unwrap();
        assert_eq!(b.min().lat, 45.01);
        assert_eq!(b.max().lon, 7.69);
        assert!(BoundingBox::around([].iter()).is_none());
    }

    #[test]
    fn bbox_query_round_trip() {
        let b = BoundingBox::new(GeoPoint::new(45.0, 7.6), GeoPoint::new(45.1, 7.7));
        let q = b.to_query();
        assert_eq!(BoundingBox::parse_query(&q).unwrap(), b);
        for bad in ["", "1,2,3", "a,b,c,d", "2,2,1,1", "91,0,92,0"] {
            assert!(BoundingBox::parse_query(bad).is_err(), "{bad}");
        }
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_bbox_rejected() {
        BoundingBox::new(GeoPoint::new(45.1, 7.6), GeoPoint::new(45.0, 7.7));
    }

    #[test]
    fn bbox_expand_clamps() {
        let b = BoundingBox::new(GeoPoint::new(89.5, 179.5), GeoPoint::new(90.0, 180.0));
        let e = b.expanded(1.0);
        assert_eq!(e.max().lat, 90.0);
        assert_eq!(e.max().lon, 180.0);
        assert_eq!(e.min().lat, 88.5);
    }

    #[test]
    fn polygon_contains() {
        let p = square();
        assert!(p.contains(&GeoPoint::new(45.05, 7.65)));
        assert!(!p.contains(&GeoPoint::new(45.15, 7.65)));
        assert!(!p.contains(&GeoPoint::new(45.05, 7.75)));
    }

    #[test]
    fn concave_polygon_contains() {
        // A "C" shape.
        let c = Polygon::new(vec![
            GeoPoint::new(0.0, 0.0),
            GeoPoint::new(0.0, 3.0),
            GeoPoint::new(3.0, 3.0),
            GeoPoint::new(3.0, 0.0),
            GeoPoint::new(2.0, 0.0),
            GeoPoint::new(2.0, 2.0),
            GeoPoint::new(1.0, 2.0),
            GeoPoint::new(1.0, 0.0),
        ]);
        assert!(c.contains(&GeoPoint::new(2.5, 1.0)), "inside the C arm");
        assert!(!c.contains(&GeoPoint::new(1.5, 1.0)), "inside the notch");
    }

    #[test]
    fn polygon_centroid_and_bbox() {
        let p = square();
        let c = p.centroid();
        assert!((c.lat - 45.05).abs() < 1e-9);
        assert!((c.lon - 7.65).abs() < 1e-9);
        let b = p.bbox();
        assert_eq!(b.min().lat, 45.0);
        assert_eq!(b.max().lon, 7.7);
    }

    #[test]
    fn polygon_area_plausible() {
        // ~0.1 deg x 0.1 deg near 45N: 11.1 km x 7.9 km ≈ 87.5 km².
        let a = square().area_m2();
        assert!((a - 87.5e6).abs() < 2.5e6, "area {a}");
    }

    #[test]
    #[should_panic(expected = "3 vertices")]
    fn degenerate_polygon_rejected() {
        Polygon::new(vec![GeoPoint::new(0.0, 0.0), GeoPoint::new(1.0, 1.0)]);
    }
}
