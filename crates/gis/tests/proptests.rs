//! Randomized tests on geometry and the quadtree, driven by
//! `simnet::rng::DeterministicRng` (reproducible, no external
//! property-testing dependency).

use gis::feature::{Feature, Geometry, GisDatabase};
use gis::geo::{BoundingBox, GeoPoint, Polygon};
use gis::quadtree::QuadTree;
use simnet::rng::DeterministicRng;

const CASES: usize = 256;

fn rand_point(rng: &mut DeterministicRng) -> GeoPoint {
    GeoPoint::new(
        rng.next_f64_range(-89.0, 89.0),
        rng.next_f64_range(-179.0, 179.0),
    )
}

fn rand_bbox(rng: &mut DeterministicRng) -> BoundingBox {
    let min = rand_point(rng);
    let dlat = rng.next_f64_range(0.0, 2.0);
    let dlon = rng.next_f64_range(0.0, 2.0);
    BoundingBox::new(
        min,
        GeoPoint::new((min.lat + dlat).min(90.0), (min.lon + dlon).min(180.0)),
    )
}

#[test]
fn distance_is_a_metric() {
    let mut rng = DeterministicRng::seed_from(0x615_0001);
    for _ in 0..CASES {
        let a = rand_point(&mut rng);
        let b = rand_point(&mut rng);
        let d_ab = a.distance_m(&b);
        let d_ba = b.distance_m(&a);
        assert!((d_ab - d_ba).abs() < 1e-6, "symmetry");
        assert!(d_ab >= 0.0);
        assert!(a.distance_m(&a) < 1e-9, "identity");
        // Upper bound: half the Earth's circumference.
        assert!(d_ab <= 20_100_000.0, "{d_ab}");
    }
}

#[test]
fn bbox_contains_center_and_corners() {
    let mut rng = DeterministicRng::seed_from(0x615_0002);
    for _ in 0..CASES {
        let bbox = rand_bbox(&mut rng);
        assert!(bbox.contains(&bbox.center()));
        assert!(bbox.contains(&bbox.min()));
        assert!(bbox.contains(&bbox.max()));
        assert!(bbox.intersects(&bbox));
    }
}

#[test]
fn bbox_query_string_round_trips() {
    let mut rng = DeterministicRng::seed_from(0x615_0003);
    for _ in 0..CASES {
        let bbox = rand_bbox(&mut rng);
        let parsed = BoundingBox::parse_query(&bbox.to_query()).expect("round trip");
        assert!((parsed.min().lat - bbox.min().lat).abs() < 1e-12);
        assert!((parsed.max().lon - bbox.max().lon).abs() < 1e-12);
    }
}

#[test]
fn quadtree_query_equals_linear_scan() {
    let mut rng = DeterministicRng::seed_from(0x615_0004);
    for _ in 0..CASES / 4 {
        let points: Vec<GeoPoint> = (0..rng.next_bounded(200))
            .map(|_| rand_point(&mut rng))
            .collect();
        let query = rand_bbox(&mut rng);
        let world = BoundingBox::new(GeoPoint::new(-90.0, -180.0), GeoPoint::new(90.0, 180.0));
        let mut tree = QuadTree::new(world);
        for (i, p) in points.iter().enumerate() {
            tree.insert(*p, i);
        }
        let mut from_tree: Vec<usize> = tree.query(&query).into_iter().map(|(_, &i)| i).collect();
        let mut linear: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| query.contains(p))
            .map(|(i, _)| i)
            .collect();
        from_tree.sort_unstable();
        linear.sort_unstable();
        assert_eq!(from_tree, linear);
        assert_eq!(tree.len(), points.len());
    }
}

#[test]
fn polygon_centroid_inside_bbox() {
    let mut rng = DeterministicRng::seed_from(0x615_0005);
    for _ in 0..CASES {
        let vertices: Vec<GeoPoint> = (0..rng.next_range(3, 11))
            .map(|_| rand_point(&mut rng))
            .collect();
        let polygon = Polygon::new(vertices);
        let bbox = polygon.bbox();
        assert!(bbox.contains(&polygon.centroid()));
        assert!(polygon.area_m2() >= 0.0);
    }
}

#[test]
fn convex_quad_contains_its_centroid() {
    let mut rng = DeterministicRng::seed_from(0x615_0006);
    for _ in 0..CASES {
        let center = rand_point(&mut rng);
        let dlat = rng.next_f64_range(1e-4, 0.01);
        let dlon = rng.next_f64_range(1e-4, 0.01);
        let polygon = Polygon::new(vec![
            GeoPoint::new(center.lat - dlat, center.lon - dlon),
            GeoPoint::new(center.lat - dlat, center.lon + dlon),
            GeoPoint::new(center.lat + dlat, center.lon + dlon),
            GeoPoint::new(center.lat + dlat, center.lon - dlon),
        ]);
        assert!(polygon.contains(&center));
        // Far outside point is excluded.
        assert!(!polygon.contains(&GeoPoint::new((center.lat + 1.0).min(90.0), center.lon)));
    }
}

#[test]
fn feature_value_round_trip() {
    let mut rng = DeterministicRng::seed_from(0x615_0007);
    let id_chars = b"abcxyz019-";
    for _ in 0..CASES {
        let p = rand_point(&mut rng);
        let id: String = (0..rng.next_range(1, 12))
            .map(|_| id_chars[rng.next_bounded(id_chars.len() as u64) as usize] as char)
            .collect();
        let feature = Feature::new(
            id,
            Geometry::Point(p),
            dimmer_core::Value::object([("k", dimmer_core::Value::from(1))]),
        );
        assert_eq!(
            Feature::from_value(&feature.to_value()).expect("round trip"),
            feature
        );
    }
}

#[test]
fn gis_db_bbox_query_consistent() {
    let mut rng = DeterministicRng::seed_from(0x615_0008);
    for _ in 0..CASES / 4 {
        let points: Vec<GeoPoint> = (0..rng.next_range(1, 39))
            .map(|_| rand_point(&mut rng))
            .collect();
        let query = rand_bbox(&mut rng);
        let mut db = GisDatabase::new();
        for (i, p) in points.iter().enumerate() {
            db.insert(Feature::new(
                format!("f{i}"),
                Geometry::Point(*p),
                dimmer_core::Value::Null,
            ))
            .expect("unique ids");
        }
        let hits = db.query_bbox(&query);
        let expected = points.iter().filter(|p| query.contains(p)).count();
        assert_eq!(hits.len(), expected);
        for f in &hits {
            assert!(query.contains(&f.geometry().reference_point()));
        }
    }
}
