//! Property-based tests on geometry and the quadtree.

use gis::feature::{Feature, Geometry, GisDatabase};
use gis::geo::{BoundingBox, GeoPoint, Polygon};
use gis::quadtree::QuadTree;
use proptest::prelude::*;

fn point_strategy() -> impl Strategy<Value = GeoPoint> {
    (-89.0f64..89.0, -179.0f64..179.0).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

fn bbox_strategy() -> impl Strategy<Value = BoundingBox> {
    (point_strategy(), 0.0f64..2.0, 0.0f64..2.0).prop_map(|(min, dlat, dlon)| {
        BoundingBox::new(
            min,
            GeoPoint::new((min.lat + dlat).min(90.0), (min.lon + dlon).min(180.0)),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn distance_is_a_metric(a in point_strategy(), b in point_strategy()) {
        let d_ab = a.distance_m(&b);
        let d_ba = b.distance_m(&a);
        prop_assert!((d_ab - d_ba).abs() < 1e-6, "symmetry");
        prop_assert!(d_ab >= 0.0);
        prop_assert!(a.distance_m(&a) < 1e-9, "identity");
        // Upper bound: half the Earth's circumference.
        prop_assert!(d_ab <= 20_100_000.0, "{d_ab}");
    }

    #[test]
    fn bbox_contains_center_and_corners(bbox in bbox_strategy()) {
        prop_assert!(bbox.contains(&bbox.center()));
        prop_assert!(bbox.contains(&bbox.min()));
        prop_assert!(bbox.contains(&bbox.max()));
        prop_assert!(bbox.intersects(&bbox));
    }

    #[test]
    fn bbox_query_string_round_trips(bbox in bbox_strategy()) {
        let parsed = BoundingBox::parse_query(&bbox.to_query()).expect("round trip");
        prop_assert!((parsed.min().lat - bbox.min().lat).abs() < 1e-12);
        prop_assert!((parsed.max().lon - bbox.max().lon).abs() < 1e-12);
    }

    #[test]
    fn quadtree_query_equals_linear_scan(
        points in prop::collection::vec(point_strategy(), 0..200),
        query in bbox_strategy(),
    ) {
        let world = BoundingBox::new(GeoPoint::new(-90.0, -180.0), GeoPoint::new(90.0, 180.0));
        let mut tree = QuadTree::new(world);
        for (i, p) in points.iter().enumerate() {
            tree.insert(*p, i);
        }
        let mut from_tree: Vec<usize> =
            tree.query(&query).into_iter().map(|(_, &i)| i).collect();
        let mut linear: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| query.contains(p))
            .map(|(i, _)| i)
            .collect();
        from_tree.sort_unstable();
        linear.sort_unstable();
        prop_assert_eq!(from_tree, linear);
        prop_assert_eq!(tree.len(), points.len());
    }

    #[test]
    fn polygon_centroid_inside_bbox(vertices in prop::collection::vec(point_strategy(), 3..12)) {
        let polygon = Polygon::new(vertices);
        let bbox = polygon.bbox();
        prop_assert!(bbox.contains(&polygon.centroid()));
        prop_assert!(polygon.area_m2() >= 0.0);
    }

    #[test]
    fn convex_quad_contains_its_centroid(
        center in point_strategy(),
        dlat in 1e-4f64..0.01,
        dlon in 1e-4f64..0.01,
    ) {
        let polygon = Polygon::new(vec![
            GeoPoint::new(center.lat - dlat, center.lon - dlon),
            GeoPoint::new(center.lat - dlat, center.lon + dlon),
            GeoPoint::new(center.lat + dlat, center.lon + dlon),
            GeoPoint::new(center.lat + dlat, center.lon - dlon),
        ]);
        prop_assert!(polygon.contains(&center));
        // Far outside point is excluded.
        prop_assert!(!polygon.contains(&GeoPoint::new(
            (center.lat + 1.0).min(90.0),
            center.lon
        )));
    }

    #[test]
    fn feature_value_round_trip(
        p in point_strategy(),
        id in "[a-z0-9-]{1,12}",
    ) {
        let feature = Feature::new(
            id,
            Geometry::Point(p),
            dimmer_core::Value::object([("k", dimmer_core::Value::from(1))]),
        );
        prop_assert_eq!(
            Feature::from_value(&feature.to_value()).expect("round trip"),
            feature
        );
    }

    #[test]
    fn gis_db_bbox_query_consistent(
        points in prop::collection::vec(point_strategy(), 1..40),
        query in bbox_strategy(),
    ) {
        let mut db = GisDatabase::new();
        for (i, p) in points.iter().enumerate() {
            db.insert(Feature::new(
                format!("f{i}"),
                Geometry::Point(*p),
                dimmer_core::Value::Null,
            ))
            .expect("unique ids");
        }
        let hits = db.query_bbox(&query);
        let expected = points.iter().filter(|p| query.contains(p)).count();
        prop_assert_eq!(hits.len(), expected);
        for f in &hits {
            prop_assert!(query.contains(&f.geometry().reference_point()));
        }
    }
}
