//! Dependency-free telemetry for the dimmer workspace.
//!
//! Three pieces, all deterministic and all bounded in memory:
//!
//! * [`metrics`] — a [`Registry`] of named counters, gauges and
//!   log-bucketed [`Histogram`]s. Histograms hold a fixed number of
//!   geometric buckets (plus exact count/sum/min/max), so hot paths can
//!   record millions of observations in constant memory and still answer
//!   p50/p90/p99/p999 queries with bounded relative error.
//! * [`trace`] — a sim-time tracing layer. Events are stamped with a
//!   nanosecond timestamp and node identity and recorded into a bounded
//!   ring buffer ([`Tracer`]); when full, the oldest events are dropped
//!   (and counted). The buffer exports as JSON lines.
//! * [`flight`] — the flight recorder: given the trace events, it
//!   reconstructs the path of each traced measurement (device →
//!   device-proxy → broker → subscriber/master) with a per-hop latency
//!   breakdown, and — for span-carrying events — the causal tree
//!   ([`flight::reconstruct_trees`]) showing who caused what across
//!   fan-outs and federation bridges.
//! * [`expo`] — Prometheus-style text exposition of a
//!   [`MetricsSnapshot`], served by each node's `/metrics` endpoint.
//! * [`slo`] — named latency objectives evaluated against registry
//!   histograms, with attainment and error-budget burn.
//!
//! The crate deliberately has no dependencies — not even on `simnet` —
//! so every layer of the workspace can use it without cycles. Time is
//! passed in as raw `u64` nanoseconds; `simnet::SimTime::as_nanos()`
//! provides exactly that.
//!
//! All handles are cheap to clone (`Arc<Mutex<..>>` internally): the
//! simulator owns one [`Telemetry`] and shares it with every node via
//! the callback context.

pub mod expo;
pub mod flight;
pub mod metrics;
pub mod slo;
pub mod trace;

pub use expo::exposition;
pub use flight::{FlightPath, Hop, SpanNode, SpanTree};
pub use metrics::{Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use slo::{SloReport, SloSpec, SloTracker};
pub use trace::{SpanId, TraceEvent, TraceId, Tracer, NO_SPAN, NO_TRACE};

/// The bundle every instrumented component sees: a metrics registry, a
/// trace recorder, and the SLO tracker. Cloning shares the underlying
/// state.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    pub metrics: Registry,
    pub tracer: Tracer,
    pub slos: SloTracker,
}

impl Telemetry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconstructs per-trace flight paths from the current ring-buffer
    /// contents. See [`flight::reconstruct`].
    pub fn flight_paths(&self) -> Vec<FlightPath> {
        flight::reconstruct(&self.tracer.events())
    }

    /// Reconstructs per-trace causal span trees from the current
    /// ring-buffer contents. See [`flight::reconstruct_trees`].
    pub fn span_trees(&self) -> Vec<SpanTree> {
        flight::reconstruct_trees(&self.tracer.events())
    }

    /// Refreshes the ops-plane self-observation gauges (`trace.dropped`,
    /// `trace.ring_len`) so scrapes expose trace-ring health instead of
    /// silently losing events.
    pub fn refresh_ops_gauges(&self) {
        self.metrics
            .set_gauge("trace.dropped", self.tracer.dropped() as f64);
        self.metrics
            .set_gauge("trace.ring_len", self.tracer.len() as f64);
    }

    /// Harvests trace-derived latencies, evaluates every registered SLO
    /// spec, publishes `slo.<name>.attainment` / `slo.<name>.burn`
    /// gauges, and returns the reports (name order).
    pub fn slo_refresh(&self) -> Vec<SloReport> {
        self.slos.harvest(&self.tracer.events(), &self.metrics);
        let reports = self.slos.evaluate(&self.metrics);
        for r in &reports {
            self.metrics
                .set_gauge(&format!("slo.{}.attainment", r.name), r.attainment);
            self.metrics
                .set_gauge(&format!("slo.{}.burn", r.name), r.burn);
        }
        reports
    }

    /// Renders the current metrics as Prometheus exposition text,
    /// refreshing the ops gauges first so every scrape carries them.
    pub fn exposition(&self) -> String {
        self.refresh_ops_gauges();
        expo::exposition(&self.metrics.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_clones_share_state() {
        let t = Telemetry::new();
        let t2 = t.clone();
        t.metrics.incr("a");
        t2.metrics.incr("a");
        assert_eq!(t.metrics.counter("a"), 2);

        let id = t.tracer.next_trace_id();
        t2.tracer.record(5, 0, "x", id, "");
        assert_eq!(t.tracer.events().len(), 1);
    }

    #[test]
    fn ops_gauges_and_slo_refresh_flow_into_scrape() {
        let t = Telemetry::new();
        let id = t.tracer.next_trace_id();
        t.tracer.record(1_000, 1, "broker.publish", id, "");
        t.tracer.record(2_000, 2, "sub.receive", id, "");
        t.slos
            .add_harvest("lat.e2e_ns", "broker.publish", "sub.receive");
        t.slos.add_spec(SloSpec {
            name: "publish_to_deliver".to_string(),
            histogram: "lat.e2e_ns".to_string(),
            target_ns: 1_000_000.0,
            objective: 0.99,
        });
        let reports = t.slo_refresh();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].met);
        assert_eq!(reports[0].count, 1);
        assert_eq!(t.metrics.gauge("slo.publish_to_deliver.attainment"), 1.0);
        let text = t.exposition();
        assert!(text.contains("slo_publish_to_deliver_attainment 1"));
        assert!(text.contains("# TYPE trace_dropped gauge"));
    }
}
