//! Dependency-free telemetry for the dimmer workspace.
//!
//! Three pieces, all deterministic and all bounded in memory:
//!
//! * [`metrics`] — a [`Registry`] of named counters, gauges and
//!   log-bucketed [`Histogram`]s. Histograms hold a fixed number of
//!   geometric buckets (plus exact count/sum/min/max), so hot paths can
//!   record millions of observations in constant memory and still answer
//!   p50/p90/p99/p999 queries with bounded relative error.
//! * [`trace`] — a sim-time tracing layer. Events are stamped with a
//!   nanosecond timestamp and node identity and recorded into a bounded
//!   ring buffer ([`Tracer`]); when full, the oldest events are dropped
//!   (and counted). The buffer exports as JSON lines.
//! * [`flight`] — the flight recorder: given the trace events, it
//!   reconstructs the path of each traced measurement (device →
//!   device-proxy → broker → subscriber/master) with a per-hop latency
//!   breakdown.
//!
//! The crate deliberately has no dependencies — not even on `simnet` —
//! so every layer of the workspace can use it without cycles. Time is
//! passed in as raw `u64` nanoseconds; `simnet::SimTime::as_nanos()`
//! provides exactly that.
//!
//! All handles are cheap to clone (`Arc<Mutex<..>>` internally): the
//! simulator owns one [`Telemetry`] and shares it with every node via
//! the callback context.

pub mod flight;
pub mod metrics;
pub mod trace;

pub use flight::{FlightPath, Hop};
pub use metrics::{Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use trace::{TraceEvent, TraceId, Tracer, NO_TRACE};

/// The bundle every instrumented component sees: a metrics registry plus
/// a trace recorder. Cloning shares the underlying state.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    pub metrics: Registry,
    pub tracer: Tracer,
}

impl Telemetry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconstructs per-trace flight paths from the current ring-buffer
    /// contents. See [`flight::reconstruct`].
    pub fn flight_paths(&self) -> Vec<FlightPath> {
        flight::reconstruct(&self.tracer.events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_clones_share_state() {
        let t = Telemetry::new();
        let t2 = t.clone();
        t.metrics.incr("a");
        t2.metrics.incr("a");
        assert_eq!(t.metrics.counter("a"), 2);

        let id = t.tracer.next_trace_id();
        t2.tracer.record(5, 0, "x", id, "");
        assert_eq!(t.tracer.events().len(), 1);
    }
}
