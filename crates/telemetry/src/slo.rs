//! Named latency objectives (SLOs) with attainment and error-budget
//! burn, computed from registry histograms.
//!
//! An [`SloSpec`] names a latency histogram and a bound on it:
//! "`publish_to_deliver`: 99% of samples ≤ 250 ms". Evaluation reads
//! the histogram's CDF ([`Histogram::fraction_le`]) at the target, so
//! attainment carries the same bounded relative error as every other
//! quantile in the registry and costs O(buckets) — no samples are
//! retained.
//!
//! Histograms can be fed directly by instrumented code, or distilled
//! from the trace ring by a harvest ([`SloTracker::add_harvest`]): a
//! harvest names a
//! `(from_kind, to_kind)` pair of hop kinds and, for every traced
//! flight that visits both, records the first-to-last latency between
//! them. Each trace is harvested once (the ring retains events across
//! refreshes; the harvest deduplicates by trace id).
//!
//! Error-budget **burn** is the fraction of the allowed failure budget
//! already spent: with objective 0.99, 1% of samples may miss the
//! target; if 2% actually miss it, burn is 2.0 — the budget is
//! exhausted twice over. Burn ≤ 1.0 means the objective is met.
//!
//! [`Histogram::fraction_le`]: crate::metrics::Histogram::fraction_le

use crate::flight::reconstruct;
use crate::metrics::Registry;
use crate::trace::{TraceEvent, TraceId};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// One named latency objective over a registry histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Objective name (`"publish_to_deliver"`), used in reports and as
    /// the `slo.<name>.*` gauge prefix.
    pub name: String,
    /// Registry histogram the objective is evaluated against.
    pub histogram: String,
    /// Latency bound in nanoseconds.
    pub target_ns: f64,
    /// Required fraction of samples within the bound, in `(0, 1]`
    /// (0.99 = "p99 must be ≤ target").
    pub objective: f64,
}

/// The evaluated state of one [`SloSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    pub name: String,
    pub histogram: String,
    pub target_ns: f64,
    pub objective: f64,
    /// Samples the evaluation was based on (0 = vacuously met).
    pub count: u64,
    /// Observed fraction of samples ≤ target, in `[0, 1]`.
    pub attainment: f64,
    /// `attainment >= objective`.
    pub met: bool,
    /// Error-budget burn: `(1 - attainment) / (1 - objective)`.
    /// 1.0 = budget exactly spent; > 1.0 = objective missed.
    pub burn: f64,
}

/// A rule distilling trace flights into a latency histogram: for every
/// trace that records a `from_kind` hop followed by a `to_kind` hop,
/// observe the elapsed time between them.
#[derive(Debug, Clone)]
struct Harvest {
    histogram: String,
    from_kind: String,
    to_kind: String,
    /// Traces already harvested (the ring re-yields old events).
    seen: BTreeSet<TraceId>,
}

#[derive(Debug, Default)]
struct TrackerInner {
    specs: Vec<SloSpec>,
    harvests: Vec<Harvest>,
}

/// Shared, clonable registry of SLO specs and trace harvests.
#[derive(Debug, Clone, Default)]
pub struct SloTracker {
    inner: Arc<Mutex<TrackerInner>>,
}

impl SloTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an objective. Replaces an existing spec of the same
    /// name, so installers can run idempotently.
    pub fn add_spec(&self, spec: SloSpec) {
        let mut g = self.inner.lock().unwrap();
        g.specs.retain(|s| s.name != spec.name);
        g.specs.push(spec);
        g.specs.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Registers a trace harvest feeding `histogram` with the
    /// `from_kind → to_kind` latency of every traced flight. Idempotent
    /// on the (histogram, from, to) triple.
    pub fn add_harvest(&self, histogram: &str, from_kind: &str, to_kind: &str) {
        let mut g = self.inner.lock().unwrap();
        if g.harvests
            .iter()
            .any(|h| h.histogram == histogram && h.from_kind == from_kind && h.to_kind == to_kind)
        {
            return;
        }
        g.harvests.push(Harvest {
            histogram: histogram.to_string(),
            from_kind: from_kind.to_string(),
            to_kind: to_kind.to_string(),
            seen: BTreeSet::new(),
        });
    }

    /// Registered specs, in name order.
    pub fn specs(&self) -> Vec<SloSpec> {
        self.inner.lock().unwrap().specs.clone()
    }

    /// Runs every harvest over the given trace events, observing
    /// newly-completed flights into their registry histograms. Returns
    /// the number of new samples recorded.
    pub fn harvest(&self, events: &[TraceEvent], registry: &Registry) -> usize {
        let mut g = self.inner.lock().unwrap();
        if g.harvests.is_empty() {
            return 0;
        }
        let paths = reconstruct(events);
        let mut recorded = 0;
        for h in &mut g.harvests {
            for p in &paths {
                if h.seen.contains(&p.trace_id) {
                    continue;
                }
                let from = p.hops.iter().find(|hop| hop.kind == h.from_kind);
                let Some(from) = from else { continue };
                let to = p
                    .hops
                    .iter()
                    .rev()
                    .find(|hop| hop.kind == h.to_kind && hop.time_ns >= from.time_ns);
                let Some(to) = to else { continue };
                registry.observe_ns(&h.histogram, to.time_ns - from.time_ns);
                h.seen.insert(p.trace_id);
                recorded += 1;
            }
        }
        recorded
    }

    /// Evaluates every spec against the registry's current histograms.
    /// Reports come back in name order. A spec whose histogram has no
    /// samples yet is vacuously met with zero burn.
    pub fn evaluate(&self, registry: &Registry) -> Vec<SloReport> {
        let specs = self.specs();
        specs
            .into_iter()
            .map(|s| {
                let count = registry
                    .histogram(&s.histogram)
                    .map(|h| h.count)
                    .unwrap_or(0);
                let attainment = if count == 0 {
                    1.0
                } else {
                    registry
                        .fraction_le(&s.histogram, s.target_ns)
                        .unwrap_or(1.0)
                };
                let met = attainment >= s.objective;
                let budget = 1.0 - s.objective;
                let burn = if budget <= 0.0 {
                    if attainment >= 1.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    (1.0 - attainment) / budget
                };
                SloReport {
                    name: s.name,
                    histogram: s.histogram,
                    target_ns: s.target_ns,
                    objective: s.objective,
                    count,
                    attainment,
                    met,
                    burn,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    fn spec(name: &str, histogram: &str, target_ns: f64, objective: f64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            histogram: histogram.to_string(),
            target_ns,
            objective,
        }
    }

    #[test]
    fn attainment_and_burn_follow_the_histogram() {
        let r = Registry::new();
        // 98 fast samples, 2 slow: attainment at 1 ms is 0.98.
        for _ in 0..98 {
            r.observe_ns("lat", 100_000);
        }
        for _ in 0..2 {
            r.observe_ns("lat", 50_000_000);
        }
        let t = SloTracker::new();
        t.add_spec(spec("fast_enough", "lat", 1_000_000.0, 0.99));
        let reports = t.evaluate(&r);
        assert_eq!(reports.len(), 1);
        let rep = &reports[0];
        assert_eq!(rep.count, 100);
        assert!((rep.attainment - 0.98).abs() < 0.01, "{}", rep.attainment);
        assert!(!rep.met);
        // 2% missed with a 1% budget → burn ≈ 2.
        assert!((rep.burn - 2.0).abs() < 1.0, "burn {}", rep.burn);
    }

    #[test]
    fn met_objective_has_sub_unit_burn() {
        let r = Registry::new();
        for _ in 0..1000 {
            r.observe_ns("lat", 100);
        }
        let t = SloTracker::new();
        t.add_spec(spec("ok", "lat", 1_000_000.0, 0.99));
        let rep = &t.evaluate(&r)[0];
        assert!(rep.met);
        assert_eq!(rep.attainment, 1.0);
        assert_eq!(rep.burn, 0.0);
    }

    #[test]
    fn empty_histogram_is_vacuously_met() {
        let t = SloTracker::new();
        t.add_spec(spec("quiet", "nothing_here", 1.0, 0.999));
        let rep = &t.evaluate(&Registry::new())[0];
        assert_eq!(rep.count, 0);
        assert!(rep.met);
        assert_eq!(rep.burn, 0.0);
    }

    #[test]
    fn add_spec_replaces_by_name_and_sorts() {
        let t = SloTracker::new();
        t.add_spec(spec("b", "h1", 1.0, 0.9));
        t.add_spec(spec("a", "h2", 2.0, 0.9));
        t.add_spec(spec("b", "h3", 3.0, 0.9));
        let specs = t.specs();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name, "a");
        assert_eq!(specs[1].name, "b");
        assert_eq!(specs[1].histogram, "h3");
    }

    #[test]
    fn harvest_measures_from_to_and_dedups() {
        let tracer = Tracer::new();
        let id = tracer.next_trace_id();
        tracer.record(1_000, 1, "broker.publish", id, "");
        tracer.record(4_000, 2, "sub.receive", id, "");
        tracer.record(9_000, 3, "sub.receive", id, ""); // second subscriber
        let r = Registry::new();
        let t = SloTracker::new();
        t.add_harvest("e2e", "broker.publish", "sub.receive");
        assert_eq!(t.harvest(&tracer.events(), &r), 1);
        // Last matching to-hop wins: 9_000 - 1_000.
        let h = r.histogram("e2e").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.max, 8_000.0);
        // Re-harvesting the same ring records nothing new.
        assert_eq!(t.harvest(&tracer.events(), &r), 0);
        assert_eq!(r.histogram("e2e").unwrap().count, 1);
    }

    #[test]
    fn harvest_ignores_incomplete_flights() {
        let tracer = Tracer::new();
        let id = tracer.next_trace_id();
        tracer.record(1_000, 1, "broker.publish", id, "");
        let r = Registry::new();
        let t = SloTracker::new();
        t.add_harvest("e2e", "broker.publish", "sub.receive");
        assert_eq!(t.harvest(&tracer.events(), &r), 0);
        assert!(r.histogram("e2e").is_none());
    }
}
