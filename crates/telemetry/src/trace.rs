//! Sim-time tracing: structured events stamped with a nanosecond
//! timestamp and node identity, recorded into a bounded ring buffer.
//!
//! Events carry a [`TraceId`]: a non-zero `u64` minted by
//! [`Tracer::next_trace_id`] and threaded through packet metadata so a
//! single measurement can be followed across nodes (the flight
//! recorder, [`crate::flight`], reconstructs the path). `trace_id == 0`
//! ([`NO_TRACE`]) marks an event that belongs to no particular flight.
//!
//! When the ring buffer is full the *oldest* event is overwritten and a
//! drop counter incremented, so a long simulation keeps the most recent
//! window of activity in constant memory.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Identifier threaded through packets to correlate events; 0 = none.
pub type TraceId = u64;

/// The null trace id: the event/packet is not part of any flight.
pub const NO_TRACE: TraceId = 0;

/// Identifier of one causal span within a trace; 0 = none.
///
/// A span marks one unit of work (a broker publish, a bridge forward,
/// a subscriber receive). Spans form a tree per trace: each span
/// carries the id of the span that caused it, so
/// [`crate::flight::reconstruct_trees`] can rebuild the true causal
/// structure even when hops of independent branches interleave in time.
pub type SpanId = u64;

/// The null span id: the event has no causal position.
pub const NO_SPAN: SpanId = 0;

/// Default ring capacity; overridable via [`Tracer::set_capacity`].
const DEFAULT_CAPACITY: usize = 65_536;

/// One structured trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulation time in nanoseconds.
    pub time_ns: u64,
    /// Raw node index (`simnet::NodeId::index()`), `u32::MAX` if none.
    pub node: u32,
    /// Human-readable node name, resolved at export time.
    pub node_name: String,
    /// Event kind, dotted (`"broker.deliver"`, `"proxy.ingest"`).
    pub kind: String,
    /// Correlation id; [`NO_TRACE`] if the event is stand-alone.
    pub trace_id: TraceId,
    /// This event's span within the trace; [`NO_SPAN`] if unstructured.
    pub span: SpanId,
    /// The span that caused this one; [`NO_SPAN`] for a root span.
    pub parent_span: SpanId,
    /// Free-form detail (topic, byte counts, …).
    pub detail: String,
}

#[derive(Debug)]
struct TracerInner {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    names: BTreeMap<u32, String>,
    next_trace: TraceId,
    next_span: SpanId,
}

impl Default for TracerInner {
    fn default() -> Self {
        TracerInner {
            ring: VecDeque::new(),
            capacity: DEFAULT_CAPACITY,
            dropped: 0,
            names: BTreeMap::new(),
            next_trace: 1,
            next_span: 1,
        }
    }
}

/// Shared, clonable handle to the bounded trace ring buffer.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Arc<Mutex<TracerInner>>,
}

impl Tracer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Resizes the ring. Shrinking drops the oldest events (counted).
    pub fn set_capacity(&self, capacity: usize) {
        let mut g = self.inner.lock().unwrap();
        g.capacity = capacity.max(1);
        while g.ring.len() > g.capacity {
            g.ring.pop_front();
            g.dropped += 1;
        }
    }

    /// Associates a node index with a display name used in exports.
    pub fn register_node(&self, node: u32, name: &str) {
        let mut g = self.inner.lock().unwrap();
        g.names.insert(node, name.to_string());
    }

    /// Mints a fresh non-zero trace id (sequential, deterministic).
    pub fn next_trace_id(&self) -> TraceId {
        let mut g = self.inner.lock().unwrap();
        let id = g.next_trace;
        g.next_trace += 1;
        id
    }

    /// Mints a fresh non-zero span id (sequential, deterministic; the
    /// counter is shared across traces).
    pub fn next_span_id(&self) -> SpanId {
        let mut g = self.inner.lock().unwrap();
        let id = g.next_span;
        g.next_span += 1;
        id
    }

    /// Records one unstructured event (no causal span); O(1),
    /// overwrites the oldest when full.
    pub fn record(
        &self,
        time_ns: u64,
        node: u32,
        kind: &str,
        trace_id: TraceId,
        detail: impl Into<String>,
    ) {
        self.record_span(time_ns, node, kind, trace_id, NO_SPAN, NO_SPAN, detail);
    }

    /// Records one event with its causal position: `span` is this
    /// event's own span id, `parent_span` the span that caused it
    /// ([`NO_SPAN`] for a root). O(1), overwrites the oldest when full.
    #[allow(clippy::too_many_arguments)]
    pub fn record_span(
        &self,
        time_ns: u64,
        node: u32,
        kind: &str,
        trace_id: TraceId,
        span: SpanId,
        parent_span: SpanId,
        detail: impl Into<String>,
    ) {
        let mut g = self.inner.lock().unwrap();
        let node_name = g.names.get(&node).cloned().unwrap_or_default();
        if g.ring.len() >= g.capacity {
            g.ring.pop_front();
            g.dropped += 1;
        }
        g.ring.push_back(TraceEvent {
            time_ns,
            node,
            node_name,
            kind: kind.to_string(),
            trace_id,
            span,
            parent_span,
            detail: detail.into(),
        });
    }

    /// Number of events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().unwrap().ring.iter().cloned().collect()
    }

    /// Retained events belonging to one trace, oldest first.
    pub fn events_for(&self, trace_id: TraceId) -> Vec<TraceEvent> {
        self.inner
            .lock()
            .unwrap()
            .ring
            .iter()
            .filter(|e| e.trace_id == trace_id)
            .cloned()
            .collect()
    }

    /// Exports the retained events as JSON lines (one object per line).
    pub fn to_json_lines(&self) -> String {
        let g = self.inner.lock().unwrap();
        let mut out = String::new();
        for e in &g.ring {
            out.push_str(&format!(
                "{{\"t_ns\":{},\"node\":{},\"name\":\"{}\",\"kind\":\"{}\",\"trace\":{},\"span\":{},\"parent\":{},\"detail\":\"{}\"}}\n",
                e.time_ns,
                e.node,
                escape(&e.node_name),
                escape(&e.kind),
                e.trace_id,
                e.span,
                e.parent_span,
                escape(&e.detail),
            ));
        }
        out
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_back() {
        let t = Tracer::new();
        t.register_node(3, "broker");
        t.record(10, 3, "broker.publish", 7, "topic=a/b");
        let evs = t.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].node_name, "broker");
        assert_eq!(evs[0].trace_id, 7);
        assert_eq!(t.events_for(7).len(), 1);
        assert!(t.events_for(8).is_empty());
    }

    #[test]
    fn overflow_keeps_newest_and_counts_drops() {
        let t = Tracer::new();
        t.set_capacity(4);
        for i in 0..10u64 {
            t.record(i, 0, "e", NO_TRACE, "");
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        let times: Vec<u64> = t.events().iter().map(|e| e.time_ns).collect();
        assert_eq!(times, vec![6, 7, 8, 9]);
    }

    #[test]
    fn trace_ids_are_sequential() {
        let t = Tracer::new();
        assert_eq!(t.next_trace_id(), 1);
        assert_eq!(t.next_trace_id(), 2);
    }

    #[test]
    fn span_ids_are_sequential_and_independent_of_traces() {
        let t = Tracer::new();
        assert_eq!(t.next_span_id(), 1);
        assert_eq!(t.next_trace_id(), 1);
        assert_eq!(t.next_span_id(), 2);
    }

    #[test]
    fn record_span_carries_causality() {
        let t = Tracer::new();
        t.record_span(5, 1, "broker.publish", 9, 3, 0, "");
        t.record_span(6, 1, "broker.deliver", 9, 4, 3, "");
        t.record(7, 1, "flat", 9, "");
        let evs = t.events();
        assert_eq!((evs[0].span, evs[0].parent_span), (3, NO_SPAN));
        assert_eq!((evs[1].span, evs[1].parent_span), (4, 3));
        assert_eq!((evs[2].span, evs[2].parent_span), (NO_SPAN, NO_SPAN));
        let json = t.to_json_lines();
        assert!(json.contains("\"span\":4,\"parent\":3"));
    }

    #[test]
    fn json_lines_escapes() {
        let t = Tracer::new();
        t.record(1, 0, "k\"ind", 2, "a\\b\nc");
        let json = t.to_json_lines();
        assert!(json.contains("\\\"ind"));
        assert!(json.contains("a\\\\b\\nc"));
        assert_eq!(json.lines().count(), 1);
    }
}
