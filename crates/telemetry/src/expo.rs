//! Prometheus-style text exposition of a [`MetricsSnapshot`].
//!
//! [`exposition`] renders the snapshot in the Prometheus text format
//! (version 0.0.4): counters and gauges as single samples, histograms
//! as summaries (quantile-labelled samples plus `_count` and `_sum`).
//! Metric names are sanitised — every character outside
//! `[a-zA-Z0-9_:]` becomes `_`, so the workspace's dotted names
//! (`pubsub.publish`) expose as `pubsub_publish`.
//!
//! Output order is the snapshot order, which [`Registry::snapshot`]
//! guarantees is metric-name order — scrapes are byte-stable across
//! runs of a deterministic simulation, so tests can assert on them and
//! scrape diffs stay readable.
//!
//! [`Registry::snapshot`]: crate::metrics::Registry::snapshot

use crate::metrics::MetricsSnapshot;
use std::fmt::Write as _;

/// Sanitises a dotted metric name into the Prometheus grammar.
pub fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Formats a sample value the way Prometheus expects (no exponent for
/// integral values, full precision otherwise).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders the snapshot as Prometheus exposition text.
pub fn exposition(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", fmt_value(*value));
    }
    for (name, h) in &snapshot.histograms {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} summary");
        for (q, v) in [
            ("0.5", h.p50),
            ("0.9", h.p90),
            ("0.99", h.p99),
            ("0.999", h.p999),
        ] {
            let _ = writeln!(out, "{n}{{quantile=\"{q}\"}} {}", fmt_value(v));
        }
        let _ = writeln!(out, "{n}_count {}", h.count);
        let _ = writeln!(out, "{n}_sum {}", fmt_value(h.sum));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(sanitize("pubsub.publish.b0"), "pubsub_publish_b0");
        assert_eq!(sanitize("net/wire-bytes"), "net_wire_bytes");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("already_fine:ok"), "already_fine:ok");
    }

    #[test]
    fn exposition_renders_all_three_kinds() {
        let r = Registry::new();
        r.add("pubsub.publish", 7);
        r.set_gauge("streams.open_windows", 3.0);
        for v in 1..=100 {
            r.observe_ns("net.link_delay_ns", v * 1000);
        }
        let text = exposition(&r.snapshot());
        assert!(text.contains("# TYPE pubsub_publish counter\npubsub_publish 7\n"));
        assert!(text.contains("# TYPE streams_open_windows gauge\nstreams_open_windows 3\n"));
        assert!(text.contains("# TYPE net_link_delay_ns summary"));
        assert!(text.contains("net_link_delay_ns{quantile=\"0.99\"}"));
        assert!(text.contains("net_link_delay_ns_count 100"));
        assert!(text.contains("net_link_delay_ns_sum"));
    }

    #[test]
    fn exposition_is_name_sorted_and_deterministic() {
        let r = Registry::new();
        // Inserted out of order on purpose.
        r.incr("zebra.count");
        r.incr("alpha.count");
        r.incr("middle.count");
        let text = exposition(&r.snapshot());
        let alpha = text.find("alpha_count").unwrap();
        let middle = text.find("middle_count").unwrap();
        let zebra = text.find("zebra_count").unwrap();
        assert!(alpha < middle && middle < zebra, "sorted by name");
        assert_eq!(text, exposition(&r.snapshot()), "byte-stable");
    }

    #[test]
    fn value_formatting() {
        assert_eq!(fmt_value(3.0), "3");
        assert_eq!(fmt_value(2.5), "2.5");
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "-Inf");
    }
}
