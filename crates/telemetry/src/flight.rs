//! The flight recorder: reconstructs the end-to-end path of each traced
//! measurement from the trace ring buffer.
//!
//! Every hop of a traced measurement records a [`TraceEvent`] carrying
//! the same [`TraceId`] (device sample → proxy ingest → broker publish →
//! broker deliver → subscriber receive). [`reconstruct`] groups events
//! by trace id and computes per-hop latencies, giving a breakdown like:
//!
//! ```text
//! trace 42 (total 23.1 ms)
//!   +0.0 ms  device.sample    dev-z0          seq=18
//!   +8.2 ms  proxy.ingest     devproxy-0      points=1
//!   +8.3 ms  broker.publish   broker          topic=district/poli/...
//!   +8.3 ms  broker.deliver   broker          to=sub-1
//!   +23.1 ms sub.receive      sub-1           bytes=113
//! ```

use crate::trace::{SpanId, TraceEvent, TraceId, NO_SPAN, NO_TRACE};
use std::collections::BTreeMap;
use std::fmt;

/// One hop of a reconstructed flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Hop {
    pub kind: String,
    pub node: u32,
    pub node_name: String,
    pub time_ns: u64,
    /// Latency since the previous hop (0 for the first).
    pub latency_ns: u64,
    /// Causal span of this hop; [`NO_SPAN`] for unstructured events.
    pub span: SpanId,
    /// The span that caused this hop; [`NO_SPAN`] for a root.
    pub parent_span: SpanId,
    pub detail: String,
}

/// The full path of one traced measurement, hops in time order.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightPath {
    pub trace_id: TraceId,
    pub hops: Vec<Hop>,
    /// Time from the first to the last hop.
    pub total_ns: u64,
}

impl FlightPath {
    /// `true` if the path visits every one of the given event kinds, in
    /// order (other hops may be interleaved).
    pub fn visits(&self, kinds: &[&str]) -> bool {
        let mut want = kinds.iter();
        let mut next = want.next();
        for hop in &self.hops {
            if let Some(k) = next {
                if hop.kind == *k {
                    next = want.next();
                }
            }
        }
        next.is_none()
    }
}

impl fmt::Display for FlightPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace {} ({} hops, total {:.3} ms)",
            self.trace_id,
            self.hops.len(),
            self.total_ns as f64 / 1e6
        )?;
        let t0 = self.hops.first().map(|h| h.time_ns).unwrap_or(0);
        for hop in &self.hops {
            let name = if hop.node_name.is_empty() {
                format!("node{}", hop.node)
            } else {
                hop.node_name.clone()
            };
            writeln!(
                f,
                "  +{:>9.3} ms  {:<16} {:<18} {}",
                (hop.time_ns - t0) as f64 / 1e6,
                hop.kind,
                name,
                hop.detail
            )?;
        }
        Ok(())
    }
}

/// Groups events by trace id and computes per-hop latencies.
///
/// Events with [`NO_TRACE`] are ignored. Within a trace, events keep
/// their ring-buffer order (the recorder appends in simulation order,
/// so equal timestamps preserve causal order). Paths are returned in
/// ascending trace-id order.
pub fn reconstruct(events: &[TraceEvent]) -> Vec<FlightPath> {
    let mut by_trace: BTreeMap<TraceId, Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        if e.trace_id != NO_TRACE {
            by_trace.entry(e.trace_id).or_default().push(e);
        }
    }
    by_trace
        .into_iter()
        .map(|(trace_id, evs)| {
            let mut hops = Vec::with_capacity(evs.len());
            let mut prev: Option<u64> = None;
            for e in &evs {
                hops.push(Hop {
                    kind: e.kind.clone(),
                    node: e.node,
                    node_name: e.node_name.clone(),
                    time_ns: e.time_ns,
                    latency_ns: prev.map(|p| e.time_ns.saturating_sub(p)).unwrap_or(0),
                    span: e.span,
                    parent_span: e.parent_span,
                    detail: e.detail.clone(),
                });
                prev = Some(e.time_ns);
            }
            let total_ns = match (evs.first(), evs.last()) {
                (Some(a), Some(b)) => b.time_ns.saturating_sub(a.time_ns),
                _ => 0,
            };
            FlightPath {
                trace_id,
                hops,
                total_ns,
            }
        })
        .collect()
}

/// One node of a causal span tree: a hop plus the hops it caused.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    pub hop: Hop,
    /// Child spans, in ring (i.e. simulation) order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Depth-first walk over this subtree (self first).
    fn walk<'a>(&'a self, out: &mut Vec<&'a SpanNode>) {
        out.push(self);
        for c in &self.children {
            c.walk(out);
        }
    }
}

/// The causal structure of one trace: a forest of [`SpanNode`]s.
///
/// Unlike [`FlightPath`] — a flat time-ordered list — a span tree keeps
/// *who caused what*: a publish fanning out to three subscribers is one
/// publish span with three deliver children, and a cross-shard publish
/// shows the bridge hop as an interior node between the two brokers'
/// spans.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanTree {
    pub trace_id: TraceId,
    /// Root spans (parent unknown or [`NO_SPAN`]), in ring order.
    pub roots: Vec<SpanNode>,
    /// Time from the earliest to the latest span in the tree.
    pub total_ns: u64,
}

impl SpanTree {
    /// All nodes of the tree, depth-first from each root.
    pub fn nodes(&self) -> Vec<&SpanNode> {
        let mut out = Vec::new();
        for r in &self.roots {
            r.walk(&mut out);
        }
        out
    }

    /// `true` if some root-to-descendant chain visits every one of the
    /// given event kinds in order (intermediate spans may interleave).
    pub fn chain(&self, kinds: &[&str]) -> bool {
        fn descend(node: &SpanNode, kinds: &[&str]) -> bool {
            let rest = if kinds.first() == Some(&node.hop.kind.as_str()) {
                &kinds[1..]
            } else {
                kinds
            };
            rest.is_empty() || node.children.iter().any(|c| descend(c, rest))
        }
        kinds.is_empty() || self.roots.iter().any(|r| descend(r, kinds))
    }

    /// The depth of the tree (longest root-to-leaf chain, in spans).
    pub fn depth(&self) -> usize {
        fn d(n: &SpanNode) -> usize {
            1 + n.children.iter().map(d).max().unwrap_or(0)
        }
        self.roots.iter().map(d).max().unwrap_or(0)
    }
}

impl fmt::Display for SpanTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace {} (spans {}, total {:.3} ms)",
            self.trace_id,
            self.nodes().len(),
            self.total_ns as f64 / 1e6
        )?;
        fn node(f: &mut fmt::Formatter<'_>, n: &SpanNode, t0: u64, depth: usize) -> fmt::Result {
            let name = if n.hop.node_name.is_empty() {
                format!("node{}", n.hop.node)
            } else {
                n.hop.node_name.clone()
            };
            writeln!(
                f,
                "  +{:>9.3} ms  {:indent$}{:<16} {:<18} {}",
                (n.hop.time_ns - t0) as f64 / 1e6,
                "",
                n.hop.kind,
                name,
                n.hop.detail,
                indent = depth * 2,
            )?;
            for c in &n.children {
                node(f, c, t0, depth + 1)?;
            }
            Ok(())
        }
        let t0 = self
            .nodes()
            .iter()
            .map(|n| n.hop.time_ns)
            .min()
            .unwrap_or(0);
        for r in &self.roots {
            node(f, r, t0, 0)?;
        }
        Ok(())
    }
}

/// Groups span-carrying events by trace id and rebuilds each trace's
/// causal tree from the parent-span links.
///
/// Events with [`NO_TRACE`] or [`NO_SPAN`] are excluded — only hops
/// that declared a causal position participate. A span whose parent is
/// missing from the ring (evicted, or never recorded) becomes a root,
/// so a truncated ring still yields a usable forest. Trees are
/// returned in ascending trace-id order; siblings keep ring order.
pub fn reconstruct_trees(events: &[TraceEvent]) -> Vec<SpanTree> {
    let mut by_trace: BTreeMap<TraceId, Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        if e.trace_id != NO_TRACE && e.span != NO_SPAN {
            by_trace.entry(e.trace_id).or_default().push(e);
        }
    }
    by_trace
        .into_iter()
        .map(|(trace_id, evs)| {
            let present: std::collections::BTreeSet<SpanId> = evs.iter().map(|e| e.span).collect();
            // parent span id → child events, ring order preserved.
            let mut children: BTreeMap<SpanId, Vec<&TraceEvent>> = BTreeMap::new();
            let mut roots: Vec<&TraceEvent> = Vec::new();
            for e in &evs {
                if e.parent_span != NO_SPAN && present.contains(&e.parent_span) {
                    children.entry(e.parent_span).or_default().push(e);
                } else {
                    roots.push(e);
                }
            }
            fn build(
                e: &TraceEvent,
                parent_time: Option<u64>,
                children: &BTreeMap<SpanId, Vec<&TraceEvent>>,
            ) -> SpanNode {
                SpanNode {
                    hop: Hop {
                        kind: e.kind.clone(),
                        node: e.node,
                        node_name: e.node_name.clone(),
                        time_ns: e.time_ns,
                        latency_ns: parent_time
                            .map(|p| e.time_ns.saturating_sub(p))
                            .unwrap_or(0),
                        span: e.span,
                        parent_span: e.parent_span,
                        detail: e.detail.clone(),
                    },
                    children: children
                        .get(&e.span)
                        .map(|cs| {
                            cs.iter()
                                .map(|c| build(c, Some(e.time_ns), children))
                                .collect()
                        })
                        .unwrap_or_default(),
                }
            }
            let roots: Vec<SpanNode> = roots.iter().map(|e| build(e, None, &children)).collect();
            let (lo, hi) = evs.iter().fold((u64::MAX, 0), |(lo, hi), e| {
                (lo.min(e.time_ns), hi.max(e.time_ns))
            });
            SpanTree {
                trace_id,
                roots,
                total_ns: hi.saturating_sub(lo.min(hi)),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    fn ev(t: u64, node: u32, kind: &str, id: TraceId) -> TraceEvent {
        TraceEvent {
            time_ns: t,
            node,
            node_name: format!("n{node}"),
            kind: kind.to_string(),
            trace_id: id,
            span: NO_SPAN,
            parent_span: NO_SPAN,
            detail: String::new(),
        }
    }

    fn sev(t: u64, kind: &str, id: TraceId, span: SpanId, parent: SpanId) -> TraceEvent {
        TraceEvent {
            span,
            parent_span: parent,
            ..ev(t, 1, kind, id)
        }
    }

    #[test]
    fn reconstructs_per_hop_latencies() {
        let events = vec![
            ev(0, 1, "device.sample", 9),
            ev(5_000_000, 2, "proxy.ingest", 9),
            ev(7_000_000, 3, "broker.publish", 9),
            ev(12_000_000, 4, "sub.receive", 9),
            ev(1, 1, "noise", NO_TRACE),
        ];
        let paths = reconstruct(&events);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.trace_id, 9);
        assert_eq!(p.total_ns, 12_000_000);
        let lat: Vec<u64> = p.hops.iter().map(|h| h.latency_ns).collect();
        assert_eq!(lat, vec![0, 5_000_000, 2_000_000, 5_000_000]);
        assert!(p.visits(&["device.sample", "broker.publish", "sub.receive"]));
        assert!(!p.visits(&["sub.receive", "device.sample"]));
    }

    #[test]
    fn separates_traces() {
        let events = vec![ev(0, 1, "a", 1), ev(1, 1, "a", 2), ev(2, 2, "b", 1)];
        let paths = reconstruct(&events);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].hops.len(), 2);
        assert_eq!(paths[1].hops.len(), 1);
    }

    #[test]
    fn span_trees_rebuild_causal_structure() {
        // publish(1) → deliver(2), deliver(3); deliver(3) → receive(4).
        let events = vec![
            sev(0, "broker.publish", 7, 1, 0),
            sev(10, "broker.deliver", 7, 2, 1),
            sev(20, "broker.deliver", 7, 3, 1),
            sev(30, "sub.receive", 7, 4, 3),
            // A flat (span-less) event must not enter the tree.
            ev(5, 1, "net.deliver", 7),
        ];
        let trees = reconstruct_trees(&events);
        assert_eq!(trees.len(), 1);
        let t = &trees[0];
        assert_eq!(t.roots.len(), 1);
        assert_eq!(t.roots[0].hop.kind, "broker.publish");
        assert_eq!(t.roots[0].children.len(), 2);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.total_ns, 30);
        assert!(t.chain(&["broker.publish", "broker.deliver", "sub.receive"]));
        assert!(!t.chain(&["sub.receive", "broker.publish"]));
        // The second deliver is a leaf; the first carries the receive.
        let receive = t
            .nodes()
            .into_iter()
            .find(|n| n.hop.kind == "sub.receive")
            .unwrap();
        assert_eq!(receive.hop.parent_span, 3);
        assert_eq!(receive.hop.latency_ns, 10, "latency vs causal parent");
    }

    #[test]
    fn orphan_spans_become_roots() {
        // Parent span 9 was evicted from the ring: its child still shows.
        let events = vec![sev(0, "a", 1, 3, 9), sev(5, "b", 1, 4, 3)];
        let trees = reconstruct_trees(&events);
        assert_eq!(trees[0].roots.len(), 1);
        assert_eq!(trees[0].roots[0].hop.kind, "a");
        assert_eq!(trees[0].roots[0].children[0].hop.kind, "b");
        // Display renders without panicking and shows the indent.
        let text = trees[0].to_string();
        assert!(text.contains("a"));
    }

    #[test]
    fn works_from_tracer_events() {
        let t = Tracer::new();
        let id = t.next_trace_id();
        t.register_node(1, "dev");
        t.record(10, 1, "device.sample", id, "");
        t.record(20, 2, "proxy.ingest", id, "");
        let paths = reconstruct(&t.events());
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].hops[0].node_name, "dev");
        assert_eq!(paths[0].hops[1].latency_ns, 10);
    }
}
