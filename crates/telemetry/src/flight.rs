//! The flight recorder: reconstructs the end-to-end path of each traced
//! measurement from the trace ring buffer.
//!
//! Every hop of a traced measurement records a [`TraceEvent`] carrying
//! the same [`TraceId`] (device sample → proxy ingest → broker publish →
//! broker deliver → subscriber receive). [`reconstruct`] groups events
//! by trace id and computes per-hop latencies, giving a breakdown like:
//!
//! ```text
//! trace 42 (total 23.1 ms)
//!   +0.0 ms  device.sample    dev-z0          seq=18
//!   +8.2 ms  proxy.ingest     devproxy-0      points=1
//!   +8.3 ms  broker.publish   broker          topic=district/poli/...
//!   +8.3 ms  broker.deliver   broker          to=sub-1
//!   +23.1 ms sub.receive      sub-1           bytes=113
//! ```

use crate::trace::{TraceEvent, TraceId, NO_TRACE};
use std::collections::BTreeMap;
use std::fmt;

/// One hop of a reconstructed flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Hop {
    pub kind: String,
    pub node: u32,
    pub node_name: String,
    pub time_ns: u64,
    /// Latency since the previous hop (0 for the first).
    pub latency_ns: u64,
    pub detail: String,
}

/// The full path of one traced measurement, hops in time order.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightPath {
    pub trace_id: TraceId,
    pub hops: Vec<Hop>,
    /// Time from the first to the last hop.
    pub total_ns: u64,
}

impl FlightPath {
    /// `true` if the path visits every one of the given event kinds, in
    /// order (other hops may be interleaved).
    pub fn visits(&self, kinds: &[&str]) -> bool {
        let mut want = kinds.iter();
        let mut next = want.next();
        for hop in &self.hops {
            if let Some(k) = next {
                if hop.kind == *k {
                    next = want.next();
                }
            }
        }
        next.is_none()
    }
}

impl fmt::Display for FlightPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace {} ({} hops, total {:.3} ms)",
            self.trace_id,
            self.hops.len(),
            self.total_ns as f64 / 1e6
        )?;
        let t0 = self.hops.first().map(|h| h.time_ns).unwrap_or(0);
        for hop in &self.hops {
            let name = if hop.node_name.is_empty() {
                format!("node{}", hop.node)
            } else {
                hop.node_name.clone()
            };
            writeln!(
                f,
                "  +{:>9.3} ms  {:<16} {:<18} {}",
                (hop.time_ns - t0) as f64 / 1e6,
                hop.kind,
                name,
                hop.detail
            )?;
        }
        Ok(())
    }
}

/// Groups events by trace id and computes per-hop latencies.
///
/// Events with [`NO_TRACE`] are ignored. Within a trace, events keep
/// their ring-buffer order (the recorder appends in simulation order,
/// so equal timestamps preserve causal order). Paths are returned in
/// ascending trace-id order.
pub fn reconstruct(events: &[TraceEvent]) -> Vec<FlightPath> {
    let mut by_trace: BTreeMap<TraceId, Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        if e.trace_id != NO_TRACE {
            by_trace.entry(e.trace_id).or_default().push(e);
        }
    }
    by_trace
        .into_iter()
        .map(|(trace_id, evs)| {
            let mut hops = Vec::with_capacity(evs.len());
            let mut prev: Option<u64> = None;
            for e in &evs {
                hops.push(Hop {
                    kind: e.kind.clone(),
                    node: e.node,
                    node_name: e.node_name.clone(),
                    time_ns: e.time_ns,
                    latency_ns: prev.map(|p| e.time_ns.saturating_sub(p)).unwrap_or(0),
                    detail: e.detail.clone(),
                });
                prev = Some(e.time_ns);
            }
            let total_ns = match (evs.first(), evs.last()) {
                (Some(a), Some(b)) => b.time_ns.saturating_sub(a.time_ns),
                _ => 0,
            };
            FlightPath {
                trace_id,
                hops,
                total_ns,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    fn ev(t: u64, node: u32, kind: &str, id: TraceId) -> TraceEvent {
        TraceEvent {
            time_ns: t,
            node,
            node_name: format!("n{node}"),
            kind: kind.to_string(),
            trace_id: id,
            detail: String::new(),
        }
    }

    #[test]
    fn reconstructs_per_hop_latencies() {
        let events = vec![
            ev(0, 1, "device.sample", 9),
            ev(5_000_000, 2, "proxy.ingest", 9),
            ev(7_000_000, 3, "broker.publish", 9),
            ev(12_000_000, 4, "sub.receive", 9),
            ev(1, 1, "noise", NO_TRACE),
        ];
        let paths = reconstruct(&events);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.trace_id, 9);
        assert_eq!(p.total_ns, 12_000_000);
        let lat: Vec<u64> = p.hops.iter().map(|h| h.latency_ns).collect();
        assert_eq!(lat, vec![0, 5_000_000, 2_000_000, 5_000_000]);
        assert!(p.visits(&["device.sample", "broker.publish", "sub.receive"]));
        assert!(!p.visits(&["sub.receive", "device.sample"]));
    }

    #[test]
    fn separates_traces() {
        let events = vec![ev(0, 1, "a", 1), ev(1, 1, "a", 2), ev(2, 2, "b", 1)];
        let paths = reconstruct(&events);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].hops.len(), 2);
        assert_eq!(paths[1].hops.len(), 1);
    }

    #[test]
    fn works_from_tracer_events() {
        let t = Tracer::new();
        let id = t.next_trace_id();
        t.register_node(1, "dev");
        t.record(10, 1, "device.sample", id, "");
        t.record(20, 2, "proxy.ingest", id, "");
        let paths = reconstruct(&t.events());
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].hops[0].node_name, "dev");
        assert_eq!(paths[0].hops[1].latency_ns, 10);
    }
}
