//! Metrics registry: counters, gauges, and log-bucketed bounded
//! histograms.
//!
//! The histogram replaces the store-everything `simnet::stats::Summary`
//! on hot paths: it keeps a fixed array of geometric buckets (16
//! sub-buckets per power of two), so memory is constant regardless of
//! how many values are recorded, and quantiles are answered with a
//! bounded relative error of at most `1/16 ≈ 6.25%` of the value.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Sub-buckets per power of two; relative quantile error is `1/SUB`.
const SUB_BUCKETS: usize = 16;
/// Powers of two covered: values in `[1, 2^48)` land in a geometric
/// bucket. At nanosecond resolution 2^48 ns ≈ 3.3 days, far beyond any
/// simulated latency; larger values clamp into the last bucket.
const OCTAVES: usize = 48;
/// One underflow bucket for `v < 1` plus the geometric range.
const BUCKETS: usize = 1 + OCTAVES * SUB_BUCKETS;

/// A bounded, log-bucketed histogram of non-negative `f64` samples.
///
/// Memory is fixed (`BUCKETS` u64 slots plus exact count/sum/min/max);
/// recording is O(1); quantile queries are a linear scan over the
/// bucket array. Negative samples are clamped into the underflow
/// bucket (min still records the exact value).
#[derive(Clone)]
pub struct Histogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

/// Bucket index for a sample. `[0,1)` (and negatives) → bucket 0;
/// `[2^k · (1 + s/SUB), …)` → `1 + k·SUB + s`, clamped to the top.
fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v < 1.0 {
        return 0; // underflow, negatives, NaN
    }
    let octave = v.log2().floor() as i64;
    if octave >= OCTAVES as i64 {
        return BUCKETS - 1;
    }
    let base = (octave as f64).exp2();
    // Position within the octave, 0..SUB_BUCKETS.
    let sub = ((v / base - 1.0) * SUB_BUCKETS as f64) as usize;
    let sub = sub.min(SUB_BUCKETS - 1);
    1 + octave as usize * SUB_BUCKETS + sub
}

/// Representative value for a bucket: the geometric midpoint of its
/// bounds, which halves the worst-case relative error.
fn bucket_value(idx: usize) -> f64 {
    if idx == 0 {
        return 0.5;
    }
    let idx = idx - 1;
    let octave = (idx / SUB_BUCKETS) as f64;
    let sub = (idx % SUB_BUCKETS) as f64;
    let lo = octave.exp2() * (1.0 + sub / SUB_BUCKETS as f64);
    let hi = octave.exp2() * (1.0 + (sub + 1.0) / SUB_BUCKETS as f64);
    (lo * hi).sqrt()
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample in O(1).
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The value at quantile `q` in `[0, 1]`, with relative error
    /// bounded by the bucket width (≈6.25%). Exact `min`/`max` clamp
    /// the estimate so q=0 / q=1 are exact.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        // Rank of the target sample, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_value(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fraction of recorded samples `<= v`, in `[0, 1]`; the CDF at
    /// `v`, with the same bucket-width error bound as [`quantile`].
    /// Exact `min`/`max` pin the endpoints: anything below `min` is
    /// 0.0, anything at or above `max` is 1.0. Empty histograms report
    /// 1.0 (no sample violates any bound).
    ///
    /// [`quantile`]: Histogram::quantile
    pub fn fraction_le(&self, v: f64) -> f64 {
        if self.count == 0 || v >= self.max {
            return 1.0;
        }
        if v < self.min {
            return 0.0;
        }
        let cut = bucket_index(v);
        let below: u64 = self.buckets[..=cut].iter().sum();
        (below as f64 / self.count as f64).clamp(0.0, 1.0)
    }

    /// Fixed quantile snapshot used by reports.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }
}

/// A point-in-time summary of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    pub p999: f64,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A shared, clonable registry of named metrics.
///
/// All methods take `&self`; state lives behind a mutex so the handle
/// can be cloned into every node of a simulation. Names are free-form
/// dotted strings (`"pubsub.fanout"`). The maps are `BTreeMap`s so
/// snapshots iterate in a stable, deterministic order.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1 to a counter, creating it at zero if absent.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to a counter.
    pub fn add(&self, name: &str, n: u64) {
        let mut g = self.inner.lock().unwrap();
        *g.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Current counter value (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Sets a gauge to an absolute value.
    pub fn set_gauge(&self, name: &str, v: f64) {
        let mut g = self.inner.lock().unwrap();
        g.gauges.insert(name.to_string(), v);
    }

    /// Current gauge value (0.0 if never set).
    pub fn gauge(&self, name: &str) -> f64 {
        self.inner
            .lock()
            .unwrap()
            .gauges
            .get(name)
            .copied()
            .unwrap_or(0.0)
    }

    /// Records a sample into a named histogram.
    pub fn observe(&self, name: &str, v: f64) {
        let mut g = self.inner.lock().unwrap();
        g.histograms.entry(name.to_string()).or_default().record(v);
    }

    /// Convenience for duration observations in nanoseconds.
    pub fn observe_ns(&self, name: &str, ns: u64) {
        self.observe(name, ns as f64);
    }

    /// Snapshot of one histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.inner
            .lock()
            .unwrap()
            .histograms
            .get(name)
            .map(Histogram::snapshot)
    }

    /// Fraction of one histogram's samples `<= v` (the CDF at `v`), if
    /// the histogram exists. See [`Histogram::fraction_le`].
    pub fn fraction_le(&self, name: &str, v: f64) -> Option<f64> {
        self.inner
            .lock()
            .unwrap()
            .histograms
            .get(name)
            .map(|h| h.fraction_le(v))
    }

    /// A stable-ordered snapshot of everything in the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: g.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: g.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: g
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// Everything in a [`Registry`] at one instant, in name order.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_value_quantiles() {
        let mut h = Histogram::new();
        h.record(100.0);
        // min/max clamp makes every quantile exact for a single value.
        assert_eq!(h.quantile(0.0), 100.0);
        assert_eq!(h.quantile(0.5), 100.0);
        assert_eq!(h.quantile(1.0), 100.0);
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i as f64);
        }
        for (q, exact) in [(0.5, 5000.0), (0.9, 9000.0), (0.99, 9900.0)] {
            let est = h.quantile(q);
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.07, "q={q}: est {est} vs {exact} (rel {rel})");
        }
    }

    #[test]
    fn underflow_and_clamp() {
        let mut h = Histogram::new();
        h.record(-5.0);
        h.record(0.25);
        h.record(1e30); // beyond the geometric range
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), -5.0);
        assert_eq!(h.max(), 1e30);
        // The huge value clamps into the top bucket but max is exact.
        assert_eq!(h.quantile(1.0), 1e30);
    }

    #[test]
    fn bucket_index_monotone() {
        let mut last = 0;
        let mut v = 0.5;
        while v < 1e12 {
            let idx = bucket_index(v);
            assert!(idx >= last, "index not monotone at {v}");
            last = idx;
            v *= 1.03;
        }
    }

    #[test]
    fn registry_counters_and_gauges() {
        let r = Registry::new();
        r.incr("a");
        r.add("a", 4);
        r.set_gauge("g", 2.5);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("g"), 2.5);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("a".to_string(), 5)]);
    }

    #[test]
    fn fraction_le_tracks_the_cdf() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i as f64);
        }
        assert_eq!(h.fraction_le(0.5), 0.0, "below exact min");
        assert_eq!(h.fraction_le(1000.0), 1.0, "at exact max");
        assert_eq!(h.fraction_le(5000.0), 1.0, "beyond max");
        let mid = h.fraction_le(500.0);
        assert!((mid - 0.5).abs() < 0.07, "cdf(500) ≈ 0.5, got {mid}");
        let p99 = h.fraction_le(990.0);
        assert!((p99 - 0.99).abs() < 0.07, "cdf(990) ≈ 0.99, got {p99}");
        // Empty histogram: vacuously attained.
        assert_eq!(Histogram::new().fraction_le(1.0), 1.0);
    }

    #[test]
    fn registry_histograms() {
        let r = Registry::new();
        for i in 0..100 {
            r.observe("h", i as f64);
        }
        let s = r.histogram("h").unwrap();
        assert_eq!(s.count, 100);
        assert!(s.p50 > 30.0 && s.p50 < 70.0);
        assert!(r.histogram("missing").is_none());
    }
}
