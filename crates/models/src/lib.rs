//! # dimmer-models — building, network and consumption models
//!
//! The district's *information models*, as exported to per-source
//! databases:
//!
//! * [`bim`] — Building Information Models: storeys, spaces, envelope
//!   elements and equipment, with export to/import from the relational
//!   tables a BIM Database-proxy fronts;
//! * [`simmodel`] — System Information Models: distribution-network
//!   graphs (electrical feeders, district-heating loops) with export
//!   to/import from fixed-width legacy records;
//! * [`profiles`] — deterministic synthetic energy-consumption profiles
//!   that drive the simulated devices (substituting the paper's real
//!   district sensor data).
//!
//! ## Example
//!
//! ```
//! use models::bim::BuildingModel;
//! use dimmer_core::BuildingId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bim = BuildingModel::sample(&BuildingId::new("b1")?, 3, 4);
//! assert_eq!(bim.storeys().len(), 3);
//! let tables = bim.to_tables();
//! let back = BuildingModel::from_tables(&tables)?;
//! assert_eq!(back, bim);
//! # Ok(())
//! # }
//! ```

pub mod bim;
pub mod profiles;
pub mod simmodel;
