//! Building Information Models.
//!
//! A [`BuildingModel`] is the structured content of one building's BIM
//! export: storeys containing spaces, the thermal envelope, and energy
//! equipment. Exports land in three relational tables (`spaces`,
//! `envelope`, `equipment`) — the representation the per-building BIM
//! database keeps and its Database-proxy translates.

use dimmer_core::{BuildingId, CoreError, Value};
use storage::table::{Cell, Column, ColumnType, Predicate, Table};
use storage::StorageError;

/// The use of a space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpaceUse {
    /// Offices.
    Office,
    /// Residential units.
    Residential,
    /// Teaching / lecture space.
    Educational,
    /// Corridors, stairwells, plant rooms.
    Service,
}

impl SpaceUse {
    /// The lowercase name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            SpaceUse::Office => "office",
            SpaceUse::Residential => "residential",
            SpaceUse::Educational => "educational",
            SpaceUse::Service => "service",
        }
    }

    /// Parses a name produced by [`SpaceUse::as_str`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownSymbol`] otherwise.
    pub fn parse(s: &str) -> Result<Self, CoreError> {
        [
            SpaceUse::Office,
            SpaceUse::Residential,
            SpaceUse::Educational,
            SpaceUse::Service,
        ]
        .into_iter()
        .find(|u| u.as_str() == s)
        .ok_or_else(|| CoreError::UnknownSymbol {
            vocabulary: "space use",
            symbol: s.to_owned(),
        })
    }
}

/// A room or zone on a storey.
#[derive(Debug, Clone, PartialEq)]
pub struct Space {
    /// Unique id within the building.
    pub id: String,
    /// Human-readable name.
    pub name: String,
    /// Floor area in square metres.
    pub area_m2: f64,
    /// The space use.
    pub use_kind: SpaceUse,
}

/// One storey with its spaces.
#[derive(Debug, Clone, PartialEq)]
pub struct Storey {
    /// Level number (0 = ground).
    pub level: i32,
    /// The spaces on this storey.
    pub spaces: Vec<Space>,
}

/// The kind of an envelope element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EnvelopeKind {
    /// Exterior wall.
    Wall,
    /// Window / glazing.
    Window,
    /// Roof.
    Roof,
    /// Ground floor slab.
    Floor,
}

impl EnvelopeKind {
    /// The lowercase name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            EnvelopeKind::Wall => "wall",
            EnvelopeKind::Window => "window",
            EnvelopeKind::Roof => "roof",
            EnvelopeKind::Floor => "floor",
        }
    }

    /// Parses a name produced by [`EnvelopeKind::as_str`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownSymbol`] otherwise.
    pub fn parse(s: &str) -> Result<Self, CoreError> {
        [
            EnvelopeKind::Wall,
            EnvelopeKind::Window,
            EnvelopeKind::Roof,
            EnvelopeKind::Floor,
        ]
        .into_iter()
        .find(|k| k.as_str() == s)
        .ok_or_else(|| CoreError::UnknownSymbol {
            vocabulary: "envelope kind",
            symbol: s.to_owned(),
        })
    }
}

/// A thermal envelope element.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvelopeElement {
    /// The element kind.
    pub kind: EnvelopeKind,
    /// Surface area in square metres.
    pub area_m2: f64,
    /// Thermal transmittance in W/(m²·K).
    pub u_value: f64,
}

/// A piece of energy equipment.
#[derive(Debug, Clone, PartialEq)]
pub struct Equipment {
    /// Unique id within the building.
    pub id: String,
    /// Free-form kind ("boiler", "heat_pump", "lighting", …).
    pub kind: String,
    /// Rated electrical/thermal power in watts.
    pub rated_w: f64,
    /// The space it serves, if any.
    pub space_id: Option<String>,
}

/// One building's information model.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildingModel {
    building: BuildingId,
    name: String,
    storeys: Vec<Storey>,
    envelope: Vec<EnvelopeElement>,
    equipment: Vec<Equipment>,
}

impl BuildingModel {
    /// Creates an empty model for `building`.
    pub fn new(building: BuildingId, name: impl Into<String>) -> Self {
        BuildingModel {
            building,
            name: name.into(),
            storeys: Vec::new(),
            envelope: Vec::new(),
            equipment: Vec::new(),
        }
    }

    /// A deterministic sample building: `storeys` levels with
    /// `spaces_per_storey` offices each, a matching envelope and basic
    /// equipment. Used by scenario generation and tests.
    pub fn sample(building: &BuildingId, storeys: usize, spaces_per_storey: usize) -> Self {
        let mut model = BuildingModel::new(building.clone(), format!("Building {building}"));
        for level in 0..storeys {
            let spaces = (0..spaces_per_storey)
                .map(|s| Space {
                    id: format!("{building}-s{level}-r{s}"),
                    name: format!("Room {level}.{s}"),
                    area_m2: 18.0 + 4.0 * (s % 3) as f64,
                    use_kind: if s == 0 {
                        SpaceUse::Service
                    } else {
                        SpaceUse::Office
                    },
                })
                .collect();
            model.add_storey(Storey {
                level: level as i32,
                spaces,
            });
        }
        let footprint = 30.0 * spaces_per_storey as f64;
        model.add_envelope(EnvelopeElement {
            kind: EnvelopeKind::Wall,
            area_m2: 120.0 * storeys as f64,
            u_value: 0.8,
        });
        model.add_envelope(EnvelopeElement {
            kind: EnvelopeKind::Window,
            area_m2: 30.0 * storeys as f64,
            u_value: 2.2,
        });
        model.add_envelope(EnvelopeElement {
            kind: EnvelopeKind::Roof,
            area_m2: footprint,
            u_value: 0.5,
        });
        model.add_envelope(EnvelopeElement {
            kind: EnvelopeKind::Floor,
            area_m2: footprint,
            u_value: 0.6,
        });
        model.add_equipment(Equipment {
            id: format!("{building}-boiler"),
            kind: "boiler".into(),
            rated_w: 24_000.0,
            space_id: None,
        });
        model.add_equipment(Equipment {
            id: format!("{building}-lighting"),
            kind: "lighting".into(),
            rated_w: 60.0 * (storeys * spaces_per_storey) as f64,
            space_id: None,
        });
        model
    }

    /// The building id.
    pub fn building(&self) -> &BuildingId {
        &self.building
    }

    /// The building name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The storeys.
    pub fn storeys(&self) -> &[Storey] {
        &self.storeys
    }

    /// The envelope elements.
    pub fn envelope(&self) -> &[EnvelopeElement] {
        &self.envelope
    }

    /// The equipment.
    pub fn equipment(&self) -> &[Equipment] {
        &self.equipment
    }

    /// Adds a storey.
    pub fn add_storey(&mut self, storey: Storey) {
        self.storeys.push(storey);
    }

    /// Adds an envelope element.
    pub fn add_envelope(&mut self, element: EnvelopeElement) {
        self.envelope.push(element);
    }

    /// Adds equipment.
    pub fn add_equipment(&mut self, equipment: Equipment) {
        self.equipment.push(equipment);
    }

    /// Total floor area over all spaces, in square metres.
    pub fn total_floor_area_m2(&self) -> f64 {
        self.storeys
            .iter()
            .flat_map(|s| &s.spaces)
            .map(|s| s.area_m2)
            .sum()
    }

    /// Number of spaces.
    pub fn space_count(&self) -> usize {
        self.storeys.iter().map(|s| s.spaces.len()).sum()
    }

    /// Envelope heat-loss coefficient Σ U·A in W/K — the quantity
    /// district heat-demand simulation needs from the BIM.
    pub fn heat_loss_w_per_k(&self) -> f64 {
        self.envelope.iter().map(|e| e.u_value * e.area_m2).sum()
    }

    /// Total rated equipment power in watts.
    pub fn installed_power_w(&self) -> f64 {
        self.equipment.iter().map(|e| e.rated_w).sum()
    }

    /// Exports to the three relational tables of a BIM database dump.
    pub fn to_tables(&self) -> BimTables {
        let mut spaces = Table::new(
            "spaces",
            vec![
                Column::new("building", ColumnType::Text),
                Column::new("building_name", ColumnType::Text),
                Column::new("level", ColumnType::Int),
                Column::new("id", ColumnType::Text),
                Column::new("name", ColumnType::Text),
                Column::new("area_m2", ColumnType::Float),
                Column::new("use", ColumnType::Text),
            ],
        );
        for storey in &self.storeys {
            for space in &storey.spaces {
                spaces
                    .insert(vec![
                        self.building.as_str().into(),
                        self.name.as_str().into(),
                        i64::from(storey.level).into(),
                        space.id.as_str().into(),
                        space.name.as_str().into(),
                        space.area_m2.into(),
                        space.use_kind.as_str().into(),
                    ])
                    .expect("schema is static");
            }
        }
        let mut envelope = Table::new(
            "envelope",
            vec![
                Column::new("building", ColumnType::Text),
                Column::new("kind", ColumnType::Text),
                Column::new("area_m2", ColumnType::Float),
                Column::new("u_value", ColumnType::Float),
            ],
        );
        for e in &self.envelope {
            envelope
                .insert(vec![
                    self.building.as_str().into(),
                    e.kind.as_str().into(),
                    e.area_m2.into(),
                    e.u_value.into(),
                ])
                .expect("schema is static");
        }
        let mut equipment = Table::new(
            "equipment",
            vec![
                Column::new("building", ColumnType::Text),
                Column::new("id", ColumnType::Text),
                Column::new("kind", ColumnType::Text),
                Column::new("rated_w", ColumnType::Float),
                Column::new("space_id", ColumnType::Text),
            ],
        );
        for eq in &self.equipment {
            equipment
                .insert(vec![
                    self.building.as_str().into(),
                    eq.id.as_str().into(),
                    eq.kind.as_str().into(),
                    eq.rated_w.into(),
                    eq.space_id.as_deref().map_or(Cell::Null, Cell::from),
                ])
                .expect("schema is static");
        }
        BimTables {
            spaces,
            envelope,
            equipment,
        }
    }

    /// Re-imports a model from a BIM database dump. Storeys whose level
    /// never occurs in `spaces` are (necessarily) not reconstructed;
    /// empty storeys do not survive the export.
    ///
    /// # Errors
    ///
    /// Returns an error when the tables do not have the expected columns
    /// or the rows carry invalid values.
    pub fn from_tables(tables: &BimTables) -> Result<Self, Box<dyn std::error::Error>> {
        let spaces = &tables.spaces;
        let mut building: Option<(BuildingId, String)> = None;
        let mut storeys: std::collections::BTreeMap<i32, Vec<Space>> =
            std::collections::BTreeMap::new();
        let b_col = spaces.column_index("building")?;
        let bn_col = spaces.column_index("building_name")?;
        let level_col = spaces.column_index("level")?;
        let id_col = spaces.column_index("id")?;
        let name_col = spaces.column_index("name")?;
        let area_col = spaces.column_index("area_m2")?;
        let use_col = spaces.column_index("use")?;
        let text = |c: &Cell| -> Result<String, StorageError> {
            match c {
                Cell::Text(s) => Ok(s.clone()),
                other => Err(StorageError::SchemaMismatch {
                    table: "spaces".into(),
                    reason: format!("expected text, got {other}"),
                }),
            }
        };
        for row in spaces.scan(&Predicate::True) {
            let bid = BuildingId::new(text(&row[b_col])?)?;
            let bname = text(&row[bn_col])?;
            if building.is_none() {
                building = Some((bid, bname));
            }
            let level = match row[level_col] {
                Cell::Int(l) => l as i32,
                _ => 0,
            };
            let area = match row[area_col] {
                Cell::Float(a) => a,
                Cell::Int(a) => a as f64,
                _ => 0.0,
            };
            storeys.entry(level).or_default().push(Space {
                id: text(&row[id_col])?,
                name: text(&row[name_col])?,
                area_m2: area,
                use_kind: SpaceUse::parse(&text(&row[use_col])?)?,
            });
        }
        let (building, name) = building.ok_or_else(|| {
            Box::new(StorageError::SchemaMismatch {
                table: "spaces".into(),
                reason: "no rows to reconstruct the building from".into(),
            })
        })?;
        let mut model = BuildingModel::new(building, name);
        for (level, spaces) in storeys {
            model.add_storey(Storey { level, spaces });
        }
        let env = &tables.envelope;
        let kind_col = env.column_index("kind")?;
        let earea_col = env.column_index("area_m2")?;
        let u_col = env.column_index("u_value")?;
        for row in env.scan(&Predicate::True) {
            model.add_envelope(EnvelopeElement {
                kind: EnvelopeKind::parse(&text(&row[kind_col])?)?,
                area_m2: match row[earea_col] {
                    Cell::Float(a) => a,
                    _ => 0.0,
                },
                u_value: match row[u_col] {
                    Cell::Float(u) => u,
                    _ => 0.0,
                },
            });
        }
        let eq = &tables.equipment;
        let eid_col = eq.column_index("id")?;
        let ekind_col = eq.column_index("kind")?;
        let w_col = eq.column_index("rated_w")?;
        let space_col = eq.column_index("space_id")?;
        for row in eq.scan(&Predicate::True) {
            model.add_equipment(Equipment {
                id: text(&row[eid_col])?,
                kind: text(&row[ekind_col])?,
                rated_w: match row[w_col] {
                    Cell::Float(w) => w,
                    _ => 0.0,
                },
                space_id: match &row[space_col] {
                    Cell::Text(s) => Some(s.clone()),
                    _ => None,
                },
            });
        }
        Ok(model)
    }

    /// Translates the model into the common data format (what the BIM
    /// Database-proxy serves).
    pub fn to_value(&self) -> Value {
        Value::object([
            ("building", Value::from(self.building.as_str())),
            ("name", Value::from(self.name.as_str())),
            (
                "storeys",
                Value::Array(
                    self.storeys
                        .iter()
                        .map(|s| {
                            Value::object([
                                ("level", Value::from(i64::from(s.level))),
                                (
                                    "spaces",
                                    Value::Array(
                                        s.spaces
                                            .iter()
                                            .map(|sp| {
                                                Value::object([
                                                    ("id", Value::from(sp.id.as_str())),
                                                    ("name", Value::from(sp.name.as_str())),
                                                    ("area_m2", Value::from(sp.area_m2)),
                                                    ("use", Value::from(sp.use_kind.as_str())),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "envelope",
                Value::Array(
                    self.envelope
                        .iter()
                        .map(|e| {
                            Value::object([
                                ("kind", Value::from(e.kind.as_str())),
                                ("area_m2", Value::from(e.area_m2)),
                                ("u_value", Value::from(e.u_value)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "equipment",
                Value::Array(
                    self.equipment
                        .iter()
                        .map(|e| {
                            Value::object([
                                ("id", Value::from(e.id.as_str())),
                                ("kind", Value::from(e.kind.as_str())),
                                ("rated_w", Value::from(e.rated_w)),
                                (
                                    "space_id",
                                    e.space_id.as_deref().map_or(Value::Null, Value::from),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("heat_loss_w_per_k", Value::from(self.heat_loss_w_per_k())),
            ("floor_area_m2", Value::from(self.total_floor_area_m2())),
        ])
    }
}

/// The three tables of a BIM database dump.
#[derive(Debug, Clone, PartialEq)]
pub struct BimTables {
    /// One row per space.
    pub spaces: Table,
    /// One row per envelope element.
    pub envelope: Table,
    /// One row per equipment item.
    pub equipment: Table,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bid(s: &str) -> BuildingId {
        BuildingId::new(s).unwrap()
    }

    #[test]
    fn sample_has_expected_shape() {
        let m = BuildingModel::sample(&bid("b1"), 3, 4);
        assert_eq!(m.storeys().len(), 3);
        assert_eq!(m.space_count(), 12);
        assert_eq!(m.envelope().len(), 4);
        assert_eq!(m.equipment().len(), 2);
        assert!(m.total_floor_area_m2() > 0.0);
        assert!(m.heat_loss_w_per_k() > 0.0);
        assert!(m.installed_power_w() > 24_000.0);
    }

    #[test]
    fn tables_round_trip() {
        let m = BuildingModel::sample(&bid("campus-a"), 2, 3);
        let tables = m.to_tables();
        assert_eq!(tables.spaces.len(), 6);
        let back = BuildingModel::from_tables(&tables).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn equipment_without_space_round_trips_as_null() {
        let m = BuildingModel::sample(&bid("b1"), 1, 1);
        let tables = m.to_tables();
        let rows = tables.equipment.scan(&Predicate::True);
        assert!(matches!(rows[0][4], Cell::Null));
        let back = BuildingModel::from_tables(&tables).unwrap();
        assert_eq!(back.equipment()[0].space_id, None);
    }

    #[test]
    fn from_tables_rejects_empty_dump() {
        let empty = BuildingModel::new(bid("x"), "X").to_tables();
        assert!(BuildingModel::from_tables(&empty).is_err());
    }

    #[test]
    fn heat_loss_is_sum_of_ua() {
        let mut m = BuildingModel::new(bid("b"), "B");
        m.add_envelope(EnvelopeElement {
            kind: EnvelopeKind::Wall,
            area_m2: 100.0,
            u_value: 0.5,
        });
        m.add_envelope(EnvelopeElement {
            kind: EnvelopeKind::Window,
            area_m2: 10.0,
            u_value: 2.0,
        });
        assert_eq!(m.heat_loss_w_per_k(), 70.0);
    }

    #[test]
    fn to_value_carries_derived_quantities() {
        let m = BuildingModel::sample(&bid("b1"), 2, 2);
        let v = m.to_value();
        assert_eq!(v.get("building").and_then(Value::as_str), Some("b1"));
        assert!(v.get("heat_loss_w_per_k").and_then(Value::as_f64).unwrap() > 0.0);
        assert_eq!(v.require_array("bim", "storeys").unwrap().len(), 2);
    }

    #[test]
    fn enum_names_round_trip() {
        for u in [
            SpaceUse::Office,
            SpaceUse::Residential,
            SpaceUse::Educational,
            SpaceUse::Service,
        ] {
            assert_eq!(SpaceUse::parse(u.as_str()).unwrap(), u);
        }
        for k in [
            EnvelopeKind::Wall,
            EnvelopeKind::Window,
            EnvelopeKind::Roof,
            EnvelopeKind::Floor,
        ] {
            assert_eq!(EnvelopeKind::parse(k.as_str()).unwrap(), k);
        }
        assert!(SpaceUse::parse("garage").is_err());
        assert!(EnvelopeKind::parse("door").is_err());
    }
}
