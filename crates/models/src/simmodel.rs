//! System Information Models — energy-distribution networks.
//!
//! A [`NetworkModel`] is the graph of one distribution network: an
//! electrical feeder or a district-heating loop. Nodes are plants,
//! substations, junctions and consumers; edges carry length and a loss
//! coefficient. The model exports to the fixed-width legacy records a
//! SIM database keeps (two record types: `N` node lines and `E` edge
//! lines), which the SIM Database-proxy parses and translates.

use std::collections::{BTreeMap, HashMap, VecDeque};

use dimmer_core::{NetworkId, Value};
use storage::legacy::fixedwidth::{FieldSpec, RecordLayout};
use storage::StorageError;

/// The commodity a network distributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NetworkKind {
    /// Medium/low-voltage electrical feeder.
    Electrical,
    /// District-heating loop.
    DistrictHeating,
}

impl NetworkKind {
    /// The lowercase name used in the common data format.
    pub fn as_str(self) -> &'static str {
        match self {
            NetworkKind::Electrical => "electrical",
            NetworkKind::DistrictHeating => "district_heating",
        }
    }

    /// The two-letter code used in legacy records.
    pub fn code(self) -> &'static str {
        match self {
            NetworkKind::Electrical => "EL",
            NetworkKind::DistrictHeating => "DH",
        }
    }

    /// Parses either the name or the legacy code.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "electrical" | "EL" => Some(NetworkKind::Electrical),
            "district_heating" | "DH" => Some(NetworkKind::DistrictHeating),
            _ => None,
        }
    }
}

/// The role of a network node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeKind {
    /// Generation/injection point (power plant, heat plant).
    Plant,
    /// Transformation point (substation, heat exchanger).
    Substation,
    /// Passive branch point.
    Junction,
    /// A consumer (typically a building service connection).
    Consumer,
}

impl NodeKind {
    /// The three-letter code used in legacy records.
    pub fn code(self) -> &'static str {
        match self {
            NodeKind::Plant => "PLT",
            NodeKind::Substation => "SUB",
            NodeKind::Junction => "JCT",
            NodeKind::Consumer => "CON",
        }
    }

    /// Parses a code produced by [`NodeKind::code`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "PLT" => Some(NodeKind::Plant),
            "SUB" => Some(NodeKind::Substation),
            "JCT" => Some(NodeKind::Junction),
            "CON" => Some(NodeKind::Consumer),
            _ => None,
        }
    }
}

/// A node of the network graph.
#[derive(Debug, Clone, PartialEq)]
pub struct NetNode {
    /// Unique id within the network (≤ 12 ASCII chars for the legacy
    /// export).
    pub id: String,
    /// The node role.
    pub kind: NodeKind,
    /// Rated power at this node in kW (generation for plants, demand for
    /// consumers, capacity for substations).
    pub rated_kw: f64,
    /// The building this consumer connects to, if any.
    pub building: Option<String>,
}

/// An edge of the network graph (directed plant → consumers for loss
/// computation, but connectivity treats it as undirected).
#[derive(Debug, Clone, PartialEq)]
pub struct NetEdge {
    /// Source node id.
    pub from: String,
    /// Target node id.
    pub to: String,
    /// Length in metres.
    pub length_m: f64,
    /// Fractional loss per kilometre (0.002 = 0.2 %/km).
    pub loss_per_km: f64,
}

/// One distribution network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    network: NetworkId,
    kind: NetworkKind,
    nodes: Vec<NetNode>,
    edges: Vec<NetEdge>,
}

impl NetworkModel {
    /// Creates an empty network.
    pub fn new(network: NetworkId, kind: NetworkKind) -> Self {
        NetworkModel {
            network,
            kind,
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// A deterministic sample network: one plant, `substations`
    /// substations in a line, each feeding `consumers_each` consumers.
    pub fn sample(
        network: &NetworkId,
        kind: NetworkKind,
        substations: usize,
        consumers_each: usize,
    ) -> Self {
        let mut m = NetworkModel::new(network.clone(), kind);
        m.add_node(NetNode {
            id: "PLT0".into(),
            kind: NodeKind::Plant,
            rated_kw: 5_000.0,
            building: None,
        });
        let mut prev = "PLT0".to_owned();
        let mut consumer = 0;
        for s in 0..substations {
            let sub = format!("SUB{s}");
            m.add_node(NetNode {
                id: sub.clone(),
                kind: NodeKind::Substation,
                rated_kw: 1_000.0,
                building: None,
            });
            m.add_edge(NetEdge {
                from: prev.clone(),
                to: sub.clone(),
                length_m: 400.0,
                loss_per_km: 0.004,
            });
            for _ in 0..consumers_each {
                let con = format!("CON{consumer}");
                m.add_node(NetNode {
                    id: con.clone(),
                    kind: NodeKind::Consumer,
                    rated_kw: 40.0,
                    building: Some(format!("b{consumer}")),
                });
                m.add_edge(NetEdge {
                    from: sub.clone(),
                    to: con,
                    length_m: 120.0,
                    loss_per_km: 0.006,
                });
                consumer += 1;
            }
            prev = sub;
        }
        m
    }

    /// The network id.
    pub fn network(&self) -> &NetworkId {
        &self.network
    }

    /// The commodity kind.
    pub fn kind(&self) -> NetworkKind {
        self.kind
    }

    /// The nodes.
    pub fn nodes(&self) -> &[NetNode] {
        &self.nodes
    }

    /// The edges.
    pub fn edges(&self) -> &[NetEdge] {
        &self.edges
    }

    /// Adds a node.
    pub fn add_node(&mut self, node: NetNode) {
        self.nodes.push(node);
    }

    /// Adds an edge.
    pub fn add_edge(&mut self, edge: NetEdge) {
        self.edges.push(edge);
    }

    /// The node with `id`.
    pub fn node(&self, id: &str) -> Option<&NetNode> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Ids of nodes unreachable from any plant (undirected reachability).
    /// An empty result means the network is fully connected to supply.
    pub fn unreachable_from_supply(&self) -> Vec<&str> {
        let mut adjacency: HashMap<&str, Vec<&str>> = HashMap::new();
        for e in &self.edges {
            adjacency.entry(&e.from).or_default().push(&e.to);
            adjacency.entry(&e.to).or_default().push(&e.from);
        }
        let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
        let mut queue: VecDeque<&str> = self
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Plant)
            .map(|n| n.id.as_str())
            .collect();
        for &p in &queue {
            seen.insert(p);
        }
        while let Some(n) = queue.pop_front() {
            for &next in adjacency.get(n).into_iter().flatten() {
                if seen.insert(next) {
                    queue.push_back(next);
                }
            }
        }
        self.nodes
            .iter()
            .map(|n| n.id.as_str())
            .filter(|id| !seen.contains(id))
            .collect()
    }

    /// Fraction of injected energy that survives to each consumer:
    /// `consumer id → delivery efficiency` along the best (lowest-loss)
    /// path from any plant. Unreachable consumers are absent.
    pub fn delivery_efficiency(&self) -> BTreeMap<String, f64> {
        // Dijkstra on -log(1 - loss) additive weights.
        let mut adjacency: HashMap<&str, Vec<(&str, f64)>> = HashMap::new();
        for e in &self.edges {
            let loss = (e.loss_per_km * e.length_m / 1000.0).min(0.999_999);
            let w = -(1.0 - loss).ln();
            adjacency.entry(&e.from).or_default().push((&e.to, w));
            adjacency.entry(&e.to).or_default().push((&e.from, w));
        }
        let mut dist: HashMap<&str, f64> = HashMap::new();
        let mut heap = std::collections::BinaryHeap::new();
        for n in self.nodes.iter().filter(|n| n.kind == NodeKind::Plant) {
            dist.insert(&n.id, 0.0);
            heap.push((std::cmp::Reverse(ordered(0.0)), n.id.as_str()));
        }
        while let Some((std::cmp::Reverse(d), node)) = heap.pop() {
            let d = d.0;
            if dist.get(node).copied().unwrap_or(f64::INFINITY) < d {
                continue;
            }
            for &(next, w) in adjacency.get(node).into_iter().flatten() {
                let nd = d + w;
                if nd < dist.get(next).copied().unwrap_or(f64::INFINITY) {
                    dist.insert(next, nd);
                    heap.push((std::cmp::Reverse(ordered(nd)), next));
                }
            }
        }
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Consumer)
            .filter_map(|n| dist.get(n.id.as_str()).map(|d| (n.id.clone(), (-d).exp())))
            .collect()
    }

    /// Total rated consumer demand in kW.
    pub fn total_demand_kw(&self) -> f64 {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Consumer)
            .map(|n| n.rated_kw)
            .sum()
    }

    /// The fixed-width layout of legacy SIM records.
    pub fn record_layout() -> RecordLayout {
        RecordLayout::new(vec![
            FieldSpec::new("rec", 1),  // N or E
            FieldSpec::new("net", 12), // network id
            FieldSpec::new("kind", 2), // EL / DH
            FieldSpec::new("a", 12),   // node id / edge from
            FieldSpec::new("b", 12),   // node kind code / edge to
            FieldSpec::new("x", 12),   // rated kW / length m
            FieldSpec::new("y", 12),   // building / loss per km
        ])
    }

    /// Exports to the legacy fixed-width document.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError`] if an id exceeds the record widths.
    pub fn to_legacy(&self) -> Result<String, StorageError> {
        let layout = NetworkModel::record_layout();
        let mut records: Vec<Vec<String>> = Vec::new();
        for n in &self.nodes {
            records.push(vec![
                "N".into(),
                self.network.as_str().to_owned(),
                self.kind.code().to_owned(),
                n.id.clone(),
                n.kind.code().to_owned(),
                format!("{:.3}", n.rated_kw),
                n.building.clone().unwrap_or_default(),
            ]);
        }
        for e in &self.edges {
            records.push(vec![
                "E".into(),
                self.network.as_str().to_owned(),
                self.kind.code().to_owned(),
                e.from.clone(),
                e.to.clone(),
                format!("{:.3}", e.length_m),
                format!("{:.6}", e.loss_per_km),
            ]);
        }
        layout.encode_document(&records)
    }

    /// Parses a legacy document produced by [`NetworkModel::to_legacy`].
    ///
    /// # Errors
    ///
    /// Returns an error on malformed records or inconsistent metadata.
    pub fn from_legacy(text: &str) -> Result<Self, Box<dyn std::error::Error>> {
        let layout = NetworkModel::record_layout();
        let records = layout.parse_document(text)?;
        let mut model: Option<NetworkModel> = None;
        for rec in records {
            let [recty, net, kind, a, b, x, y] =
                <[String; 7]>::try_from(rec).map_err(|_| StorageError::ParseLegacy {
                    format: "sim",
                    line: 0,
                    reason: "wrong field count".into(),
                })?;
            let kind = NetworkKind::parse(&kind).ok_or_else(|| StorageError::ParseLegacy {
                format: "sim",
                line: 0,
                reason: format!("unknown network kind {kind:?}"),
            })?;
            let m = match &mut model {
                Some(m) => m,
                None => {
                    model = Some(NetworkModel::new(NetworkId::new(net.clone())?, kind));
                    model.as_mut().expect("just set")
                }
            };
            match recty.as_str() {
                "N" => {
                    let node_kind =
                        NodeKind::parse(&b).ok_or_else(|| StorageError::ParseLegacy {
                            format: "sim",
                            line: 0,
                            reason: format!("unknown node kind {b:?}"),
                        })?;
                    m.add_node(NetNode {
                        id: a,
                        kind: node_kind,
                        rated_kw: x.parse()?,
                        building: if y.is_empty() { None } else { Some(y) },
                    });
                }
                "E" => {
                    m.add_edge(NetEdge {
                        from: a,
                        to: b,
                        length_m: x.parse()?,
                        loss_per_km: y.parse()?,
                    });
                }
                other => {
                    return Err(Box::new(StorageError::ParseLegacy {
                        format: "sim",
                        line: 0,
                        reason: format!("unknown record type {other:?}"),
                    }))
                }
            }
        }
        model.ok_or_else(|| {
            Box::new(StorageError::ParseLegacy {
                format: "sim",
                line: 0,
                reason: "empty document".into(),
            }) as Box<dyn std::error::Error>
        })
    }

    /// Translates the model into the common data format (what the SIM
    /// Database-proxy serves).
    pub fn to_value(&self) -> Value {
        Value::object([
            ("network", Value::from(self.network.as_str())),
            ("kind", Value::from(self.kind.as_str())),
            (
                "nodes",
                Value::Array(
                    self.nodes
                        .iter()
                        .map(|n| {
                            Value::object([
                                ("id", Value::from(n.id.as_str())),
                                ("kind", Value::from(n.kind.code())),
                                ("rated_kw", Value::from(n.rated_kw)),
                                (
                                    "building",
                                    n.building.as_deref().map_or(Value::Null, Value::from),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "edges",
                Value::Array(
                    self.edges
                        .iter()
                        .map(|e| {
                            Value::object([
                                ("from", Value::from(e.from.as_str())),
                                ("to", Value::from(e.to.as_str())),
                                ("length_m", Value::from(e.length_m)),
                                ("loss_per_km", Value::from(e.loss_per_km)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("total_demand_kw", Value::from(self.total_demand_kw())),
        ])
    }
}

/// f64 wrapper with total order for the Dijkstra heap (no NaN enters).
fn ordered(f: f64) -> OrderedF64 {
    OrderedF64(f)
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("no NaN in heap")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(s: &str) -> NetworkId {
        NetworkId::new(s).unwrap()
    }

    #[test]
    fn sample_shape() {
        let m = NetworkModel::sample(&nid("dh1"), NetworkKind::DistrictHeating, 3, 4);
        assert_eq!(m.nodes().len(), 1 + 3 + 12);
        assert_eq!(m.edges().len(), 3 + 12);
        assert_eq!(m.total_demand_kw(), 480.0);
        assert!(m.unreachable_from_supply().is_empty());
    }

    #[test]
    fn unreachable_detection() {
        let mut m = NetworkModel::new(nid("el1"), NetworkKind::Electrical);
        m.add_node(NetNode {
            id: "PLT0".into(),
            kind: NodeKind::Plant,
            rated_kw: 100.0,
            building: None,
        });
        m.add_node(NetNode {
            id: "CON0".into(),
            kind: NodeKind::Consumer,
            rated_kw: 10.0,
            building: None,
        });
        m.add_node(NetNode {
            id: "ISLAND".into(),
            kind: NodeKind::Consumer,
            rated_kw: 10.0,
            building: None,
        });
        m.add_edge(NetEdge {
            from: "PLT0".into(),
            to: "CON0".into(),
            length_m: 100.0,
            loss_per_km: 0.01,
        });
        assert_eq!(m.unreachable_from_supply(), vec!["ISLAND"]);
        // And the island consumer has no efficiency entry.
        assert!(!m.delivery_efficiency().contains_key("ISLAND"));
        assert!(m.delivery_efficiency().contains_key("CON0"));
    }

    #[test]
    fn efficiency_decreases_with_distance() {
        let m = NetworkModel::sample(&nid("dh1"), NetworkKind::DistrictHeating, 3, 1);
        let eff = m.delivery_efficiency();
        // CON0 hangs off SUB0 (1 hop), CON2 off SUB2 (3 hops).
        assert!(eff["CON0"] > eff["CON2"], "{eff:?}");
        for e in eff.values() {
            assert!((0.0..=1.0).contains(e));
        }
    }

    #[test]
    fn efficiency_takes_best_path() {
        let mut m = NetworkModel::new(nid("el1"), NetworkKind::Electrical);
        for (id, kind) in [
            ("PLT0", NodeKind::Plant),
            ("J1", NodeKind::Junction),
            ("CON0", NodeKind::Consumer),
        ] {
            m.add_node(NetNode {
                id: id.into(),
                kind,
                rated_kw: 10.0,
                building: None,
            });
        }
        // Lossy direct edge vs nearly lossless two-hop path.
        m.add_edge(NetEdge {
            from: "PLT0".into(),
            to: "CON0".into(),
            length_m: 1000.0,
            loss_per_km: 0.5,
        });
        m.add_edge(NetEdge {
            from: "PLT0".into(),
            to: "J1".into(),
            length_m: 1000.0,
            loss_per_km: 0.001,
        });
        m.add_edge(NetEdge {
            from: "J1".into(),
            to: "CON0".into(),
            length_m: 1000.0,
            loss_per_km: 0.001,
        });
        let eff = m.delivery_efficiency();
        assert!((eff["CON0"] - 0.998_001).abs() < 1e-6, "{eff:?}");
    }

    #[test]
    fn legacy_round_trip() {
        let m = NetworkModel::sample(&nid("dh-west-1"), NetworkKind::DistrictHeating, 2, 2);
        let text = m.to_legacy().unwrap();
        let back = NetworkModel::from_legacy(&text).unwrap();
        assert_eq!(back.network(), m.network());
        assert_eq!(back.kind(), m.kind());
        assert_eq!(back.nodes().len(), m.nodes().len());
        assert_eq!(back.edges().len(), m.edges().len());
        // Floats travel through %.3f / %.6f formatting.
        assert!((back.nodes()[0].rated_kw - m.nodes()[0].rated_kw).abs() < 1e-3);
        assert!((back.edges()[0].loss_per_km - m.edges()[0].loss_per_km).abs() < 1e-6);
    }

    #[test]
    fn legacy_rejects_garbage() {
        assert!(NetworkModel::from_legacy("").is_err());
        assert!(NetworkModel::from_legacy("not a record\n").is_err());
        let layout = NetworkModel::record_layout();
        let bad = layout
            .encode_record(&["X", "net", "EL", "a", "b", "1", "2"])
            .unwrap();
        assert!(NetworkModel::from_legacy(&format!("{bad}\n")).is_err());
    }

    #[test]
    fn to_value_shape() {
        let m = NetworkModel::sample(&nid("el1"), NetworkKind::Electrical, 1, 2);
        let v = m.to_value();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("electrical"));
        assert_eq!(v.require_array("sim", "nodes").unwrap().len(), 4);
        assert_eq!(v.get("total_demand_kw").and_then(Value::as_f64), Some(80.0));
    }

    #[test]
    fn kind_codes_round_trip() {
        for k in [NetworkKind::Electrical, NetworkKind::DistrictHeating] {
            assert_eq!(NetworkKind::parse(k.code()), Some(k));
            assert_eq!(NetworkKind::parse(k.as_str()), Some(k));
        }
        for k in [
            NodeKind::Plant,
            NodeKind::Substation,
            NodeKind::Junction,
            NodeKind::Consumer,
        ] {
            assert_eq!(NodeKind::parse(k.code()), Some(k));
        }
    }
}
