//! Synthetic energy-consumption profiles.
//!
//! The paper's devices report real district data; the reproduction
//! substitutes deterministic synthetic profiles with the structure real
//! district traces have — daily occupancy cycles, weekday/weekend
//! contrast, seasonal temperature drift and noise. A profile is a pure
//! function of time (plus a seeded noise stream), so simulations replay
//! identically.

use dimmer_core::QuantityKind;
use simnet_free_rng::NoiseRng;

/// A tiny deterministic noise stream (SplitMix64), independent from the
/// `simnet` kernel so `models` stays substrate-free.
mod simnet_free_rng {
    /// Deterministic noise generator for profile jitter.
    #[derive(Debug, Clone)]
    pub struct NoiseRng(u64);

    impl NoiseRng {
        /// Creates a stream from a seed.
        pub fn new(seed: u64) -> Self {
            NoiseRng(seed)
        }

        /// The next sample in `[-1, 1]`.
        pub fn next_unit(&mut self) -> f64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        }
    }
}

const MILLIS_PER_DAY: i64 = 86_400_000;
const MILLIS_PER_YEAR: i64 = MILLIS_PER_DAY * 365;

/// The day-of-week of a unix-millis timestamp (0 = Monday).
fn weekday(unix_millis: i64) -> u8 {
    // 1970-01-01 was a Thursday (weekday 3).
    ((unix_millis.div_euclid(MILLIS_PER_DAY) + 3).rem_euclid(7)) as u8
}

/// Fraction of the day in `[0, 1)`.
fn day_fraction(unix_millis: i64) -> f64 {
    unix_millis.rem_euclid(MILLIS_PER_DAY) as f64 / MILLIS_PER_DAY as f64
}

/// Fraction of the year in `[0, 1)` (0 = Jan 1).
fn year_fraction(unix_millis: i64) -> f64 {
    unix_millis.rem_euclid(MILLIS_PER_YEAR) as f64 / MILLIS_PER_YEAR as f64
}

/// A deterministic generator of realistic sensor readings.
///
/// ```
/// use models::profiles::EnergyProfile;
/// use dimmer_core::QuantityKind;
///
/// let mut profile = EnergyProfile::for_quantity(QuantityKind::Temperature, 42);
/// let noon = 12 * 3_600_000;
/// let t = profile.sample(noon);
/// assert!((0.0..40.0).contains(&t), "indoor temperature {t} plausible");
/// ```
#[derive(Debug, Clone)]
pub struct EnergyProfile {
    quantity: QuantityKind,
    /// Scale of the profile (peak watts, floor area proxy, …).
    scale: f64,
    noise: NoiseRng,
    noise_amplitude: f64,
    /// Running integral for cumulative (energy) quantities, in kWh.
    cumulative_kwh: f64,
    last_millis: Option<i64>,
}

impl EnergyProfile {
    /// A profile with default scale for `quantity`, seeded with `seed`.
    pub fn for_quantity(quantity: QuantityKind, seed: u64) -> Self {
        let scale = match quantity {
            QuantityKind::ActivePower => 2_000.0, // W peak per dwelling
            QuantityKind::ElectricalEnergy | QuantityKind::ThermalEnergy => 2_000.0,
            QuantityKind::FlowRate => 1.5, // m3/h
            _ => 1.0,
        };
        EnergyProfile::with_scale(quantity, scale, seed)
    }

    /// A profile with an explicit scale.
    pub fn with_scale(quantity: QuantityKind, scale: f64, seed: u64) -> Self {
        EnergyProfile {
            quantity,
            scale,
            noise: NoiseRng::new(seed),
            noise_amplitude: 0.03,
            cumulative_kwh: 0.0,
            last_millis: None,
        }
    }

    /// The quantity generated.
    pub fn quantity(&self) -> QuantityKind {
        self.quantity
    }

    /// The occupancy factor in `[0, 1]` at a time: the daily double hump
    /// damped on weekends.
    pub fn occupancy(unix_millis: i64) -> f64 {
        let h = day_fraction(unix_millis) * 24.0;
        let morning = (-((h - 9.0) / 2.5).powi(2)).exp();
        let evening = (-((h - 19.0) / 3.0).powi(2)).exp();
        let base = 0.15 + 0.85 * morning.max(evening);
        if weekday(unix_millis) >= 5 {
            0.3 + 0.4 * base
        } else {
            base
        }
    }

    /// Outdoor temperature in °C at a time (seasonal + daily swing).
    pub fn outdoor_temperature(unix_millis: i64) -> f64 {
        let season = -(2.0 * std::f64::consts::PI * year_fraction(unix_millis)).cos();
        let daily = -(2.0 * std::f64::consts::PI * (day_fraction(unix_millis) - 0.17)).cos();
        12.0 + 10.0 * season + 4.0 * daily
    }

    /// Samples the profile at `unix_millis`, in the quantity's canonical
    /// unit. For cumulative quantities the sample integrates power since
    /// the previous call, so **call with non-decreasing timestamps**.
    pub fn sample(&mut self, unix_millis: i64) -> f64 {
        let noise = self.noise.next_unit() * self.noise_amplitude;
        let occ = EnergyProfile::occupancy(unix_millis);
        match self.quantity {
            QuantityKind::Temperature => {
                // Indoor: setpoint 20.5 pulled toward outdoor, occupancy gains.
                let outdoor = EnergyProfile::outdoor_temperature(unix_millis);
                let drift = (outdoor - 20.5) * 0.08;
                (20.5 + drift + 1.2 * occ + noise * 15.0).clamp(0.0, 40.0)
            }
            QuantityKind::ActivePower => {
                (self.scale * (0.12 + 0.88 * occ) * (1.0 + noise * 4.0)).max(0.0)
            }
            QuantityKind::ElectricalEnergy | QuantityKind::ThermalEnergy => {
                let power_w = self.scale * (0.12 + 0.88 * occ);
                if let Some(last) = self.last_millis {
                    let hours = (unix_millis - last).max(0) as f64 / 3_600_000.0;
                    self.cumulative_kwh += power_w / 1000.0 * hours;
                }
                self.last_millis = Some(unix_millis);
                self.cumulative_kwh
            }
            QuantityKind::Voltage => 230.0 * (1.0 + noise),
            QuantityKind::Current => (self.scale * occ / 230.0).max(0.0),
            QuantityKind::FlowRate => (self.scale * occ * (1.0 + noise * 3.0)).max(0.0),
            QuantityKind::Illuminance => {
                let h = day_fraction(unix_millis) * 24.0;
                let sun = (-((h - 13.0) / 4.0).powi(2)).exp();
                (800.0 * sun + 300.0 * occ * (1.0 + noise)).max(0.0)
            }
            QuantityKind::Humidity => (45.0 + 10.0 * occ + noise * 120.0).clamp(10.0, 95.0),
            QuantityKind::Co2 => (420.0 + 700.0 * occ * (1.0 + noise * 4.0)).max(380.0),
            QuantityKind::Occupancy => (occ * 12.0).round().max(0.0),
            QuantityKind::SwitchState => f64::from(u8::from(occ > 0.45)),
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2015-01-05 was a Monday.
    const MONDAY: i64 = 1_420_416_000_000;
    /// 2015-01-10 was a Saturday.
    const SATURDAY: i64 = 1_420_848_000_000;
    const HOUR: i64 = 3_600_000;

    #[test]
    fn weekday_known_dates() {
        assert_eq!(weekday(0), 3, "1970-01-01 was a Thursday");
        assert_eq!(weekday(MONDAY), 0);
        assert_eq!(weekday(SATURDAY), 5);
        assert_eq!(weekday(-MILLIS_PER_DAY), 2, "1969-12-31 was a Wednesday");
    }

    #[test]
    fn occupancy_peaks_in_business_hours() {
        let morning = EnergyProfile::occupancy(MONDAY + 9 * HOUR);
        let night = EnergyProfile::occupancy(MONDAY + 3 * HOUR);
        assert!(morning > 0.8, "morning {morning}");
        assert!(night < 0.3, "night {night}");
    }

    #[test]
    fn weekend_occupancy_damped() {
        let weekday_peak = EnergyProfile::occupancy(MONDAY + 9 * HOUR);
        let weekend_peak = EnergyProfile::occupancy(SATURDAY + 9 * HOUR);
        assert!(weekend_peak < weekday_peak);
    }

    #[test]
    fn outdoor_temperature_seasonal() {
        // January vs July, same hour.
        let jan = EnergyProfile::outdoor_temperature(MONDAY + 12 * HOUR);
        let jul = EnergyProfile::outdoor_temperature(MONDAY + 181 * MILLIS_PER_DAY + 12 * HOUR);
        assert!(jul > jan + 10.0, "january {jan}, july {jul}");
    }

    #[test]
    fn samples_are_deterministic() {
        let run = || {
            let mut p = EnergyProfile::for_quantity(QuantityKind::ActivePower, 7);
            (0..48)
                .map(|h| p.sample(MONDAY + h * HOUR))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn power_follows_occupancy() {
        let mut p = EnergyProfile::with_scale(QuantityKind::ActivePower, 1000.0, 1);
        let mut peak = 0.0f64;
        let mut trough = f64::INFINITY;
        for h in 0..24 {
            let v = p.sample(MONDAY + h * HOUR);
            peak = peak.max(v);
            trough = trough.min(v);
        }
        assert!(peak > 3.0 * trough, "peak {peak}, trough {trough}");
        assert!(trough >= 0.0);
    }

    #[test]
    fn energy_is_monotone_cumulative() {
        let mut p = EnergyProfile::for_quantity(QuantityKind::ElectricalEnergy, 3);
        let mut last = 0.0;
        for h in 0..72 {
            let v = p.sample(MONDAY + h * HOUR);
            assert!(v >= last, "cumulative energy decreased: {v} < {last}");
            last = v;
        }
        // ~2 kW scale over 72 h: tens of kWh.
        assert!(last > 10.0 && last < 200.0, "total {last}");
    }

    #[test]
    fn ranges_are_physical() {
        for &q in QuantityKind::all() {
            let mut p = EnergyProfile::for_quantity(q, 11);
            for h in 0..48 {
                let v = p.sample(MONDAY + h * HOUR);
                assert!(v.is_finite(), "{q} produced {v}");
                match q {
                    QuantityKind::Temperature => assert!((0.0..=40.0).contains(&v)),
                    QuantityKind::Humidity => assert!((10.0..=95.0).contains(&v)),
                    QuantityKind::Co2 => assert!(v >= 380.0),
                    QuantityKind::SwitchState => assert!(v == 0.0 || v == 1.0),
                    _ => assert!(v >= 0.0, "{q} produced {v}"),
                }
            }
        }
    }

    #[test]
    fn different_seeds_decorrelate_noise() {
        let mut a = EnergyProfile::for_quantity(QuantityKind::ActivePower, 1);
        let mut b = EnergyProfile::for_quantity(QuantityKind::ActivePower, 2);
        let same = (0..24)
            .filter(|h| (a.sample(MONDAY + h * HOUR) - b.sample(MONDAY + h * HOUR)).abs() < 1e-12)
            .count();
        assert!(same < 4);
    }
}
