//! The client half of the middleware, embedded in nodes.

use std::collections::HashMap;

use simnet::{Context, NodeId, Packet as NetPacket, SimDuration, TimerTag};

use crate::wire::{Packet, QoS};
use crate::{Topic, TopicFilter, PUBSUB_PORT};
use simnet::telemetry::{SpanId, TraceId, NO_SPAN, NO_TRACE};

/// Publisher-side retry interval for unacked QoS 1 publishes.
const PUBLISH_RETRY: SimDuration = SimDuration::from_secs(2);
const MAX_PUBLISH_RETRIES: u32 = 3;

/// Events surfaced by [`PubSubClient::accept`] and
/// [`PubSubClient::on_timer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PubSubEvent {
    /// A message arrived on a subscribed topic.
    Message {
        /// The topic it was published under.
        topic: Topic,
        /// The payload.
        payload: Vec<u8>,
        /// Flight-recorder trace id of the originating publish
        /// (`telemetry::NO_TRACE` = 0 when untraced).
        trace: TraceId,
        /// Span id of this client's `sub.receive` hop (`NO_SPAN` when
        /// untraced); the owning node uses it as the parent of any
        /// further hops it records for the same trace.
        span: SpanId,
    },
    /// A QoS 1 publish was acknowledged by the broker.
    Published {
        /// The id returned by [`PubSubClient::publish`].
        id: u64,
    },
    /// A QoS 1 publish exhausted its retries without acknowledgement.
    PublishTimedOut {
        /// The id returned by [`PubSubClient::publish`].
        id: u64,
    },
    /// A keepalive probe revealed that the broker restarted since we last
    /// heard from it. The client has already re-sent its subscriptions
    /// (session resumption); the owning node may want to re-publish
    /// retained state.
    BrokerRestarted {
        /// The broker's new incarnation number.
        incarnation: u64,
    },
}

#[derive(Debug, Clone)]
struct PendingPublish {
    bytes: Vec<u8>,
    retries_left: u32,
}

/// Middleware client state a [`simnet::Node`] embeds.
///
/// The owning node must:
/// * route packets arriving on [`PUBSUB_PORT`] to
///   [`PubSubClient::accept`] (it auto-acknowledges QoS 1 deliveries);
/// * route timers whose tag the client [`owns`](PubSubClient::owns_tag)
///   to [`PubSubClient::on_timer`].
#[derive(Debug)]
pub struct PubSubClient {
    broker: NodeId,
    tag_base: u64,
    /// Publish ids start at 1; `tag_base + 0` is the keepalive timer.
    next_publish_id: u64,
    pending: HashMap<u64, PendingPublish>,
    /// Subscriptions this client holds, remembered so they can be
    /// re-sent when the broker restarts (session resumption).
    subs: Vec<(TopicFilter, QoS)>,
    /// Broker incarnation seen in the last Pong, if any.
    last_incarnation: Option<u64>,
    /// Keepalive probe interval; `None` until
    /// [`PubSubClient::start_keepalive`].
    keepalive: Option<SimDuration>,
}

impl PubSubClient {
    /// Creates a client talking to `broker`, using timer tags starting at
    /// `tag_base`.
    pub fn new(broker: NodeId, tag_base: u64) -> Self {
        PubSubClient {
            broker,
            tag_base,
            next_publish_id: 1,
            pending: HashMap::new(),
            subs: Vec::new(),
            last_incarnation: None,
            keepalive: None,
        }
    }

    /// The broker this client talks to.
    pub fn broker(&self) -> NodeId {
        self.broker
    }

    /// Number of QoS 1 publishes awaiting acknowledgement.
    pub fn pending_publishes(&self) -> usize {
        self.pending.len()
    }

    /// Subscriptions this client currently remembers.
    pub fn subscriptions(&self) -> &[(TopicFilter, QoS)] {
        &self.subs
    }

    /// Forgets all in-flight publishes and session state.
    ///
    /// Call from the owning node's `on_restart`: pre-crash retry timers
    /// are gone, so pending entries could never resolve. Remembered
    /// subscriptions are also cleared — a rebooted node re-subscribes
    /// itself, and re-arms the keepalive, as part of its boot path.
    pub fn reset(&mut self) {
        self.pending.clear();
        self.subs.clear();
        self.last_incarnation = None;
        self.keepalive = None;
    }

    /// Starts periodic broker keepalive probes (Ping/Pong).
    ///
    /// Each Pong carries the broker's incarnation number; when it changes
    /// the client re-sends every remembered subscription and surfaces
    /// [`PubSubEvent::BrokerRestarted`]. Without keepalive a subscriber
    /// that survives a broker restart silently stops receiving messages.
    pub fn start_keepalive(&mut self, ctx: &mut Context<'_>, interval: SimDuration) {
        self.keepalive = Some(interval);
        ctx.send(self.broker, PUBSUB_PORT, Packet::Ping.encode());
        ctx.set_timer(interval, TimerTag(self.tag_base));
    }

    /// Subscribes to `filter` with the given delivery guarantee and
    /// remembers the subscription for resumption after a broker restart.
    pub fn subscribe(&mut self, ctx: &mut Context<'_>, filter: TopicFilter, qos: QoS) {
        ctx.send(
            self.broker,
            PUBSUB_PORT,
            Packet::Subscribe {
                filter: filter.clone(),
                qos,
            }
            .encode(),
        );
        if !self.subs.iter().any(|(f, q)| *f == filter && *q == qos) {
            self.subs.push((filter, qos));
        }
    }

    /// Drops all of the node's subscriptions on `filter`.
    pub fn unsubscribe(&mut self, ctx: &mut Context<'_>, filter: TopicFilter) {
        ctx.send(
            self.broker,
            PUBSUB_PORT,
            Packet::Unsubscribe {
                filter: filter.clone(),
            }
            .encode(),
        );
        self.subs.retain(|(f, _)| *f != filter);
    }

    /// Publishes `payload` under `topic`. Returns the publish id; for
    /// QoS 1 the id later appears in [`PubSubEvent::Published`] or
    /// [`PubSubEvent::PublishTimedOut`].
    pub fn publish(
        &mut self,
        ctx: &mut Context<'_>,
        topic: Topic,
        payload: Vec<u8>,
        retain: bool,
        qos: QoS,
    ) -> u64 {
        self.publish_traced(ctx, topic, payload, retain, qos, NO_TRACE)
    }

    /// Like [`PubSubClient::publish`], but stamps the publish with a
    /// flight-recorder trace id that the broker propagates to every
    /// matching delivery (see [`PubSubEvent::Message::trace`]).
    pub fn publish_traced(
        &mut self,
        ctx: &mut Context<'_>,
        topic: Topic,
        payload: Vec<u8>,
        retain: bool,
        qos: QoS,
        trace: TraceId,
    ) -> u64 {
        self.publish_spanned(ctx, topic, payload, retain, qos, trace, NO_SPAN)
    }

    /// Like [`PubSubClient::publish_traced`], but additionally threads a
    /// causal parent span: the broker's `broker.publish` hop becomes a
    /// child of `parent`, so cross-node span trees stay connected
    /// (device sample → proxy ingest → publish → deliveries).
    #[allow(clippy::too_many_arguments)]
    pub fn publish_spanned(
        &mut self,
        ctx: &mut Context<'_>,
        topic: Topic,
        payload: Vec<u8>,
        retain: bool,
        qos: QoS,
        trace: TraceId,
        parent: SpanId,
    ) -> u64 {
        let id = self.next_publish_id;
        self.next_publish_id += 1;
        let bytes = Packet::Publish {
            id,
            topic,
            payload,
            retain,
            qos,
            trace,
            span: parent,
        }
        .encode();
        ctx.send_spanned(self.broker, PUBSUB_PORT, bytes.clone(), trace, parent);
        if qos == QoS::AtLeastOnce {
            self.pending.insert(
                id,
                PendingPublish {
                    bytes,
                    retries_left: MAX_PUBLISH_RETRIES,
                },
            );
            ctx.set_timer(PUBLISH_RETRY, TimerTag(self.tag_base + id));
        }
        id
    }

    /// Feeds an incoming packet through the client. QoS 1 deliveries are
    /// acknowledged automatically.
    pub fn accept(&mut self, ctx: &mut Context<'_>, pkt: &NetPacket) -> Option<PubSubEvent> {
        let decoded = match Packet::decode(&pkt.payload) {
            Ok(p) => p,
            Err(_) => {
                ctx.telemetry().metrics.incr("pubsub.decode_error");
                return None;
            }
        };
        match decoded {
            Packet::Deliver {
                id,
                topic,
                payload,
                qos,
                trace,
                span: deliver_span,
            } => {
                if qos == QoS::AtLeastOnce {
                    ctx.send(pkt.src, PUBSUB_PORT, Packet::DeliverAck { id }.encode());
                }
                let span = if trace != NO_TRACE {
                    ctx.span_hop("sub.receive", trace, deliver_span, format!("topic={topic}"))
                } else {
                    NO_SPAN
                };
                Some(PubSubEvent::Message {
                    topic,
                    payload,
                    trace,
                    span,
                })
            }
            Packet::PubAck { id } => {
                self.pending.remove(&id)?;
                Some(PubSubEvent::Published { id })
            }
            Packet::Pong { incarnation } => {
                let restarted = self
                    .last_incarnation
                    .is_some_and(|prev| prev != incarnation);
                self.last_incarnation = Some(incarnation);
                if !restarted {
                    return None;
                }
                // The broker lost its subscription table; resume the
                // session by re-sending everything we remember.
                ctx.telemetry().metrics.incr("pubsub.resubscribe");
                for (filter, qos) in self.subs.clone() {
                    ctx.send(
                        self.broker,
                        PUBSUB_PORT,
                        Packet::Subscribe { filter, qos }.encode(),
                    );
                }
                Some(PubSubEvent::BrokerRestarted { incarnation })
            }
            _ => None,
        }
    }

    /// Whether a timer tag belongs to this client.
    pub fn owns_tag(&self, tag: TimerTag) -> bool {
        tag.0.checked_sub(self.tag_base).is_some_and(|id| {
            (id == 0 && self.keepalive.is_some()) || self.pending.contains_key(&id)
        })
    }

    /// Feeds a fired timer through the client.
    pub fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) -> Option<PubSubEvent> {
        let id = tag.0.checked_sub(self.tag_base)?;
        if id == 0 {
            if let Some(interval) = self.keepalive {
                ctx.send(self.broker, PUBSUB_PORT, Packet::Ping.encode());
                ctx.set_timer(interval, TimerTag(self.tag_base));
            }
            return None;
        }
        let pending = self.pending.get_mut(&id)?;
        if pending.retries_left == 0 {
            self.pending.remove(&id);
            return Some(PubSubEvent::PublishTimedOut { id });
        }
        pending.retries_left -= 1;
        let bytes = pending.bytes.clone();
        ctx.send(self.broker, PUBSUB_PORT, bytes);
        ctx.set_timer(PUBLISH_RETRY, TimerTag(self.tag_base + id));
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BrokerNode;
    use simnet::{LinkModel, Node, SimConfig, Simulator};

    /// A test node that subscribes on start and records everything.
    struct Subscriber {
        client: PubSubClient,
        filter: TopicFilter,
        qos: QoS,
        messages: Vec<(Topic, Vec<u8>)>,
    }

    impl Node for Subscriber {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            self.client.subscribe(ctx, self.filter.clone(), self.qos);
        }
        fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: NetPacket) {
            if let Some(PubSubEvent::Message { topic, payload, .. }) = self.client.accept(ctx, &pkt)
            {
                self.messages.push((topic, payload));
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
            self.client.on_timer(ctx, tag);
        }
    }

    /// A test node that publishes a fixed message on start.
    struct Publisher {
        client: PubSubClient,
        topic: Topic,
        payload: Vec<u8>,
        retain: bool,
        qos: QoS,
        acks: Vec<u64>,
        timeouts: Vec<u64>,
    }

    impl Node for Publisher {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            self.client.publish(
                ctx,
                self.topic.clone(),
                self.payload.clone(),
                self.retain,
                self.qos,
            );
        }
        fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: NetPacket) {
            match self.client.accept(ctx, &pkt) {
                Some(PubSubEvent::Published { id }) => self.acks.push(id),
                Some(PubSubEvent::PublishTimedOut { id }) => self.timeouts.push(id),
                _ => {}
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
            if let Some(PubSubEvent::PublishTimedOut { id }) = self.client.on_timer(ctx, tag) {
                self.timeouts.push(id);
            }
        }
    }

    fn topic(s: &str) -> Topic {
        Topic::new(s).unwrap()
    }

    fn filter(s: &str) -> TopicFilter {
        TopicFilter::new(s).unwrap()
    }

    fn build(link: LinkModel) -> (Simulator, simnet::NodeId) {
        let mut sim = Simulator::new(SimConfig {
            seed: 42,
            default_link: link,
        });
        let broker = sim.add_node("broker", BrokerNode::new());
        (sim, broker)
    }

    #[test]
    fn publish_reaches_matching_subscribers() {
        let (mut sim, broker) = build(LinkModel::lan());
        let sub_a = sim.add_node(
            "sub_a",
            Subscriber {
                client: PubSubClient::new(broker, 100),
                filter: filter("d1/#"),
                qos: QoS::AtMostOnce,
                messages: vec![],
            },
        );
        let sub_b = sim.add_node(
            "sub_b",
            Subscriber {
                client: PubSubClient::new(broker, 100),
                filter: filter("d2/#"),
                qos: QoS::AtMostOnce,
                messages: vec![],
            },
        );
        sim.run_for(SimDuration::from_millis(100));
        let _pub = sim.add_node(
            "pub",
            Publisher {
                client: PubSubClient::new(broker, 100),
                topic: topic("d1/b1/temp"),
                payload: b"21.5".to_vec(),
                retain: false,
                qos: QoS::AtMostOnce,
                acks: vec![],
                timeouts: vec![],
            },
        );
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(
            sim.node_ref::<Subscriber>(sub_a).unwrap().messages,
            vec![(topic("d1/b1/temp"), b"21.5".to_vec())]
        );
        assert!(sim
            .node_ref::<Subscriber>(sub_b)
            .unwrap()
            .messages
            .is_empty());
        let stats = sim.node_ref::<BrokerNode>(broker).unwrap().stats();
        assert_eq!(stats.published, 1);
        assert_eq!(stats.delivered, 1);
    }

    #[test]
    fn qos1_publish_is_acked() {
        let (mut sim, broker) = build(LinkModel::lan());
        let p = sim.add_node(
            "pub",
            Publisher {
                client: PubSubClient::new(broker, 100),
                topic: topic("d1/x"),
                payload: b"1".to_vec(),
                retain: false,
                qos: QoS::AtLeastOnce,
                acks: vec![],
                timeouts: vec![],
            },
        );
        sim.run_for(SimDuration::from_secs(1));
        let p = sim.node_ref::<Publisher>(p).unwrap();
        assert_eq!(p.acks, vec![1], "publish ids start at 1");
        assert_eq!(p.client.pending_publishes(), 0);
    }

    #[test]
    fn qos1_delivery_retries_on_loss() {
        // 70% loss: retries push through eventually (or drop after 3).
        let (mut sim, broker) = build(LinkModel::builder().loss(0.5).build());
        let s = sim.add_node(
            "sub",
            Subscriber {
                client: PubSubClient::new(broker, 100),
                filter: filter("#"),
                qos: QoS::AtLeastOnce,
                messages: vec![],
            },
        );
        sim.run_for(SimDuration::from_millis(100));
        for i in 0..20 {
            sim.add_node(
                format!("pub{i}"),
                Publisher {
                    client: PubSubClient::new(broker, 100),
                    topic: topic("d1/x"),
                    payload: vec![i],
                    retain: false,
                    qos: QoS::AtLeastOnce,
                    acks: vec![],
                    timeouts: vec![],
                },
            );
        }
        sim.run_for(SimDuration::from_secs(60));
        let stats = sim.node_ref::<BrokerNode>(broker).unwrap().stats();
        let sub = sim.node_ref::<Subscriber>(s).unwrap();
        // With 50% loss and publisher retries, most publishes arrive; all
        // that the broker accepted are either delivered+acked or dropped.
        assert!(stats.published > 0);
        assert!(stats.retries > 0, "loss must trigger retries: {stats:?}");
        assert!(!sub.messages.is_empty());
        assert_eq!(
            sim.node_ref::<BrokerNode>(broker)
                .unwrap()
                .pending_deliveries(),
            0,
            "all deliveries settle within the horizon"
        );
    }

    #[test]
    fn retained_message_reaches_late_subscriber() {
        let (mut sim, broker) = build(LinkModel::lan());
        let _pub = sim.add_node(
            "pub",
            Publisher {
                client: PubSubClient::new(broker, 100),
                topic: topic("d1/b1/temp"),
                payload: b"latest".to_vec(),
                retain: true,
                qos: QoS::AtMostOnce,
                acks: vec![],
                timeouts: vec![],
            },
        );
        sim.run_for(SimDuration::from_secs(1));
        let late = sim.add_node(
            "late",
            Subscriber {
                client: PubSubClient::new(broker, 100),
                filter: filter("d1/+/temp"),
                qos: QoS::AtMostOnce,
                messages: vec![],
            },
        );
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(
            sim.node_ref::<Subscriber>(late).unwrap().messages,
            vec![(topic("d1/b1/temp"), b"latest".to_vec())]
        );
        assert_eq!(
            sim.node_ref::<BrokerNode>(broker).unwrap().stats().retained,
            1
        );
    }

    #[test]
    fn empty_retained_payload_clears() {
        let (mut sim, broker) = build(LinkModel::lan());
        sim.add_node(
            "pub1",
            Publisher {
                client: PubSubClient::new(broker, 100),
                topic: topic("d1/t"),
                payload: b"x".to_vec(),
                retain: true,
                qos: QoS::AtMostOnce,
                acks: vec![],
                timeouts: vec![],
            },
        );
        sim.run_for(SimDuration::from_secs(1));
        sim.add_node(
            "pub2",
            Publisher {
                client: PubSubClient::new(broker, 100),
                topic: topic("d1/t"),
                payload: vec![],
                retain: true,
                qos: QoS::AtMostOnce,
                acks: vec![],
                timeouts: vec![],
            },
        );
        sim.run_for(SimDuration::from_secs(1));
        let late = sim.add_node(
            "late",
            Subscriber {
                client: PubSubClient::new(broker, 100),
                filter: filter("#"),
                qos: QoS::AtMostOnce,
                messages: vec![],
            },
        );
        sim.run_for(SimDuration::from_secs(1));
        assert!(sim
            .node_ref::<Subscriber>(late)
            .unwrap()
            .messages
            .is_empty());
        assert_eq!(
            sim.node_ref::<BrokerNode>(broker).unwrap().stats().retained,
            0
        );
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        struct FickleSubscriber {
            client: PubSubClient,
            messages: usize,
        }
        impl Node for FickleSubscriber {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                self.client.subscribe(ctx, filter("d1/#"), QoS::AtMostOnce);
                // Unsubscribe shortly after.
                ctx.set_timer(SimDuration::from_millis(500), TimerTag(1));
            }
            fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: NetPacket) {
                if let Some(PubSubEvent::Message { .. }) = self.client.accept(ctx, &pkt) {
                    self.messages += 1;
                }
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
                if tag == TimerTag(1) {
                    self.client.unsubscribe(ctx, filter("d1/#"));
                }
            }
        }
        let (mut sim, broker) = build(LinkModel::lan());
        let s = sim.add_node(
            "fickle",
            FickleSubscriber {
                client: PubSubClient::new(broker, 100),
                messages: 0,
            },
        );
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(
            sim.node_ref::<BrokerNode>(broker)
                .unwrap()
                .subscription_count(),
            0
        );
        sim.add_node(
            "pub",
            Publisher {
                client: PubSubClient::new(broker, 100),
                topic: topic("d1/x"),
                payload: b"1".to_vec(),
                retain: false,
                qos: QoS::AtMostOnce,
                acks: vec![],
                timeouts: vec![],
            },
        );
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.node_ref::<FickleSubscriber>(s).unwrap().messages, 0);
    }

    /// A subscriber with keepalive enabled; records broker restarts.
    struct ResumingSubscriber {
        client: PubSubClient,
        filter: TopicFilter,
        messages: Vec<Vec<u8>>,
        restarts_seen: u32,
    }

    impl Node for ResumingSubscriber {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            self.client
                .subscribe(ctx, self.filter.clone(), QoS::AtLeastOnce);
            self.client.start_keepalive(ctx, SimDuration::from_secs(5));
        }
        fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: NetPacket) {
            match self.client.accept(ctx, &pkt) {
                Some(PubSubEvent::Message { payload, .. }) => self.messages.push(payload),
                Some(PubSubEvent::BrokerRestarted { .. }) => self.restarts_seen += 1,
                _ => {}
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
            self.client.on_timer(ctx, tag);
        }
    }

    #[test]
    fn keepalive_detects_broker_restart_and_resubscribes() {
        let (mut sim, broker) = build(LinkModel::lan());
        let s = sim.add_node(
            "sub",
            ResumingSubscriber {
                client: PubSubClient::new(broker, 100),
                filter: filter("d1/#"),
                messages: vec![],
                restarts_seen: 0,
            },
        );
        sim.run_for(SimDuration::from_secs(10));
        assert_eq!(
            sim.node_ref::<BrokerNode>(broker)
                .unwrap()
                .subscription_count(),
            1
        );
        // Crash and reboot the broker: the subscription table is wiped.
        sim.crash(broker);
        sim.restart(broker, SimDuration::from_secs(1));
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(
            sim.node_ref::<BrokerNode>(broker)
                .unwrap()
                .subscription_count(),
            0,
            "restart wipes subscriptions"
        );
        // Within one keepalive interval the client notices the new
        // incarnation and re-subscribes.
        sim.run_for(SimDuration::from_secs(10));
        let broker_node = sim.node_ref::<BrokerNode>(broker).unwrap();
        assert_eq!(broker_node.subscription_count(), 1, "session resumed");
        assert_eq!(broker_node.incarnation(), 1);
        let sub = sim.node_ref::<ResumingSubscriber>(s).unwrap();
        assert_eq!(sub.restarts_seen, 1);
        // Messages flow again end to end.
        sim.add_node(
            "pub",
            Publisher {
                client: PubSubClient::new(broker, 100),
                topic: topic("d1/after"),
                payload: b"back".to_vec(),
                retain: false,
                qos: QoS::AtLeastOnce,
                acks: vec![],
                timeouts: vec![],
            },
        );
        sim.run_for(SimDuration::from_secs(5));
        let sub = sim.node_ref::<ResumingSubscriber>(s).unwrap();
        assert_eq!(sub.messages, vec![b"back".to_vec()]);
        assert!(sim.telemetry().metrics.counter("pubsub.resubscribe") >= 1);
    }

    #[test]
    fn qos1_accounting_is_conserved_across_a_broker_restart() {
        // Lossy link + broker restart mid-stream: every QoS 1 delivery the
        // broker enqueued must end up acked, dropped, or still pending.
        let (mut sim, broker) = build(LinkModel::builder().loss(0.3).build());
        sim.add_node(
            "sub",
            ResumingSubscriber {
                client: PubSubClient::new(broker, 100),
                filter: filter("#"),
                messages: vec![],
                restarts_seen: 0,
            },
        );
        sim.run_for(SimDuration::from_secs(2));
        for i in 0..10 {
            sim.add_node(
                format!("pub{i}"),
                Publisher {
                    client: PubSubClient::new(broker, 100),
                    topic: topic("d1/x"),
                    payload: vec![i],
                    retain: false,
                    qos: QoS::AtLeastOnce,
                    acks: vec![],
                    timeouts: vec![],
                },
            );
        }
        sim.run_for(SimDuration::from_secs(3));
        sim.crash(broker);
        sim.restart(broker, SimDuration::from_secs(2));
        sim.run_for(SimDuration::from_secs(60));
        let b = sim.node_ref::<BrokerNode>(broker).unwrap();
        let stats = b.stats();
        assert!(stats.qos1_enqueued > 0);
        assert_eq!(
            stats.qos1_enqueued,
            stats.acked + stats.dropped + b.pending_deliveries() as u64,
            "conservation violated: {stats:?}"
        );
    }

    #[test]
    fn malformed_packets_are_counted_not_ignored() {
        struct Garbler {
            broker: NodeId,
        }
        impl Node for Garbler {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send(self.broker, PUBSUB_PORT, vec![0xFF, 0x00, 0x01]);
            }
            fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: NetPacket) {}
        }
        let (mut sim, broker) = build(LinkModel::lan());
        sim.add_node("garbler", Garbler { broker });
        sim.run_for(SimDuration::from_secs(1));
        let stats = sim.node_ref::<BrokerNode>(broker).unwrap().stats();
        assert_eq!(stats.decode_errors, 1);
        assert_eq!(sim.telemetry().metrics.counter("pubsub.decode_error"), 1);
    }

    #[test]
    fn publish_times_out_without_broker() {
        // Broker that never answers: black-hole node.
        struct BlackHole;
        impl Node for BlackHole {
            fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: NetPacket) {}
        }
        let mut sim = Simulator::new(SimConfig::default());
        let hole = sim.add_node("hole", BlackHole);
        let p = sim.add_node(
            "pub",
            Publisher {
                client: PubSubClient::new(hole, 100),
                topic: topic("d1/x"),
                payload: b"1".to_vec(),
                retain: false,
                qos: QoS::AtLeastOnce,
                acks: vec![],
                timeouts: vec![],
            },
        );
        sim.run_for(SimDuration::from_secs(30));
        let p = sim.node_ref::<Publisher>(p).unwrap();
        assert!(p.acks.is_empty());
        assert_eq!(p.timeouts, vec![1]);
    }
}
