//! Topics and wildcard filters.
//!
//! Grammar (MQTT-inspired): a topic is one or more non-empty segments
//! joined by `/`; segments of topics never contain `+`, `#` or
//! whitespace. A filter may use `+` for exactly one segment and `#` as
//! the final segment for the remaining subtree.

use std::fmt;

use crate::PubSubError;

fn valid_segment(seg: &str) -> bool {
    !seg.is_empty() && !seg.contains(['+', '#']) && !seg.chars().any(char::is_whitespace)
}

/// Single-pass byte-level topic check, semantically identical to
/// `text.split('/').all(valid_segment)`. ASCII text (the overwhelmingly
/// common case on the decode hot path) is judged in one scan; the first
/// non-ASCII byte falls back to the char-level walk, which knows about
/// Unicode whitespace.
fn topic_segments_ok(text: &str) -> bool {
    // One branch-free pass, accumulated bitwise so the compiler can
    // unroll: forbidden bytes, empty segments (a leading, doubled or
    // trailing '/' — the sentinel makes the leading case a double), and
    // non-ASCII detection all fold into two flags.
    let mut bad = false;
    let mut non_ascii = false;
    let mut prev = b'/';
    for &b in text.as_bytes() {
        bad |= matches!(b, b'+' | b'#' | b' ' | b'\t'..=b'\r') | ((prev == b'/') & (b == b'/'));
        non_ascii |= b >= 0x80;
        prev = b;
    }
    if non_ascii {
        // Non-ASCII whitespace needs the char-level walk.
        return text.split('/').all(valid_segment);
    }
    !(bad | (prev == b'/'))
}

/// A concrete topic, e.g. `district/d1/building/b7/temperature`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Topic {
    text: String,
}

impl Topic {
    /// Parses a topic.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::InvalidTopic`] for empty topics, empty
    /// segments, wildcards or whitespace.
    pub fn new(text: impl Into<String>) -> Result<Self, PubSubError> {
        let text = text.into();
        match Topic::validate(&text) {
            Ok(()) => Ok(Topic { text }),
            Err(reason) => Err(PubSubError::InvalidTopic {
                input: text,
                reason,
            }),
        }
    }

    /// Checks `text` against the topic grammar without allocating —
    /// shared by [`Topic::new`] and the zero-copy [`TopicRef::new`].
    pub(crate) fn validate(text: &str) -> Result<(), &'static str> {
        if text.is_empty() {
            return Err("empty topic");
        }
        if text.len() > 512 {
            return Err("topic longer than 512 bytes");
        }
        if !topic_segments_ok(text) {
            return Err("segments must be non-empty and free of '+', '#' and whitespace");
        }
        Ok(())
    }

    /// The topic text.
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// The segments.
    pub fn segments(&self) -> impl Iterator<Item = &str> {
        self.text.split('/')
    }
}

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl std::str::FromStr for Topic {
    type Err = PubSubError;
    fn from_str(s: &str) -> Result<Self, PubSubError> {
        Topic::new(s)
    }
}

/// A borrowed, validated topic: the zero-copy counterpart of [`Topic`].
///
/// Produced by the borrowed wire decoder
/// ([`PacketRef`](crate::wire::PacketRef)) as a view straight into the
/// receive buffer. Validation runs once at construction; materializing
/// an owned [`Topic`] via [`TopicRef::to_topic`] is the *only*
/// allocation on the hot publish path, and the broker calls it solely
/// where it must retain the topic (retained messages, bridge batches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TopicRef<'a> {
    text: &'a str,
}

impl<'a> TopicRef<'a> {
    /// Validates `text` as a topic without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::InvalidTopic`] under exactly the same
    /// grammar as [`Topic::new`].
    pub fn new(text: &'a str) -> Result<Self, PubSubError> {
        match Topic::validate(text) {
            Ok(()) => Ok(TopicRef { text }),
            Err(reason) => Err(PubSubError::InvalidTopic {
                input: text.to_owned(),
                reason,
            }),
        }
    }

    /// The topic text.
    pub fn as_str(self) -> &'a str {
        self.text
    }

    /// The segments.
    pub fn segments(self) -> impl Iterator<Item = &'a str> {
        self.text.split('/')
    }

    /// Materializes an owned [`Topic`], skipping re-validation.
    pub fn to_topic(self) -> Topic {
        Topic {
            text: self.text.to_owned(),
        }
    }
}

impl<'a> From<&'a Topic> for TopicRef<'a> {
    fn from(topic: &'a Topic) -> Self {
        TopicRef { text: &topic.text }
    }
}

impl PartialEq<Topic> for TopicRef<'_> {
    fn eq(&self, other: &Topic) -> bool {
        self.text == other.text
    }
}

impl fmt::Display for TopicRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.text)
    }
}

/// A subscription filter, e.g. `district/+/building/#`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TopicFilter {
    text: String,
}

impl TopicFilter {
    /// Parses a filter.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::InvalidFilter`] for empty filters, empty
    /// segments, a non-final `#`, or segments mixing wildcards with text.
    pub fn new(text: impl Into<String>) -> Result<Self, PubSubError> {
        let text = text.into();
        match TopicFilter::validate(&text) {
            Ok(()) => Ok(TopicFilter { text }),
            Err(reason) => Err(PubSubError::InvalidFilter {
                input: text,
                reason,
            }),
        }
    }

    /// Checks `text` against the filter grammar without allocating —
    /// shared by [`TopicFilter::new`] and [`TopicFilterRef::new`].
    pub(crate) fn validate(text: &str) -> Result<(), &'static str> {
        if text.is_empty() {
            return Err("empty filter");
        }
        if text.len() > 512 {
            return Err("filter longer than 512 bytes");
        }
        let mut segments = text.split('/').peekable();
        while let Some(seg) = segments.next() {
            match seg {
                "+" => {}
                "#" => {
                    if segments.peek().is_some() {
                        return Err("'#' must be the final segment");
                    }
                }
                other => {
                    if !valid_segment(other) {
                        return Err("segments must be non-empty, wildcard-free or exactly '+'/'#'");
                    }
                }
            }
        }
        Ok(())
    }

    /// The filter text.
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// The segments.
    pub fn segments(&self) -> impl Iterator<Item = &str> {
        self.text.split('/')
    }

    /// Whether `topic` matches this filter.
    pub fn matches(&self, topic: &Topic) -> bool {
        let mut filter = self.text.split('/');
        let mut topic_segs = topic.segments();
        loop {
            match (filter.next(), topic_segs.next()) {
                (None, None) => return true,
                (Some("#"), _) => return true,
                (Some("+"), Some(_)) => {}
                (Some(f), Some(t)) if f == t => {}
                _ => return false,
            }
        }
    }
}

impl fmt::Display for TopicFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl std::str::FromStr for TopicFilter {
    type Err = PubSubError;
    fn from_str(s: &str) -> Result<Self, PubSubError> {
        TopicFilter::new(s)
    }
}

impl From<Topic> for TopicFilter {
    /// Every topic is a valid (wildcard-free) filter.
    fn from(topic: Topic) -> Self {
        TopicFilter { text: topic.text }
    }
}

/// A borrowed, validated filter: the zero-copy counterpart of
/// [`TopicFilter`], produced by the borrowed wire decoder for
/// subscription-control packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TopicFilterRef<'a> {
    text: &'a str,
}

impl<'a> TopicFilterRef<'a> {
    /// Validates `text` as a filter without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::InvalidFilter`] under exactly the same
    /// grammar as [`TopicFilter::new`].
    pub fn new(text: &'a str) -> Result<Self, PubSubError> {
        match TopicFilter::validate(text) {
            Ok(()) => Ok(TopicFilterRef { text }),
            Err(reason) => Err(PubSubError::InvalidFilter {
                input: text.to_owned(),
                reason,
            }),
        }
    }

    /// The filter text.
    pub fn as_str(self) -> &'a str {
        self.text
    }

    /// Materializes an owned [`TopicFilter`], skipping re-validation.
    pub fn to_filter(self) -> TopicFilter {
        TopicFilter {
            text: self.text.to_owned(),
        }
    }
}

impl<'a> From<&'a TopicFilter> for TopicFilterRef<'a> {
    fn from(filter: &'a TopicFilter) -> Self {
        TopicFilterRef { text: &filter.text }
    }
}

impl fmt::Display for TopicFilterRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.text)
    }
}

/// Typed builder/parser for the measurement topic grammar used across
/// the framework:
///
/// ```text
/// district/<district>/entity/<entity>/device/<device>/<quantity>
/// ```
///
/// Device proxies publish on these topics and the aggregation /
/// monitoring layers subscribe to them; keeping the grammar in one
/// place means producers and consumers cannot drift apart.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MeasurementTopic {
    /// District identifier segment.
    pub district: String,
    /// Entity (building / network) identifier segment.
    pub entity: String,
    /// Device identifier segment.
    pub device: String,
    /// Quantity name segment, e.g. `temperature`.
    pub quantity: String,
}

impl MeasurementTopic {
    /// Builds the typed topic from its segments.
    pub fn new(
        district: impl Into<String>,
        entity: impl Into<String>,
        device: impl Into<String>,
        quantity: impl Into<String>,
    ) -> Self {
        MeasurementTopic {
            district: district.into(),
            entity: entity.into(),
            device: device.into(),
            quantity: quantity.into(),
        }
    }

    /// Renders the concrete topic.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::InvalidTopic`] when any segment violates
    /// the topic grammar (empty, wildcard or whitespace).
    pub fn topic(&self) -> Result<Topic, PubSubError> {
        Topic::new(format!(
            "district/{}/entity/{}/device/{}/{}",
            self.district, self.entity, self.device, self.quantity
        ))
    }

    /// Parses a topic back into its typed form; `None` when the topic
    /// does not follow the measurement grammar.
    pub fn parse(topic: &Topic) -> Option<Self> {
        let segs: Vec<&str> = topic.segments().collect();
        match segs.as_slice() {
            ["district", district, "entity", entity, "device", device, quantity] => Some(
                MeasurementTopic::new(*district, *entity, *device, *quantity),
            ),
            _ => None,
        }
    }

    /// Filter matching every measurement published in `district`.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::InvalidFilter`] when `district` is not a
    /// valid segment.
    pub fn district_filter(district: &str) -> Result<TopicFilter, PubSubError> {
        TopicFilter::new(format!("district/{district}/entity/+/device/+/+"))
    }

    /// Filter matching every quantity published by one device in
    /// `district`, regardless of which entity it sits under.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::InvalidFilter`] when a segment is invalid.
    pub fn device_filter(district: &str, device: &str) -> Result<TopicFilter, PubSubError> {
        TopicFilter::new(format!("district/{district}/entity/+/device/{device}/#"))
    }
}

impl fmt::Display for MeasurementTopic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "district/{}/entity/{}/device/{}/{}",
            self.district, self.entity, self.device, self.quantity
        )
    }
}

/// Scope of a rollup topic: the whole district, or one entity within it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RollupScope {
    /// District-wide rollup (all entities merged).
    District,
    /// Rollup for a single entity (building / network).
    Entity(String),
}

/// Typed builder/parser for the aggregation rollup topic grammar:
///
/// ```text
/// district/<district>/agg/district/<quantity>/<window_millis>
/// district/<district>/agg/entity/<entity>/<quantity>/<window_millis>
/// ```
///
/// Aggregators publish retained rollups on these topics so that late
/// subscribers immediately see the latest closed window.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RollupTopic {
    /// District identifier segment.
    pub district: String,
    /// District-wide or per-entity scope.
    pub scope: RollupScope,
    /// Quantity name segment, e.g. `temperature`.
    pub quantity: String,
    /// Window size in milliseconds (strictly positive).
    pub window_millis: i64,
}

impl RollupTopic {
    /// District-wide rollup topic.
    pub fn district(
        district: impl Into<String>,
        quantity: impl Into<String>,
        window_millis: i64,
    ) -> Self {
        RollupTopic {
            district: district.into(),
            scope: RollupScope::District,
            quantity: quantity.into(),
            window_millis,
        }
    }

    /// Per-entity rollup topic.
    pub fn entity(
        district: impl Into<String>,
        entity: impl Into<String>,
        quantity: impl Into<String>,
        window_millis: i64,
    ) -> Self {
        RollupTopic {
            district: district.into(),
            scope: RollupScope::Entity(entity.into()),
            quantity: quantity.into(),
            window_millis,
        }
    }

    /// Renders the concrete topic.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::InvalidTopic`] when a segment violates the
    /// grammar or the window is not strictly positive.
    pub fn topic(&self) -> Result<Topic, PubSubError> {
        if self.window_millis <= 0 {
            return Err(PubSubError::InvalidTopic {
                input: self.to_string(),
                reason: "rollup window must be strictly positive",
            });
        }
        Topic::new(self.to_string())
    }

    /// Parses a topic back into its typed form; `None` when the topic
    /// does not follow the rollup grammar (including non-numeric or
    /// non-positive windows).
    pub fn parse(topic: &Topic) -> Option<Self> {
        let segs: Vec<&str> = topic.segments().collect();
        let (district, scope, quantity, window) = match segs.as_slice() {
            ["district", district, "agg", "district", quantity, window] => {
                (*district, RollupScope::District, *quantity, *window)
            }
            ["district", district, "agg", "entity", entity, quantity, window] => (
                *district,
                RollupScope::Entity((*entity).to_owned()),
                *quantity,
                *window,
            ),
            _ => return None,
        };
        let window_millis: i64 = window.parse().ok().filter(|w| *w > 0)?;
        Some(RollupTopic {
            district: district.to_owned(),
            scope,
            quantity: quantity.to_owned(),
            window_millis,
        })
    }

    /// Filter matching every rollup published for `district`.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::InvalidFilter`] when `district` is not a
    /// valid segment.
    pub fn district_filter(district: &str) -> Result<TopicFilter, PubSubError> {
        TopicFilter::new(format!("district/{district}/agg/#"))
    }
}

impl fmt::Display for RollupTopic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.scope {
            RollupScope::District => write!(
                f,
                "district/{}/agg/district/{}/{}",
                self.district, self.quantity, self.window_millis
            ),
            RollupScope::Entity(entity) => write!(
                f,
                "district/{}/agg/entity/{}/{}/{}",
                self.district, entity, self.quantity, self.window_millis
            ),
        }
    }
}

/// A subscription trie mapping filters to subscriber values, answering
/// "who matches this topic" in time proportional to the topic depth
/// rather than the subscription count (ablation target of experiment E8).
#[derive(Debug, Clone)]
pub struct SubscriptionTrie<T> {
    root: TrieNode<T>,
    len: usize,
}

#[derive(Debug, Clone)]
struct TrieNode<T> {
    children: std::collections::HashMap<String, TrieNode<T>>,
    one_level: Option<Box<TrieNode<T>>>,
    subtree: Vec<T>,
    here: Vec<T>,
}

impl<T> Default for TrieNode<T> {
    fn default() -> Self {
        TrieNode {
            children: std::collections::HashMap::new(),
            one_level: None,
            subtree: Vec::new(),
            here: Vec::new(),
        }
    }
}

impl<T: PartialEq> SubscriptionTrie<T> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        SubscriptionTrie {
            root: TrieNode::default(),
            len: 0,
        }
    }

    /// Number of subscriptions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the trie holds no subscriptions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a subscription.
    pub fn insert(&mut self, filter: &TopicFilter, value: T) {
        let mut node = &mut self.root;
        for seg in filter.segments() {
            match seg {
                "#" => {
                    node.subtree.push(value);
                    self.len += 1;
                    return;
                }
                "+" => {
                    node = node.one_level.get_or_insert_with(Default::default);
                }
                seg => {
                    node = node.children.entry(seg.to_owned()).or_default();
                }
            }
        }
        node.here.push(value);
        self.len += 1;
    }

    /// Removes one subscription equal to `value` under `filter`;
    /// returns whether something was removed.
    pub fn remove(&mut self, filter: &TopicFilter, value: &T) -> bool {
        fn remove_from<T: PartialEq>(list: &mut Vec<T>, value: &T) -> bool {
            if let Some(i) = list.iter().position(|v| v == value) {
                list.remove(i);
                true
            } else {
                false
            }
        }
        let mut node = &mut self.root;
        for seg in filter.segments() {
            match seg {
                "#" => {
                    if remove_from(&mut node.subtree, value) {
                        self.len -= 1;
                        return true;
                    }
                    return false;
                }
                "+" => match node.one_level.as_deref_mut() {
                    Some(next) => node = next,
                    None => return false,
                },
                seg => match node.children.get_mut(seg) {
                    Some(next) => node = next,
                    None => return false,
                },
            }
        }
        if remove_from(&mut node.here, value) {
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Removes every subscription under exactly `filter` whose value
    /// satisfies `predicate`; returns how many were removed.
    pub fn remove_where(
        &mut self,
        filter: &TopicFilter,
        mut predicate: impl FnMut(&T) -> bool,
    ) -> usize {
        let mut node = &mut self.root;
        for seg in filter.segments() {
            match seg {
                "#" => {
                    let before = node.subtree.len();
                    node.subtree.retain(|v| !predicate(v));
                    let removed = before - node.subtree.len();
                    self.len -= removed;
                    return removed;
                }
                "+" => match node.one_level.as_deref_mut() {
                    Some(next) => node = next,
                    None => return 0,
                },
                seg => match node.children.get_mut(seg) {
                    Some(next) => node = next,
                    None => return 0,
                },
            }
        }
        let before = node.here.len();
        node.here.retain(|v| !predicate(v));
        let removed = before - node.here.len();
        self.len -= removed;
        removed
    }

    /// Collects the values of every subscription matching `topic`.
    pub fn matches<'a>(&'a self, topic: &Topic) -> Vec<&'a T> {
        self.matches_str(topic.as_str())
    }

    /// Like [`SubscriptionTrie::matches`], but on raw topic text — the
    /// zero-copy wire path hands in borrowed topics without ever
    /// materializing a [`Topic`]. The caller guarantees `topic` is
    /// grammatically valid (segments of a validated [`TopicRef`]).
    pub fn matches_str<'a>(&'a self, topic: &str) -> Vec<&'a T> {
        let segments: Vec<&str> = topic.split('/').collect();
        let mut out = Vec::new();
        walk(&self.root, &segments, &mut out);
        out
    }
}

impl<T: PartialEq> Default for SubscriptionTrie<T> {
    fn default() -> Self {
        SubscriptionTrie::new()
    }
}

fn walk<'a, T>(node: &'a TrieNode<T>, rest: &[&str], out: &mut Vec<&'a T>) {
    out.extend(node.subtree.iter());
    match rest.split_first() {
        None => out.extend(node.here.iter()),
        Some((seg, tail)) => {
            if let Some(child) = node.children.get(*seg) {
                walk(child, tail, out);
            }
            if let Some(plus) = &node.one_level {
                walk(plus, tail, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Topic {
        Topic::new(s).unwrap()
    }

    fn f(s: &str) -> TopicFilter {
        TopicFilter::new(s).unwrap()
    }

    #[test]
    fn fast_segment_scan_agrees_with_reference_walk() {
        // The branch-free byte scan on the decode hot path must agree
        // with the segment-by-segment reference on every input,
        // including edge '/', wildcard, whitespace (ASCII and Unicode)
        // and control-character placements.
        let mut rng = simnet::rng::DeterministicRng::seed_from(0x70_71C);
        let alphabet: Vec<char> = "ab/+# \t\u{0}\u{1}\u{a0}\u{2028}é".chars().collect();
        for _ in 0..20_000 {
            let len = rng.next_bounded(12) as usize;
            let text: String = (0..len)
                .map(|_| alphabet[rng.next_bounded(alphabet.len() as u64) as usize])
                .collect();
            if text.is_empty() {
                continue;
            }
            assert_eq!(
                topic_segments_ok(&text),
                text.split('/').all(valid_segment),
                "scan and reference disagree on {text:?}"
            );
        }
    }

    #[test]
    fn topic_grammar() {
        assert!(Topic::new("a/b/c").is_ok());
        assert!(Topic::new("a").is_ok());
        for bad in ["", "/a", "a/", "a//b", "a/+/b", "a/#", "a b", "a\t"] {
            assert!(Topic::new(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn filter_grammar() {
        for ok in ["a/b", "+", "#", "a/+/c", "a/#", "+/+/#"] {
            assert!(TopicFilter::new(ok).is_ok(), "{ok:?}");
        }
        for bad in ["", "a/#/b", "#/a", "a+/b", "a/b#", "a//#", "a b/#"] {
            assert!(TopicFilter::new(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn matching_semantics() {
        let cases = [
            ("a/b/c", "a/b/c", true),
            ("a/b/c", "a/b", false),
            ("a/b", "a/b/c", false),
            ("a/+/c", "a/b/c", true),
            ("a/+/c", "a/b/d", false),
            ("a/#", "a/b/c", true),
            ("a/#", "a", true), // '#' also matches the parent level
            ("#", "anything/at/all", true),
            ("+", "one", true),
            ("+", "one/two", false),
            ("+/+/#", "a/b", true), // '#' covers the parent level too
            ("+/+/#", "a", false),
            ("+/+/#", "a/b/c/d", true),
        ];
        for (filter, topic, expected) in cases {
            assert_eq!(
                f(filter).matches(&t(topic)),
                expected,
                "{filter} vs {topic}"
            );
        }
    }

    #[test]
    fn topic_is_a_filter() {
        let filter: TopicFilter = t("a/b").into();
        assert!(filter.matches(&t("a/b")));
        assert!(!filter.matches(&t("a/c")));
    }

    #[test]
    fn trie_agrees_with_linear_matching() {
        let filters = [
            "district/+/building/+/temperature",
            "district/d1/#",
            "district/d2/#",
            "#",
            "district/d1/building/b1/power",
            "+/+/building/b2/#",
        ];
        let topics = [
            "district/d1/building/b1/temperature",
            "district/d1/building/b1/power",
            "district/d2/building/b2/co2",
            "other/x",
            "district/d1",
        ];
        let mut trie = SubscriptionTrie::new();
        for (i, text) in filters.iter().enumerate() {
            trie.insert(&f(text), i);
        }
        assert_eq!(trie.len(), filters.len());
        for topic in topics {
            let topic = t(topic);
            let mut from_trie: Vec<usize> = trie.matches(&topic).into_iter().copied().collect();
            let mut linear: Vec<usize> = filters
                .iter()
                .enumerate()
                .filter(|(_, text)| f(text).matches(&topic))
                .map(|(i, _)| i)
                .collect();
            from_trie.sort_unstable();
            linear.sort_unstable();
            assert_eq!(from_trie, linear, "{topic}");
        }
    }

    #[test]
    fn trie_remove() {
        let mut trie = SubscriptionTrie::new();
        trie.insert(&f("a/#"), 1);
        trie.insert(&f("a/+"), 2);
        trie.insert(&f("a/b"), 3);
        assert_eq!(trie.matches(&t("a/b")).len(), 3);
        assert!(trie.remove(&f("a/+"), &2));
        assert!(!trie.remove(&f("a/+"), &2), "double remove is false");
        assert!(!trie.remove(&f("x/y"), &9), "unknown filter is false");
        assert_eq!(trie.matches(&t("a/b")).len(), 2);
        assert_eq!(trie.len(), 2);
    }

    #[test]
    fn measurement_topic_round_trip() {
        let built = MeasurementTopic::new("d1", "b3", "dev-7", "temperature");
        let topic = built.topic().unwrap();
        assert_eq!(
            topic.as_str(),
            "district/d1/entity/b3/device/dev-7/temperature"
        );
        assert_eq!(MeasurementTopic::parse(&topic), Some(built.clone()));
        assert_eq!(built.to_string(), topic.as_str());

        // Filters match exactly the topics the builder produces.
        assert!(MeasurementTopic::district_filter("d1")
            .unwrap()
            .matches(&topic));
        assert!(!MeasurementTopic::district_filter("d2")
            .unwrap()
            .matches(&topic));
        assert!(MeasurementTopic::device_filter("d1", "dev-7")
            .unwrap()
            .matches(&topic));
        assert!(!MeasurementTopic::device_filter("d1", "dev-8")
            .unwrap()
            .matches(&topic));
    }

    #[test]
    fn measurement_topic_rejects_foreign_shapes() {
        for text in [
            "district/d1/entity/b3/device/dev-7", // missing quantity
            "district/d1/entity/b3/device/dev-7/temperature/extra",
            "district/d1/building/b3/device/dev-7/temperature",
            "district/d1/agg/district/temperature/60000",
            "other/d1/entity/b3/device/dev-7/temperature",
        ] {
            assert_eq!(MeasurementTopic::parse(&t(text)), None, "{text}");
        }
        // Invalid segments surface as grammar errors at build time.
        assert!(MeasurementTopic::new("d 1", "b", "dev", "q")
            .topic()
            .is_err());
    }

    #[test]
    fn rollup_topic_round_trip() {
        let district = RollupTopic::district("d1", "temperature", 120_000);
        let topic = district.topic().unwrap();
        assert_eq!(
            topic.as_str(),
            "district/d1/agg/district/temperature/120000"
        );
        assert_eq!(RollupTopic::parse(&topic), Some(district));

        let entity = RollupTopic::entity("d1", "b3", "power", 60_000);
        let topic = entity.topic().unwrap();
        assert_eq!(topic.as_str(), "district/d1/agg/entity/b3/power/60000");
        assert_eq!(RollupTopic::parse(&topic), Some(entity));

        assert!(RollupTopic::district_filter("d1").unwrap().matches(&topic));
        assert!(!RollupTopic::district_filter("d2").unwrap().matches(&topic));
    }

    #[test]
    fn rollup_topic_rejects_foreign_shapes() {
        for text in [
            "district/d1/agg/district/temperature", // missing window
            "district/d1/agg/district/temperature/abc",
            "district/d1/agg/district/temperature/0",
            "district/d1/agg/district/temperature/-5",
            "district/d1/agg/building/b3/power/60000",
            "district/d1/entity/b3/device/dev-7/temperature",
        ] {
            assert_eq!(RollupTopic::parse(&t(text)), None, "{text}");
        }
        assert!(RollupTopic::district("d1", "temperature", 0)
            .topic()
            .is_err());
    }

    #[test]
    fn measurement_and_rollup_grammars_are_disjoint() {
        // An aggregator subscribed to raw measurements must never see
        // its own rollups echoed back, and vice versa.
        let measurement = MeasurementTopic::new("d1", "b3", "dev-7", "temperature")
            .topic()
            .unwrap();
        let rollup = RollupTopic::entity("d1", "b3", "temperature", 60_000)
            .topic()
            .unwrap();
        assert!(!MeasurementTopic::district_filter("d1")
            .unwrap()
            .matches(&rollup));
        assert!(!RollupTopic::district_filter("d1")
            .unwrap()
            .matches(&measurement));
    }

    #[test]
    fn trie_duplicate_subscriptions_coexist() {
        let mut trie = SubscriptionTrie::new();
        trie.insert(&f("a/#"), 7);
        trie.insert(&f("a/#"), 7);
        assert_eq!(trie.matches(&t("a/b")).len(), 2);
        trie.remove(&f("a/#"), &7);
        assert_eq!(trie.matches(&t("a/b")).len(), 1);
    }
}
