//! The middleware error type.

use std::fmt;

/// Errors raised by the publish/subscribe middleware.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PubSubError {
    /// A topic string violated the topic grammar.
    InvalidTopic {
        /// The offending input.
        input: String,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// A filter string violated the filter grammar.
    InvalidFilter {
        /// The offending input.
        input: String,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// A wire packet could not be decoded.
    DecodePacket {
        /// What was wrong.
        reason: &'static str,
    },
}

impl fmt::Display for PubSubError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PubSubError::InvalidTopic { input, reason } => {
                write!(f, "invalid topic {input:?}: {reason}")
            }
            PubSubError::InvalidFilter { input, reason } => {
                write!(f, "invalid filter {input:?}: {reason}")
            }
            PubSubError::DecodePacket { reason } => {
                write!(f, "cannot decode pubsub packet: {reason}")
            }
        }
    }
}

impl std::error::Error for PubSubError {}
