//! The middleware wire protocol.
//!
//! A small tagged binary encoding. Strings are u16-length-prefixed,
//! payloads u32-length-prefixed, integers little-endian.

use simnet::Port;

use crate::{PubSubError, Topic, TopicFilter};

/// The well-known port brokers listen on.
pub const PUBSUB_PORT: Port = Port(7100);

/// Delivery guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum QoS {
    /// Fire-and-forget.
    #[default]
    AtMostOnce,
    /// Acknowledged and retried: at-least-once.
    AtLeastOnce,
}

impl QoS {
    fn byte(self) -> u8 {
        match self {
            QoS::AtMostOnce => 0,
            QoS::AtLeastOnce => 1,
        }
    }

    fn from_byte(b: u8) -> Result<Self, PubSubError> {
        match b {
            0 => Ok(QoS::AtMostOnce),
            1 => Ok(QoS::AtLeastOnce),
            _ => Err(PubSubError::DecodePacket {
                reason: "invalid qos",
            }),
        }
    }
}

/// A middleware wire packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// Client → broker: subscribe to a filter.
    Subscribe {
        /// The filter.
        filter: TopicFilter,
        /// Requested delivery guarantee.
        qos: QoS,
    },
    /// Client → broker: drop a subscription.
    Unsubscribe {
        /// The filter to drop.
        filter: TopicFilter,
    },
    /// Client → broker: publish a message.
    Publish {
        /// Publisher-chosen id, echoed in [`Packet::PubAck`] for QoS 1.
        id: u64,
        /// The topic.
        topic: Topic,
        /// Opaque payload (common-data-format text by convention).
        payload: Vec<u8>,
        /// Whether the broker retains it for future subscribers.
        retain: bool,
        /// Delivery guarantee.
        qos: QoS,
        /// Flight-recorder trace id carried end to end (0 = untraced).
        trace: u64,
    },
    /// Broker → publisher: QoS 1 publish accepted.
    PubAck {
        /// The publisher's id.
        id: u64,
    },
    /// Broker → subscriber: message delivery.
    Deliver {
        /// Broker-chosen delivery id (acked for QoS 1).
        id: u64,
        /// The topic it was published under.
        topic: Topic,
        /// The payload.
        payload: Vec<u8>,
        /// Delivery guarantee of this delivery.
        qos: QoS,
        /// Flight-recorder trace id of the originating publish.
        trace: u64,
    },
    /// Subscriber → broker: QoS 1 delivery received.
    DeliverAck {
        /// The broker's delivery id.
        id: u64,
    },
    /// Client → broker: session keepalive probe.
    Ping,
    /// Broker → client: keepalive answer carrying the broker's
    /// incarnation number, which bumps on every broker restart. A client
    /// that sees the incarnation change knows its subscriptions were
    /// wiped and must re-subscribe.
    Pong {
        /// The broker's current incarnation.
        incarnation: u64,
    },
    /// Broker → peer broker: "I have local subscribers matching this
    /// filter — forward matching publishes to me." Sent whenever a local
    /// subscription appears, and re-sent in full after either end
    /// restarts.
    BridgeAdvertise {
        /// The advertising broker's incarnation.
        incarnation: u64,
        /// The advertised filter.
        filter: TopicFilter,
        /// The strongest QoS any local subscriber asked for.
        qos: QoS,
    },
    /// Broker → peer broker: the last local subscriber on this filter is
    /// gone; stop forwarding.
    BridgeUnadvertise {
        /// The advertising broker's incarnation.
        incarnation: u64,
        /// The filter to withdraw.
        filter: TopicFilter,
    },
    /// Broker → peer broker: a batch of publishes crossing the bridge in
    /// one wire frame (the inter-broker hop pays O(1) frames for N
    /// publishes). Always acked with [`Packet::BridgeBatchAck`]; the
    /// sender retries unacked batches and the receiver dedups on
    /// `batch_id`, so QoS 1 conservation holds across a lossy bridge.
    BridgeBatch {
        /// The sending broker's incarnation.
        incarnation: u64,
        /// Sender-chosen id, unique per (sender, incarnation).
        batch_id: u64,
        /// The batched publishes, in publish order.
        frames: Vec<BridgeFrame>,
    },
    /// Peer broker → broker: batch received (possibly a duplicate).
    BridgeBatchAck {
        /// The sender's batch id.
        batch_id: u64,
    },
    /// Broker → peer broker: "I (re)started under this incarnation."
    /// Prompts the peer to wipe routing state learned from the previous
    /// incarnation and re-advertise its own subscriptions.
    BridgeHello {
        /// The sending broker's current incarnation.
        incarnation: u64,
    },
}

/// One publish inside a [`Packet::BridgeBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BridgeFrame {
    /// The topic it was published under.
    pub topic: Topic,
    /// The payload.
    pub payload: Vec<u8>,
    /// Whether the receiving broker mirrors it as retained.
    pub retain: bool,
    /// The publish's delivery guarantee.
    pub qos: QoS,
    /// Flight-recorder trace id of the originating publish.
    pub trace: u64,
}

/// Hard cap on frames per batch — a decode guard, far above any sane
/// [`BatchPolicy`](simnet::batch::BatchPolicy) flush bound.
const MAX_BRIDGE_FRAMES: usize = 4096;

fn push_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn push_bytes(b: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, PubSubError> {
        let b = self
            .bytes
            .get(self.pos)
            .copied()
            .ok_or(PubSubError::DecodePacket {
                reason: "truncated",
            })?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PubSubError> {
        if self.pos + n > self.bytes.len() {
            return Err(PubSubError::DecodePacket {
                reason: "truncated",
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, PubSubError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len")))
    }

    fn u32(&mut self) -> Result<u32, PubSubError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len")))
    }

    fn u64(&mut self) -> Result<u64, PubSubError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }

    fn string(&mut self) -> Result<String, PubSubError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PubSubError::DecodePacket {
            reason: "invalid utf-8",
        })
    }

    fn bytes_field(&mut self) -> Result<Vec<u8>, PubSubError> {
        let len = self.u32()? as usize;
        if len > 16 * 1024 * 1024 {
            return Err(PubSubError::DecodePacket {
                reason: "implausible payload length",
            });
        }
        Ok(self.take(len)?.to_vec())
    }

    fn finish(&self) -> Result<(), PubSubError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(PubSubError::DecodePacket {
                reason: "trailing bytes",
            })
        }
    }
}

impl Packet {
    /// Encodes the packet.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            Packet::Subscribe { filter, qos } => {
                out.push(1);
                push_str(filter.as_str(), &mut out);
                out.push(qos.byte());
            }
            Packet::Unsubscribe { filter } => {
                out.push(2);
                push_str(filter.as_str(), &mut out);
            }
            Packet::Publish {
                id,
                topic,
                payload,
                retain,
                qos,
                trace,
            } => {
                out.push(3);
                out.extend_from_slice(&id.to_le_bytes());
                push_str(topic.as_str(), &mut out);
                push_bytes(payload, &mut out);
                out.push(u8::from(*retain));
                out.push(qos.byte());
                out.extend_from_slice(&trace.to_le_bytes());
            }
            Packet::PubAck { id } => {
                out.push(4);
                out.extend_from_slice(&id.to_le_bytes());
            }
            Packet::Deliver {
                id,
                topic,
                payload,
                qos,
                trace,
            } => {
                out.push(5);
                out.extend_from_slice(&id.to_le_bytes());
                push_str(topic.as_str(), &mut out);
                push_bytes(payload, &mut out);
                out.push(qos.byte());
                out.extend_from_slice(&trace.to_le_bytes());
            }
            Packet::DeliverAck { id } => {
                out.push(6);
                out.extend_from_slice(&id.to_le_bytes());
            }
            Packet::Ping => {
                out.push(7);
            }
            Packet::Pong { incarnation } => {
                out.push(8);
                out.extend_from_slice(&incarnation.to_le_bytes());
            }
            Packet::BridgeAdvertise {
                incarnation,
                filter,
                qos,
            } => {
                out.push(9);
                out.extend_from_slice(&incarnation.to_le_bytes());
                push_str(filter.as_str(), &mut out);
                out.push(qos.byte());
            }
            Packet::BridgeUnadvertise {
                incarnation,
                filter,
            } => {
                out.push(10);
                out.extend_from_slice(&incarnation.to_le_bytes());
                push_str(filter.as_str(), &mut out);
            }
            Packet::BridgeBatch {
                incarnation,
                batch_id,
                frames,
            } => {
                out.push(11);
                out.extend_from_slice(&incarnation.to_le_bytes());
                out.extend_from_slice(&batch_id.to_le_bytes());
                out.extend_from_slice(&(frames.len() as u16).to_le_bytes());
                for f in frames {
                    push_str(f.topic.as_str(), &mut out);
                    push_bytes(&f.payload, &mut out);
                    out.push(u8::from(f.retain));
                    out.push(f.qos.byte());
                    out.extend_from_slice(&f.trace.to_le_bytes());
                }
            }
            Packet::BridgeBatchAck { batch_id } => {
                out.push(12);
                out.extend_from_slice(&batch_id.to_le_bytes());
            }
            Packet::BridgeHello { incarnation } => {
                out.push(13);
                out.extend_from_slice(&incarnation.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a packet produced by [`Packet::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::DecodePacket`] (or a topic/filter grammar
    /// error) on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Self, PubSubError> {
        let mut c = Cursor { bytes, pos: 0 };
        let packet = match c.u8()? {
            1 => Packet::Subscribe {
                filter: TopicFilter::new(c.string()?)?,
                qos: QoS::from_byte(c.u8()?)?,
            },
            2 => Packet::Unsubscribe {
                filter: TopicFilter::new(c.string()?)?,
            },
            3 => Packet::Publish {
                id: c.u64()?,
                topic: Topic::new(c.string()?)?,
                payload: c.bytes_field()?,
                retain: c.u8()? != 0,
                qos: QoS::from_byte(c.u8()?)?,
                trace: c.u64()?,
            },
            4 => Packet::PubAck { id: c.u64()? },
            5 => Packet::Deliver {
                id: c.u64()?,
                topic: Topic::new(c.string()?)?,
                payload: c.bytes_field()?,
                qos: QoS::from_byte(c.u8()?)?,
                trace: c.u64()?,
            },
            6 => Packet::DeliverAck { id: c.u64()? },
            7 => Packet::Ping,
            8 => Packet::Pong {
                incarnation: c.u64()?,
            },
            9 => Packet::BridgeAdvertise {
                incarnation: c.u64()?,
                filter: TopicFilter::new(c.string()?)?,
                qos: QoS::from_byte(c.u8()?)?,
            },
            10 => Packet::BridgeUnadvertise {
                incarnation: c.u64()?,
                filter: TopicFilter::new(c.string()?)?,
            },
            11 => {
                let incarnation = c.u64()?;
                let batch_id = c.u64()?;
                let count = c.u16()? as usize;
                if count > MAX_BRIDGE_FRAMES {
                    return Err(PubSubError::DecodePacket {
                        reason: "implausible bridge batch size",
                    });
                }
                let mut frames = Vec::with_capacity(count);
                for _ in 0..count {
                    frames.push(BridgeFrame {
                        topic: Topic::new(c.string()?)?,
                        payload: c.bytes_field()?,
                        retain: c.u8()? != 0,
                        qos: QoS::from_byte(c.u8()?)?,
                        trace: c.u64()?,
                    });
                }
                Packet::BridgeBatch {
                    incarnation,
                    batch_id,
                    frames,
                }
            }
            12 => Packet::BridgeBatchAck { batch_id: c.u64()? },
            13 => Packet::BridgeHello {
                incarnation: c.u64()?,
            },
            _ => {
                return Err(PubSubError::DecodePacket {
                    reason: "unknown packet tag",
                })
            }
        };
        c.finish()?;
        Ok(packet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_packets_round_trip() {
        let packets = [
            Packet::Subscribe {
                filter: TopicFilter::new("a/+/#").unwrap(),
                qos: QoS::AtLeastOnce,
            },
            Packet::Unsubscribe {
                filter: TopicFilter::new("a/b").unwrap(),
            },
            Packet::Publish {
                id: 42,
                topic: Topic::new("a/b/c").unwrap(),
                payload: b"{\"v\":1}".to_vec(),
                retain: true,
                qos: QoS::AtMostOnce,
                trace: 9,
            },
            Packet::PubAck { id: 42 },
            Packet::Deliver {
                id: 7,
                topic: Topic::new("a/b/c").unwrap(),
                payload: vec![],
                qos: QoS::AtLeastOnce,
                trace: 0,
            },
            Packet::DeliverAck { id: 7 },
            Packet::Ping,
            Packet::Pong { incarnation: 3 },
            Packet::BridgeAdvertise {
                incarnation: 2,
                filter: TopicFilter::new("district/d1/#").unwrap(),
                qos: QoS::AtLeastOnce,
            },
            Packet::BridgeUnadvertise {
                incarnation: 2,
                filter: TopicFilter::new("district/d1/#").unwrap(),
            },
            Packet::BridgeBatch {
                incarnation: 2,
                batch_id: 77,
                frames: vec![
                    BridgeFrame {
                        topic: Topic::new("district/d1/agg/x").unwrap(),
                        payload: b"{\"v\":1}".to_vec(),
                        retain: true,
                        qos: QoS::AtLeastOnce,
                        trace: 5,
                    },
                    BridgeFrame {
                        topic: Topic::new("a/b").unwrap(),
                        payload: vec![],
                        retain: false,
                        qos: QoS::AtMostOnce,
                        trace: 0,
                    },
                ],
            },
            Packet::BridgeBatch {
                incarnation: 1,
                batch_id: 0,
                frames: vec![],
            },
            Packet::BridgeBatchAck { batch_id: 77 },
            Packet::BridgeHello { incarnation: 4 },
        ];
        for p in &packets {
            assert_eq!(&Packet::decode(&p.encode()).unwrap(), p, "{p:?}");
        }
    }

    #[test]
    fn bridge_batch_truncation_rejected() {
        let bytes = Packet::BridgeBatch {
            incarnation: 1,
            batch_id: 2,
            frames: vec![BridgeFrame {
                topic: Topic::new("t/u").unwrap(),
                payload: b"xy".to_vec(),
                retain: false,
                qos: QoS::AtLeastOnce,
                trace: 3,
            }],
        }
        .encode();
        for cut in 0..bytes.len() {
            assert!(Packet::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn bridge_batch_lying_count_rejected() {
        // A frame count larger than the frames actually present must be
        // caught as truncation, not read past the buffer.
        let mut bytes = Packet::BridgeBatch {
            incarnation: 1,
            batch_id: 2,
            frames: vec![],
        }
        .encode();
        let n = bytes.len();
        bytes[n - 2..].copy_from_slice(&3u16.to_le_bytes());
        assert!(Packet::decode(&bytes).is_err());
    }

    #[test]
    fn bridge_frame_with_wildcard_topic_rejected() {
        // Bridge frames carry concrete topics; a wildcard is a grammar
        // violation even inside a batch.
        let mut out = vec![11u8];
        out.extend_from_slice(&1u64.to_le_bytes());
        out.extend_from_slice(&2u64.to_le_bytes());
        out.extend_from_slice(&1u16.to_le_bytes());
        push_str("a/#", &mut out);
        push_bytes(b"", &mut out);
        out.push(0);
        out.push(0);
        out.extend_from_slice(&0u64.to_le_bytes());
        assert!(Packet::decode(&out).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = Packet::Publish {
            id: 1,
            topic: Topic::new("t").unwrap(),
            payload: b"xyz".to_vec(),
            retain: false,
            qos: QoS::AtMostOnce,
            trace: 1,
        }
        .encode();
        for cut in 0..bytes.len() {
            assert!(Packet::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(Packet::decode(&[]).is_err());
        assert!(Packet::decode(&[99]).is_err());
        let mut bad_qos = Packet::Subscribe {
            filter: TopicFilter::new("a").unwrap(),
            qos: QoS::AtMostOnce,
        }
        .encode();
        *bad_qos.last_mut().unwrap() = 9;
        assert!(Packet::decode(&bad_qos).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Packet::PubAck { id: 1 }.encode();
        bytes.push(0);
        assert!(Packet::decode(&bytes).is_err());
    }

    #[test]
    fn invalid_topic_in_packet_rejected() {
        // Hand-craft a Publish with a wildcard in the topic.
        let mut out = vec![3u8];
        out.extend_from_slice(&1u64.to_le_bytes());
        push_str("a/+", &mut out);
        push_bytes(b"", &mut out);
        out.push(0);
        out.push(0);
        out.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            Packet::decode(&out),
            Err(PubSubError::InvalidTopic { .. })
        ));
    }
}
