//! The middleware wire protocol.
//!
//! A small tagged binary encoding. Strings are u16-length-prefixed,
//! payloads u32-length-prefixed, integers little-endian.

use simnet::Port;

use crate::{PubSubError, Topic, TopicFilter};

/// The well-known port brokers listen on.
pub const PUBSUB_PORT: Port = Port(7100);

/// Delivery guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum QoS {
    /// Fire-and-forget.
    #[default]
    AtMostOnce,
    /// Acknowledged and retried: at-least-once.
    AtLeastOnce,
}

impl QoS {
    fn byte(self) -> u8 {
        match self {
            QoS::AtMostOnce => 0,
            QoS::AtLeastOnce => 1,
        }
    }

    fn from_byte(b: u8) -> Result<Self, PubSubError> {
        match b {
            0 => Ok(QoS::AtMostOnce),
            1 => Ok(QoS::AtLeastOnce),
            _ => Err(PubSubError::DecodePacket {
                reason: "invalid qos",
            }),
        }
    }
}

/// A middleware wire packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// Client → broker: subscribe to a filter.
    Subscribe {
        /// The filter.
        filter: TopicFilter,
        /// Requested delivery guarantee.
        qos: QoS,
    },
    /// Client → broker: drop a subscription.
    Unsubscribe {
        /// The filter to drop.
        filter: TopicFilter,
    },
    /// Client → broker: publish a message.
    Publish {
        /// Publisher-chosen id, echoed in [`Packet::PubAck`] for QoS 1.
        id: u64,
        /// The topic.
        topic: Topic,
        /// Opaque payload (common-data-format text by convention).
        payload: Vec<u8>,
        /// Whether the broker retains it for future subscribers.
        retain: bool,
        /// Delivery guarantee.
        qos: QoS,
        /// Flight-recorder trace id carried end to end (0 = untraced).
        trace: u64,
    },
    /// Broker → publisher: QoS 1 publish accepted.
    PubAck {
        /// The publisher's id.
        id: u64,
    },
    /// Broker → subscriber: message delivery.
    Deliver {
        /// Broker-chosen delivery id (acked for QoS 1).
        id: u64,
        /// The topic it was published under.
        topic: Topic,
        /// The payload.
        payload: Vec<u8>,
        /// Delivery guarantee of this delivery.
        qos: QoS,
        /// Flight-recorder trace id of the originating publish.
        trace: u64,
    },
    /// Subscriber → broker: QoS 1 delivery received.
    DeliverAck {
        /// The broker's delivery id.
        id: u64,
    },
    /// Client → broker: session keepalive probe.
    Ping,
    /// Broker → client: keepalive answer carrying the broker's
    /// incarnation number, which bumps on every broker restart. A client
    /// that sees the incarnation change knows its subscriptions were
    /// wiped and must re-subscribe.
    Pong {
        /// The broker's current incarnation.
        incarnation: u64,
    },
}

fn push_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn push_bytes(b: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, PubSubError> {
        let b = self
            .bytes
            .get(self.pos)
            .copied()
            .ok_or(PubSubError::DecodePacket {
                reason: "truncated",
            })?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PubSubError> {
        if self.pos + n > self.bytes.len() {
            return Err(PubSubError::DecodePacket {
                reason: "truncated",
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, PubSubError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len")))
    }

    fn u32(&mut self) -> Result<u32, PubSubError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len")))
    }

    fn u64(&mut self) -> Result<u64, PubSubError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }

    fn string(&mut self) -> Result<String, PubSubError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PubSubError::DecodePacket {
            reason: "invalid utf-8",
        })
    }

    fn bytes_field(&mut self) -> Result<Vec<u8>, PubSubError> {
        let len = self.u32()? as usize;
        if len > 16 * 1024 * 1024 {
            return Err(PubSubError::DecodePacket {
                reason: "implausible payload length",
            });
        }
        Ok(self.take(len)?.to_vec())
    }

    fn finish(&self) -> Result<(), PubSubError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(PubSubError::DecodePacket {
                reason: "trailing bytes",
            })
        }
    }
}

impl Packet {
    /// Encodes the packet.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            Packet::Subscribe { filter, qos } => {
                out.push(1);
                push_str(filter.as_str(), &mut out);
                out.push(qos.byte());
            }
            Packet::Unsubscribe { filter } => {
                out.push(2);
                push_str(filter.as_str(), &mut out);
            }
            Packet::Publish {
                id,
                topic,
                payload,
                retain,
                qos,
                trace,
            } => {
                out.push(3);
                out.extend_from_slice(&id.to_le_bytes());
                push_str(topic.as_str(), &mut out);
                push_bytes(payload, &mut out);
                out.push(u8::from(*retain));
                out.push(qos.byte());
                out.extend_from_slice(&trace.to_le_bytes());
            }
            Packet::PubAck { id } => {
                out.push(4);
                out.extend_from_slice(&id.to_le_bytes());
            }
            Packet::Deliver {
                id,
                topic,
                payload,
                qos,
                trace,
            } => {
                out.push(5);
                out.extend_from_slice(&id.to_le_bytes());
                push_str(topic.as_str(), &mut out);
                push_bytes(payload, &mut out);
                out.push(qos.byte());
                out.extend_from_slice(&trace.to_le_bytes());
            }
            Packet::DeliverAck { id } => {
                out.push(6);
                out.extend_from_slice(&id.to_le_bytes());
            }
            Packet::Ping => {
                out.push(7);
            }
            Packet::Pong { incarnation } => {
                out.push(8);
                out.extend_from_slice(&incarnation.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a packet produced by [`Packet::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::DecodePacket`] (or a topic/filter grammar
    /// error) on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Self, PubSubError> {
        let mut c = Cursor { bytes, pos: 0 };
        let packet = match c.u8()? {
            1 => Packet::Subscribe {
                filter: TopicFilter::new(c.string()?)?,
                qos: QoS::from_byte(c.u8()?)?,
            },
            2 => Packet::Unsubscribe {
                filter: TopicFilter::new(c.string()?)?,
            },
            3 => Packet::Publish {
                id: c.u64()?,
                topic: Topic::new(c.string()?)?,
                payload: c.bytes_field()?,
                retain: c.u8()? != 0,
                qos: QoS::from_byte(c.u8()?)?,
                trace: c.u64()?,
            },
            4 => Packet::PubAck { id: c.u64()? },
            5 => Packet::Deliver {
                id: c.u64()?,
                topic: Topic::new(c.string()?)?,
                payload: c.bytes_field()?,
                qos: QoS::from_byte(c.u8()?)?,
                trace: c.u64()?,
            },
            6 => Packet::DeliverAck { id: c.u64()? },
            7 => Packet::Ping,
            8 => Packet::Pong {
                incarnation: c.u64()?,
            },
            _ => {
                return Err(PubSubError::DecodePacket {
                    reason: "unknown packet tag",
                })
            }
        };
        c.finish()?;
        Ok(packet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_packets_round_trip() {
        let packets = [
            Packet::Subscribe {
                filter: TopicFilter::new("a/+/#").unwrap(),
                qos: QoS::AtLeastOnce,
            },
            Packet::Unsubscribe {
                filter: TopicFilter::new("a/b").unwrap(),
            },
            Packet::Publish {
                id: 42,
                topic: Topic::new("a/b/c").unwrap(),
                payload: b"{\"v\":1}".to_vec(),
                retain: true,
                qos: QoS::AtMostOnce,
                trace: 9,
            },
            Packet::PubAck { id: 42 },
            Packet::Deliver {
                id: 7,
                topic: Topic::new("a/b/c").unwrap(),
                payload: vec![],
                qos: QoS::AtLeastOnce,
                trace: 0,
            },
            Packet::DeliverAck { id: 7 },
            Packet::Ping,
            Packet::Pong { incarnation: 3 },
        ];
        for p in &packets {
            assert_eq!(&Packet::decode(&p.encode()).unwrap(), p, "{p:?}");
        }
    }

    #[test]
    fn truncation_rejected() {
        let bytes = Packet::Publish {
            id: 1,
            topic: Topic::new("t").unwrap(),
            payload: b"xyz".to_vec(),
            retain: false,
            qos: QoS::AtMostOnce,
            trace: 1,
        }
        .encode();
        for cut in 0..bytes.len() {
            assert!(Packet::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(Packet::decode(&[]).is_err());
        assert!(Packet::decode(&[99]).is_err());
        let mut bad_qos = Packet::Subscribe {
            filter: TopicFilter::new("a").unwrap(),
            qos: QoS::AtMostOnce,
        }
        .encode();
        *bad_qos.last_mut().unwrap() = 9;
        assert!(Packet::decode(&bad_qos).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Packet::PubAck { id: 1 }.encode();
        bytes.push(0);
        assert!(Packet::decode(&bytes).is_err());
    }

    #[test]
    fn invalid_topic_in_packet_rejected() {
        // Hand-craft a Publish with a wildcard in the topic.
        let mut out = vec![3u8];
        out.extend_from_slice(&1u64.to_le_bytes());
        push_str("a/+", &mut out);
        push_bytes(b"", &mut out);
        out.push(0);
        out.push(0);
        out.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            Packet::decode(&out),
            Err(PubSubError::InvalidTopic { .. })
        ));
    }
}
