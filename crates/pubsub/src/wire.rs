//! The middleware wire protocol.
//!
//! A small tagged binary encoding. Strings are u16-length-prefixed,
//! payloads u32-length-prefixed, integers little-endian.
//!
//! Decoding comes in two flavours sharing one grammar:
//!
//! * [`PacketRef::decode`] — the hot path. Borrows topics and payloads
//!   straight out of the receive buffer; the only allocation is the
//!   frame vector of a [`PacketRef::BridgeBatch`]. The broker runs on
//!   this and calls `to_*` conversions exactly where it must retain
//!   data beyond the packet's lifetime.
//! * [`Packet::decode`] — the convenience path, delegating to the
//!   borrowed decoder and materializing everything. Clients and tests
//!   use it; by construction the two can never drift apart.
//!
//! Encoding is single-sourced the same way: [`Packet::encode`] builds a
//! borrowed [`PacketRef`] view ([`Packet::view`]) and defers to
//! [`PacketRef::encode`].

use simnet::Port;

use crate::{PubSubError, Topic, TopicFilter, TopicFilterRef, TopicRef};

/// The well-known port brokers listen on.
pub const PUBSUB_PORT: Port = Port(7100);

/// Delivery guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum QoS {
    /// Fire-and-forget.
    #[default]
    AtMostOnce,
    /// Acknowledged and retried: at-least-once.
    AtLeastOnce,
}

impl QoS {
    fn byte(self) -> u8 {
        match self {
            QoS::AtMostOnce => 0,
            QoS::AtLeastOnce => 1,
        }
    }

    fn from_byte(b: u8) -> Result<Self, PubSubError> {
        match b {
            0 => Ok(QoS::AtMostOnce),
            1 => Ok(QoS::AtLeastOnce),
            _ => Err(PubSubError::DecodePacket {
                reason: "invalid qos",
            }),
        }
    }
}

/// A middleware wire packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// Client → broker: subscribe to a filter.
    Subscribe {
        /// The filter.
        filter: TopicFilter,
        /// Requested delivery guarantee.
        qos: QoS,
    },
    /// Client → broker: drop a subscription.
    Unsubscribe {
        /// The filter to drop.
        filter: TopicFilter,
    },
    /// Client → broker: publish a message.
    Publish {
        /// Publisher-chosen id, echoed in [`Packet::PubAck`] for QoS 1.
        id: u64,
        /// The topic.
        topic: Topic,
        /// Opaque payload (common-data-format text by convention).
        payload: Vec<u8>,
        /// Whether the broker retains it for future subscribers.
        retain: bool,
        /// Delivery guarantee.
        qos: QoS,
        /// Flight-recorder trace id carried end to end (0 = untraced).
        trace: u64,
        /// Causal span of the publishing hop (0 = unstructured); the
        /// broker parents its own spans under it.
        span: u64,
    },
    /// Broker → publisher: QoS 1 publish accepted.
    PubAck {
        /// The publisher's id.
        id: u64,
    },
    /// Broker → subscriber: message delivery.
    Deliver {
        /// Broker-chosen delivery id (acked for QoS 1).
        id: u64,
        /// The topic it was published under.
        topic: Topic,
        /// The payload.
        payload: Vec<u8>,
        /// Delivery guarantee of this delivery.
        qos: QoS,
        /// Flight-recorder trace id of the originating publish.
        trace: u64,
        /// Causal span of the broker's deliver hop (0 = unstructured);
        /// the subscriber parents its receive span under it.
        span: u64,
    },
    /// Subscriber → broker: QoS 1 delivery received.
    DeliverAck {
        /// The broker's delivery id.
        id: u64,
    },
    /// Client → broker: session keepalive probe.
    Ping,
    /// Broker → client: keepalive answer carrying the broker's
    /// incarnation number, which bumps on every broker restart. A client
    /// that sees the incarnation change knows its subscriptions were
    /// wiped and must re-subscribe.
    Pong {
        /// The broker's current incarnation.
        incarnation: u64,
    },
    /// Broker → peer broker: "I have local subscribers matching this
    /// filter — forward matching publishes to me." Sent whenever a local
    /// subscription appears, and re-sent in full after either end
    /// restarts.
    BridgeAdvertise {
        /// The advertising broker's incarnation.
        incarnation: u64,
        /// The advertised filter.
        filter: TopicFilter,
        /// The strongest QoS any local subscriber asked for.
        qos: QoS,
    },
    /// Broker → peer broker: the last local subscriber on this filter is
    /// gone; stop forwarding.
    BridgeUnadvertise {
        /// The advertising broker's incarnation.
        incarnation: u64,
        /// The filter to withdraw.
        filter: TopicFilter,
    },
    /// Broker → peer broker: a batch of publishes crossing the bridge in
    /// one wire frame (the inter-broker hop pays O(1) frames for N
    /// publishes). Always acked with [`Packet::BridgeBatchAck`]; the
    /// sender retries unacked batches and the receiver dedups on
    /// `batch_id`, so QoS 1 conservation holds across a lossy bridge.
    BridgeBatch {
        /// The sending broker's incarnation.
        incarnation: u64,
        /// Sender-chosen id, unique per (sender, incarnation).
        batch_id: u64,
        /// The batched publishes, in publish order.
        frames: Vec<BridgeFrame>,
    },
    /// Peer broker → broker: batch received (possibly a duplicate).
    BridgeBatchAck {
        /// The sender's batch id.
        batch_id: u64,
    },
    /// Broker → peer broker: "I (re)started under this incarnation."
    /// Prompts the peer to wipe routing state learned from the previous
    /// incarnation and re-advertise its own subscriptions.
    BridgeHello {
        /// The sending broker's current incarnation.
        incarnation: u64,
    },
    /// Ops plane → broker: fetch an observability document. Brokers
    /// answer `/metrics` (Prometheus exposition) and `/health` (JSON)
    /// over the pub/sub port itself — they have no webservice stack, and
    /// the layering (`pubsub` must not depend on `proxy`) forbids one.
    OpsGet {
        /// Requester-chosen id, echoed in the reply.
        id: u64,
        /// The document path (`"/metrics"`, `"/health"`).
        path: String,
    },
    /// Broker → ops plane: the requested document.
    OpsReply {
        /// The requester's id.
        id: u64,
        /// An HTTP-style status code (200, 404).
        status: u16,
        /// The document body.
        body: Vec<u8>,
    },
}

/// One publish inside a [`Packet::BridgeBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BridgeFrame {
    /// The topic it was published under.
    pub topic: Topic,
    /// The payload.
    pub payload: Vec<u8>,
    /// Whether the receiving broker mirrors it as retained.
    pub retain: bool,
    /// The publish's delivery guarantee.
    pub qos: QoS,
    /// Flight-recorder trace id of the originating publish.
    pub trace: u64,
    /// Causal span of the bridge-forward hop (0 = unstructured); the
    /// receiving broker parents its fan-out spans under it.
    pub span: u64,
}

impl BridgeFrame {
    /// A borrowed view of this frame, for allocation-free encoding.
    pub fn view(&self) -> BridgeFrameRef<'_> {
        BridgeFrameRef {
            topic: TopicRef::from(&self.topic),
            payload: &self.payload,
            retain: self.retain,
            qos: self.qos,
            trace: self.trace,
            span: self.span,
        }
    }
}

/// A borrowed view of a wire packet: the zero-copy counterpart of
/// [`Packet`].
///
/// Produced by [`PacketRef::decode`] straight over the receive buffer —
/// topics, filters and payloads are slices of the input; only a
/// [`PacketRef::BridgeBatch`] allocates (its frame vector, never the
/// frame contents). Consumed by [`PacketRef::encode`], which is the one
/// and only encoder of the wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketRef<'a> {
    /// Borrowed [`Packet::Subscribe`].
    Subscribe {
        /// The filter.
        filter: TopicFilterRef<'a>,
        /// Requested delivery guarantee.
        qos: QoS,
    },
    /// Borrowed [`Packet::Unsubscribe`].
    Unsubscribe {
        /// The filter to drop.
        filter: TopicFilterRef<'a>,
    },
    /// Borrowed [`Packet::Publish`].
    Publish {
        /// Publisher-chosen id, echoed in [`Packet::PubAck`] for QoS 1.
        id: u64,
        /// The topic, borrowed from the buffer.
        topic: TopicRef<'a>,
        /// The payload, borrowed from the buffer.
        payload: &'a [u8],
        /// Whether the broker retains it for future subscribers.
        retain: bool,
        /// Delivery guarantee.
        qos: QoS,
        /// Flight-recorder trace id carried end to end (0 = untraced).
        trace: u64,
        /// Causal span of the publishing hop (0 = unstructured).
        span: u64,
    },
    /// Borrowed [`Packet::PubAck`].
    PubAck {
        /// The publisher's id.
        id: u64,
    },
    /// Borrowed [`Packet::Deliver`].
    Deliver {
        /// Broker-chosen delivery id (acked for QoS 1).
        id: u64,
        /// The topic it was published under, borrowed from the buffer.
        topic: TopicRef<'a>,
        /// The payload, borrowed from the buffer.
        payload: &'a [u8],
        /// Delivery guarantee of this delivery.
        qos: QoS,
        /// Flight-recorder trace id of the originating publish.
        trace: u64,
        /// Causal span of the broker's deliver hop (0 = unstructured).
        span: u64,
    },
    /// Borrowed [`Packet::DeliverAck`].
    DeliverAck {
        /// The broker's delivery id.
        id: u64,
    },
    /// Borrowed [`Packet::Ping`].
    Ping,
    /// Borrowed [`Packet::Pong`].
    Pong {
        /// The broker's current incarnation.
        incarnation: u64,
    },
    /// Borrowed [`Packet::BridgeAdvertise`].
    BridgeAdvertise {
        /// The advertising broker's incarnation.
        incarnation: u64,
        /// The advertised filter.
        filter: TopicFilterRef<'a>,
        /// The strongest QoS any local subscriber asked for.
        qos: QoS,
    },
    /// Borrowed [`Packet::BridgeUnadvertise`].
    BridgeUnadvertise {
        /// The advertising broker's incarnation.
        incarnation: u64,
        /// The filter to withdraw.
        filter: TopicFilterRef<'a>,
    },
    /// Borrowed [`Packet::BridgeBatch`]. The frame vector is the sole
    /// allocation of the borrowed decoder; the frames themselves borrow.
    BridgeBatch {
        /// The sending broker's incarnation.
        incarnation: u64,
        /// Sender-chosen id, unique per (sender, incarnation).
        batch_id: u64,
        /// The batched publishes, in publish order.
        frames: Vec<BridgeFrameRef<'a>>,
    },
    /// Borrowed [`Packet::BridgeBatchAck`].
    BridgeBatchAck {
        /// The sender's batch id.
        batch_id: u64,
    },
    /// Borrowed [`Packet::BridgeHello`].
    BridgeHello {
        /// The sending broker's current incarnation.
        incarnation: u64,
    },
    /// Borrowed [`Packet::OpsGet`].
    OpsGet {
        /// Requester-chosen id, echoed in the reply.
        id: u64,
        /// The document path, borrowed from the buffer.
        path: &'a str,
    },
    /// Borrowed [`Packet::OpsReply`].
    OpsReply {
        /// The requester's id.
        id: u64,
        /// An HTTP-style status code (200, 404).
        status: u16,
        /// The document body, borrowed from the buffer.
        body: &'a [u8],
    },
}

/// A borrowed view of one publish inside a bridge batch: the zero-copy
/// counterpart of [`BridgeFrame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BridgeFrameRef<'a> {
    /// The topic it was published under, borrowed from the buffer.
    pub topic: TopicRef<'a>,
    /// The payload, borrowed from the buffer.
    pub payload: &'a [u8],
    /// Whether the receiving broker mirrors it as retained.
    pub retain: bool,
    /// The publish's delivery guarantee.
    pub qos: QoS,
    /// Flight-recorder trace id of the originating publish.
    pub trace: u64,
    /// Causal span of the bridge-forward hop (0 = unstructured).
    pub span: u64,
}

impl BridgeFrameRef<'_> {
    /// Materializes an owned [`BridgeFrame`].
    pub fn to_frame(&self) -> BridgeFrame {
        BridgeFrame {
            topic: self.topic.to_topic(),
            payload: self.payload.to_vec(),
            retain: self.retain,
            qos: self.qos,
            trace: self.trace,
            span: self.span,
        }
    }

    /// Encoded size of this frame on the wire.
    fn wire_len(&self) -> usize {
        2 + self.topic.as_str().len() + 4 + self.payload.len() + 1 + 1 + 8 + 8
    }
}

/// Hard cap on frames per batch — a decode guard, far above any sane
/// [`BatchPolicy`](simnet::batch::BatchPolicy) flush bound.
const MAX_BRIDGE_FRAMES: usize = 4096;

fn push_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn push_bytes(b: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, PubSubError> {
        let b = self
            .bytes
            .get(self.pos)
            .copied()
            .ok_or(PubSubError::DecodePacket {
                reason: "truncated",
            })?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PubSubError> {
        if self.pos + n > self.bytes.len() {
            return Err(PubSubError::DecodePacket {
                reason: "truncated",
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, PubSubError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len")))
    }

    fn u32(&mut self) -> Result<u32, PubSubError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len")))
    }

    fn u64(&mut self) -> Result<u64, PubSubError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }

    /// A u16-length-prefixed string, borrowed from the buffer.
    fn str_ref(&mut self) -> Result<&'a str, PubSubError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| PubSubError::DecodePacket {
            reason: "invalid utf-8",
        })
    }

    /// A u32-length-prefixed byte field, borrowed from the buffer.
    fn bytes_ref(&mut self) -> Result<&'a [u8], PubSubError> {
        let len = self.u32()? as usize;
        if len > 16 * 1024 * 1024 {
            return Err(PubSubError::DecodePacket {
                reason: "implausible payload length",
            });
        }
        self.take(len)
    }

    fn finish(&self) -> Result<(), PubSubError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(PubSubError::DecodePacket {
                reason: "trailing bytes",
            })
        }
    }
}

impl<'a> PacketRef<'a> {
    /// Decodes a packet as a borrowed view over `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::DecodePacket`] (or a topic/filter grammar
    /// error) on malformed input. Never panics: every length is
    /// bounds-checked and every string/topic/filter validated.
    pub fn decode(bytes: &'a [u8]) -> Result<Self, PubSubError> {
        let mut c = Cursor { bytes, pos: 0 };
        let packet = match c.u8()? {
            1 => PacketRef::Subscribe {
                filter: TopicFilterRef::new(c.str_ref()?)?,
                qos: QoS::from_byte(c.u8()?)?,
            },
            2 => PacketRef::Unsubscribe {
                filter: TopicFilterRef::new(c.str_ref()?)?,
            },
            3 => PacketRef::Publish {
                id: c.u64()?,
                topic: TopicRef::new(c.str_ref()?)?,
                payload: c.bytes_ref()?,
                retain: c.u8()? != 0,
                qos: QoS::from_byte(c.u8()?)?,
                trace: c.u64()?,
                span: c.u64()?,
            },
            4 => PacketRef::PubAck { id: c.u64()? },
            5 => PacketRef::Deliver {
                id: c.u64()?,
                topic: TopicRef::new(c.str_ref()?)?,
                payload: c.bytes_ref()?,
                qos: QoS::from_byte(c.u8()?)?,
                trace: c.u64()?,
                span: c.u64()?,
            },
            6 => PacketRef::DeliverAck { id: c.u64()? },
            7 => PacketRef::Ping,
            8 => PacketRef::Pong {
                incarnation: c.u64()?,
            },
            9 => PacketRef::BridgeAdvertise {
                incarnation: c.u64()?,
                filter: TopicFilterRef::new(c.str_ref()?)?,
                qos: QoS::from_byte(c.u8()?)?,
            },
            10 => PacketRef::BridgeUnadvertise {
                incarnation: c.u64()?,
                filter: TopicFilterRef::new(c.str_ref()?)?,
            },
            11 => {
                let incarnation = c.u64()?;
                let batch_id = c.u64()?;
                let count = c.u16()? as usize;
                if count > MAX_BRIDGE_FRAMES {
                    return Err(PubSubError::DecodePacket {
                        reason: "implausible bridge batch size",
                    });
                }
                let mut frames = Vec::with_capacity(count);
                for _ in 0..count {
                    frames.push(BridgeFrameRef {
                        topic: TopicRef::new(c.str_ref()?)?,
                        payload: c.bytes_ref()?,
                        retain: c.u8()? != 0,
                        qos: QoS::from_byte(c.u8()?)?,
                        trace: c.u64()?,
                        span: c.u64()?,
                    });
                }
                PacketRef::BridgeBatch {
                    incarnation,
                    batch_id,
                    frames,
                }
            }
            12 => PacketRef::BridgeBatchAck { batch_id: c.u64()? },
            13 => PacketRef::BridgeHello {
                incarnation: c.u64()?,
            },
            14 => PacketRef::OpsGet {
                id: c.u64()?,
                path: c.str_ref()?,
            },
            15 => PacketRef::OpsReply {
                id: c.u64()?,
                status: c.u16()?,
                body: c.bytes_ref()?,
            },
            _ => {
                return Err(PubSubError::DecodePacket {
                    reason: "unknown packet tag",
                })
            }
        };
        c.finish()?;
        Ok(packet)
    }

    /// Encodes the packet. This is the sole encoder of the wire format;
    /// [`Packet::encode`] defers here via [`Packet::view`].
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        match self {
            PacketRef::Subscribe { filter, qos } => {
                out.push(1);
                push_str(filter.as_str(), &mut out);
                out.push(qos.byte());
            }
            PacketRef::Unsubscribe { filter } => {
                out.push(2);
                push_str(filter.as_str(), &mut out);
            }
            PacketRef::Publish {
                id,
                topic,
                payload,
                retain,
                qos,
                trace,
                span,
            } => {
                out.push(3);
                out.extend_from_slice(&id.to_le_bytes());
                push_str(topic.as_str(), &mut out);
                push_bytes(payload, &mut out);
                out.push(u8::from(*retain));
                out.push(qos.byte());
                out.extend_from_slice(&trace.to_le_bytes());
                out.extend_from_slice(&span.to_le_bytes());
            }
            PacketRef::PubAck { id } => {
                out.push(4);
                out.extend_from_slice(&id.to_le_bytes());
            }
            PacketRef::Deliver {
                id,
                topic,
                payload,
                qos,
                trace,
                span,
            } => {
                out.push(5);
                out.extend_from_slice(&id.to_le_bytes());
                push_str(topic.as_str(), &mut out);
                push_bytes(payload, &mut out);
                out.push(qos.byte());
                out.extend_from_slice(&trace.to_le_bytes());
                out.extend_from_slice(&span.to_le_bytes());
            }
            PacketRef::DeliverAck { id } => {
                out.push(6);
                out.extend_from_slice(&id.to_le_bytes());
            }
            PacketRef::Ping => {
                out.push(7);
            }
            PacketRef::Pong { incarnation } => {
                out.push(8);
                out.extend_from_slice(&incarnation.to_le_bytes());
            }
            PacketRef::BridgeAdvertise {
                incarnation,
                filter,
                qos,
            } => {
                out.push(9);
                out.extend_from_slice(&incarnation.to_le_bytes());
                push_str(filter.as_str(), &mut out);
                out.push(qos.byte());
            }
            PacketRef::BridgeUnadvertise {
                incarnation,
                filter,
            } => {
                out.push(10);
                out.extend_from_slice(&incarnation.to_le_bytes());
                push_str(filter.as_str(), &mut out);
            }
            PacketRef::BridgeBatch {
                incarnation,
                batch_id,
                frames,
            } => {
                out.push(11);
                out.extend_from_slice(&incarnation.to_le_bytes());
                out.extend_from_slice(&batch_id.to_le_bytes());
                out.extend_from_slice(&(frames.len() as u16).to_le_bytes());
                for f in frames {
                    push_str(f.topic.as_str(), &mut out);
                    push_bytes(f.payload, &mut out);
                    out.push(u8::from(f.retain));
                    out.push(f.qos.byte());
                    out.extend_from_slice(&f.trace.to_le_bytes());
                    out.extend_from_slice(&f.span.to_le_bytes());
                }
            }
            PacketRef::BridgeBatchAck { batch_id } => {
                out.push(12);
                out.extend_from_slice(&batch_id.to_le_bytes());
            }
            PacketRef::BridgeHello { incarnation } => {
                out.push(13);
                out.extend_from_slice(&incarnation.to_le_bytes());
            }
            PacketRef::OpsGet { id, path } => {
                out.push(14);
                out.extend_from_slice(&id.to_le_bytes());
                push_str(path, &mut out);
            }
            PacketRef::OpsReply { id, status, body } => {
                out.push(15);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&status.to_le_bytes());
                push_bytes(body, &mut out);
            }
        }
        out
    }

    /// Exact encoded size, so [`PacketRef::encode`] allocates once.
    fn wire_len(&self) -> usize {
        match self {
            PacketRef::Subscribe { filter, .. } => 1 + 2 + filter.as_str().len() + 1,
            PacketRef::Unsubscribe { filter } => 1 + 2 + filter.as_str().len(),
            PacketRef::Publish { topic, payload, .. } => {
                1 + 8 + 2 + topic.as_str().len() + 4 + payload.len() + 1 + 1 + 8 + 8
            }
            PacketRef::PubAck { .. }
            | PacketRef::DeliverAck { .. }
            | PacketRef::Pong { .. }
            | PacketRef::BridgeBatchAck { .. }
            | PacketRef::BridgeHello { .. } => 1 + 8,
            PacketRef::Deliver { topic, payload, .. } => {
                1 + 8 + 2 + topic.as_str().len() + 4 + payload.len() + 1 + 8 + 8
            }
            PacketRef::Ping => 1,
            PacketRef::BridgeAdvertise { filter, .. } => 1 + 8 + 2 + filter.as_str().len() + 1,
            PacketRef::BridgeUnadvertise { filter, .. } => 1 + 8 + 2 + filter.as_str().len(),
            PacketRef::BridgeBatch { frames, .. } => {
                1 + 8 + 8 + 2 + frames.iter().map(BridgeFrameRef::wire_len).sum::<usize>()
            }
            PacketRef::OpsGet { path, .. } => 1 + 8 + 2 + path.len(),
            PacketRef::OpsReply { body, .. } => 1 + 8 + 2 + 4 + body.len(),
        }
    }

    /// Materializes an owned [`Packet`].
    pub fn to_packet(&self) -> Packet {
        match self {
            PacketRef::Subscribe { filter, qos } => Packet::Subscribe {
                filter: filter.to_filter(),
                qos: *qos,
            },
            PacketRef::Unsubscribe { filter } => Packet::Unsubscribe {
                filter: filter.to_filter(),
            },
            PacketRef::Publish {
                id,
                topic,
                payload,
                retain,
                qos,
                trace,
                span,
            } => Packet::Publish {
                id: *id,
                topic: topic.to_topic(),
                payload: payload.to_vec(),
                retain: *retain,
                qos: *qos,
                trace: *trace,
                span: *span,
            },
            PacketRef::PubAck { id } => Packet::PubAck { id: *id },
            PacketRef::Deliver {
                id,
                topic,
                payload,
                qos,
                trace,
                span,
            } => Packet::Deliver {
                id: *id,
                topic: topic.to_topic(),
                payload: payload.to_vec(),
                qos: *qos,
                trace: *trace,
                span: *span,
            },
            PacketRef::DeliverAck { id } => Packet::DeliverAck { id: *id },
            PacketRef::Ping => Packet::Ping,
            PacketRef::Pong { incarnation } => Packet::Pong {
                incarnation: *incarnation,
            },
            PacketRef::BridgeAdvertise {
                incarnation,
                filter,
                qos,
            } => Packet::BridgeAdvertise {
                incarnation: *incarnation,
                filter: filter.to_filter(),
                qos: *qos,
            },
            PacketRef::BridgeUnadvertise {
                incarnation,
                filter,
            } => Packet::BridgeUnadvertise {
                incarnation: *incarnation,
                filter: filter.to_filter(),
            },
            PacketRef::BridgeBatch {
                incarnation,
                batch_id,
                frames,
            } => Packet::BridgeBatch {
                incarnation: *incarnation,
                batch_id: *batch_id,
                frames: frames.iter().map(BridgeFrameRef::to_frame).collect(),
            },
            PacketRef::BridgeBatchAck { batch_id } => Packet::BridgeBatchAck {
                batch_id: *batch_id,
            },
            PacketRef::BridgeHello { incarnation } => Packet::BridgeHello {
                incarnation: *incarnation,
            },
            PacketRef::OpsGet { id, path } => Packet::OpsGet {
                id: *id,
                path: path.to_string(),
            },
            PacketRef::OpsReply { id, status, body } => Packet::OpsReply {
                id: *id,
                status: *status,
                body: body.to_vec(),
            },
        }
    }
}

impl Packet {
    /// A borrowed view of this packet, for allocation-free encoding and
    /// structural comparison against decoded [`PacketRef`]s.
    pub fn view(&self) -> PacketRef<'_> {
        match self {
            Packet::Subscribe { filter, qos } => PacketRef::Subscribe {
                filter: filter.into(),
                qos: *qos,
            },
            Packet::Unsubscribe { filter } => PacketRef::Unsubscribe {
                filter: filter.into(),
            },
            Packet::Publish {
                id,
                topic,
                payload,
                retain,
                qos,
                trace,
                span,
            } => PacketRef::Publish {
                id: *id,
                topic: topic.into(),
                payload,
                retain: *retain,
                qos: *qos,
                trace: *trace,
                span: *span,
            },
            Packet::PubAck { id } => PacketRef::PubAck { id: *id },
            Packet::Deliver {
                id,
                topic,
                payload,
                qos,
                trace,
                span,
            } => PacketRef::Deliver {
                id: *id,
                topic: topic.into(),
                payload,
                qos: *qos,
                trace: *trace,
                span: *span,
            },
            Packet::DeliverAck { id } => PacketRef::DeliverAck { id: *id },
            Packet::Ping => PacketRef::Ping,
            Packet::Pong { incarnation } => PacketRef::Pong {
                incarnation: *incarnation,
            },
            Packet::BridgeAdvertise {
                incarnation,
                filter,
                qos,
            } => PacketRef::BridgeAdvertise {
                incarnation: *incarnation,
                filter: filter.into(),
                qos: *qos,
            },
            Packet::BridgeUnadvertise {
                incarnation,
                filter,
            } => PacketRef::BridgeUnadvertise {
                incarnation: *incarnation,
                filter: filter.into(),
            },
            Packet::BridgeBatch {
                incarnation,
                batch_id,
                frames,
            } => PacketRef::BridgeBatch {
                incarnation: *incarnation,
                batch_id: *batch_id,
                frames: frames.iter().map(BridgeFrame::view).collect(),
            },
            Packet::BridgeBatchAck { batch_id } => PacketRef::BridgeBatchAck {
                batch_id: *batch_id,
            },
            Packet::BridgeHello { incarnation } => PacketRef::BridgeHello {
                incarnation: *incarnation,
            },
            Packet::OpsGet { id, path } => PacketRef::OpsGet { id: *id, path },
            Packet::OpsReply { id, status, body } => PacketRef::OpsReply {
                id: *id,
                status: *status,
                body,
            },
        }
    }

    /// Encodes the packet.
    pub fn encode(&self) -> Vec<u8> {
        self.view().encode()
    }

    /// Decodes a packet produced by [`Packet::encode`], materializing
    /// owned topics and payloads. Delegates to [`PacketRef::decode`],
    /// so the owned and borrowed decoders accept exactly the same
    /// inputs.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::DecodePacket`] (or a topic/filter grammar
    /// error) on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Self, PubSubError> {
        Ok(PacketRef::decode(bytes)?.to_packet())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packets() -> Vec<Packet> {
        vec![
            Packet::Subscribe {
                filter: TopicFilter::new("a/+/#").unwrap(),
                qos: QoS::AtLeastOnce,
            },
            Packet::Unsubscribe {
                filter: TopicFilter::new("a/b").unwrap(),
            },
            Packet::Publish {
                id: 42,
                topic: Topic::new("a/b/c").unwrap(),
                payload: b"{\"v\":1}".to_vec(),
                retain: true,
                qos: QoS::AtMostOnce,
                trace: 9,
                span: 31,
            },
            Packet::PubAck { id: 42 },
            Packet::Deliver {
                id: 7,
                topic: Topic::new("a/b/c").unwrap(),
                payload: vec![],
                qos: QoS::AtLeastOnce,
                trace: 0,
                span: 0,
            },
            Packet::DeliverAck { id: 7 },
            Packet::Ping,
            Packet::Pong { incarnation: 3 },
            Packet::BridgeAdvertise {
                incarnation: 2,
                filter: TopicFilter::new("district/d1/#").unwrap(),
                qos: QoS::AtLeastOnce,
            },
            Packet::BridgeUnadvertise {
                incarnation: 2,
                filter: TopicFilter::new("district/d1/#").unwrap(),
            },
            Packet::BridgeBatch {
                incarnation: 2,
                batch_id: 77,
                frames: vec![
                    BridgeFrame {
                        topic: Topic::new("district/d1/agg/x").unwrap(),
                        payload: b"{\"v\":1}".to_vec(),
                        retain: true,
                        qos: QoS::AtLeastOnce,
                        trace: 5,
                        span: 17,
                    },
                    BridgeFrame {
                        topic: Topic::new("a/b").unwrap(),
                        payload: vec![],
                        retain: false,
                        qos: QoS::AtMostOnce,
                        trace: 0,
                        span: 0,
                    },
                ],
            },
            Packet::BridgeBatch {
                incarnation: 1,
                batch_id: 0,
                frames: vec![],
            },
            Packet::BridgeBatchAck { batch_id: 77 },
            Packet::BridgeHello { incarnation: 4 },
            Packet::OpsGet {
                id: 12,
                path: "/metrics".to_string(),
            },
            Packet::OpsReply {
                id: 12,
                status: 200,
                body: b"# TYPE up gauge\nup 1\n".to_vec(),
            },
            Packet::OpsReply {
                id: 13,
                status: 404,
                body: vec![],
            },
        ]
    }

    #[test]
    fn all_packets_round_trip() {
        for p in &sample_packets() {
            assert_eq!(&Packet::decode(&p.encode()).unwrap(), p, "{p:?}");
        }
    }

    #[test]
    fn borrowed_decode_matches_owned_decode_for_all_packets() {
        for p in &sample_packets() {
            let bytes = p.encode();
            let borrowed = PacketRef::decode(&bytes).unwrap();
            assert_eq!(borrowed, p.view(), "{p:?}");
            assert_eq!(&borrowed.to_packet(), p, "{p:?}");
            // The view's encoding is the encoding.
            assert_eq!(borrowed.encode(), bytes, "{p:?}");
        }
    }

    #[test]
    fn encode_preallocates_exactly() {
        for p in &sample_packets() {
            let bytes = p.encode();
            assert_eq!(bytes.len(), p.view().wire_len(), "{p:?}");
        }
    }

    #[test]
    fn borrowed_decode_borrows_from_the_input() {
        let bytes = Packet::Publish {
            id: 1,
            topic: Topic::new("a/b/c").unwrap(),
            payload: b"payload".to_vec(),
            retain: false,
            qos: QoS::AtMostOnce,
            trace: 0,
            span: 0,
        }
        .encode();
        let PacketRef::Publish { topic, payload, .. } = PacketRef::decode(&bytes).unwrap() else {
            panic!("wrong variant");
        };
        let range = bytes.as_ptr_range();
        assert!(range.contains(&topic.as_str().as_ptr()));
        assert!(range.contains(&payload.as_ptr()));
    }

    #[test]
    fn bridge_batch_truncation_rejected() {
        let bytes = Packet::BridgeBatch {
            incarnation: 1,
            batch_id: 2,
            frames: vec![BridgeFrame {
                topic: Topic::new("t/u").unwrap(),
                payload: b"xy".to_vec(),
                retain: false,
                qos: QoS::AtLeastOnce,
                trace: 3,
                span: 21,
            }],
        }
        .encode();
        for cut in 0..bytes.len() {
            assert!(Packet::decode(&bytes[..cut]).is_err(), "cut {cut}");
            assert!(PacketRef::decode(&bytes[..cut]).is_err(), "borrowed {cut}");
        }
    }

    #[test]
    fn bridge_batch_lying_count_rejected() {
        // A frame count larger than the frames actually present must be
        // caught as truncation, not read past the buffer.
        let mut bytes = Packet::BridgeBatch {
            incarnation: 1,
            batch_id: 2,
            frames: vec![],
        }
        .encode();
        let n = bytes.len();
        bytes[n - 2..].copy_from_slice(&3u16.to_le_bytes());
        assert!(Packet::decode(&bytes).is_err());
        assert!(PacketRef::decode(&bytes).is_err());
    }

    #[test]
    fn bridge_frame_with_wildcard_topic_rejected() {
        // Bridge frames carry concrete topics; a wildcard is a grammar
        // violation even inside a batch.
        let mut out = vec![11u8];
        out.extend_from_slice(&1u64.to_le_bytes());
        out.extend_from_slice(&2u64.to_le_bytes());
        out.extend_from_slice(&1u16.to_le_bytes());
        push_str("a/#", &mut out);
        push_bytes(b"", &mut out);
        out.push(0);
        out.push(0);
        out.extend_from_slice(&0u64.to_le_bytes());
        out.extend_from_slice(&0u64.to_le_bytes());
        assert!(Packet::decode(&out).is_err());
        assert!(PacketRef::decode(&out).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = Packet::Publish {
            id: 1,
            topic: Topic::new("t").unwrap(),
            payload: b"xyz".to_vec(),
            retain: false,
            qos: QoS::AtMostOnce,
            trace: 1,
            span: 2,
        }
        .encode();
        for cut in 0..bytes.len() {
            assert!(Packet::decode(&bytes[..cut]).is_err(), "cut {cut}");
            assert!(PacketRef::decode(&bytes[..cut]).is_err(), "borrowed {cut}");
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(Packet::decode(&[]).is_err());
        assert!(Packet::decode(&[99]).is_err());
        assert!(PacketRef::decode(&[]).is_err());
        assert!(PacketRef::decode(&[99]).is_err());
        let mut bad_qos = Packet::Subscribe {
            filter: TopicFilter::new("a").unwrap(),
            qos: QoS::AtMostOnce,
        }
        .encode();
        *bad_qos.last_mut().unwrap() = 9;
        assert!(Packet::decode(&bad_qos).is_err());
        assert!(PacketRef::decode(&bad_qos).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Packet::PubAck { id: 1 }.encode();
        bytes.push(0);
        assert!(Packet::decode(&bytes).is_err());
        assert!(PacketRef::decode(&bytes).is_err());
    }

    #[test]
    fn invalid_topic_in_packet_rejected() {
        // Hand-craft a Publish with a wildcard in the topic.
        let mut out = vec![3u8];
        out.extend_from_slice(&1u64.to_le_bytes());
        push_str("a/+", &mut out);
        push_bytes(b"", &mut out);
        out.push(0);
        out.push(0);
        out.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            Packet::decode(&out),
            Err(PubSubError::InvalidTopic { .. })
        ));
        assert!(matches!(
            PacketRef::decode(&out),
            Err(PubSubError::InvalidTopic { .. })
        ));
    }
}
