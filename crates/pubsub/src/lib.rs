//! # dimmer-pubsub — event-driven publish/subscribe middleware
//!
//! The paper's Device-proxies "publish the information in the middleware
//! network by exploiting a publish/subscribe approach, which is a main
//! feature of the SEEMPubS middleware". This crate is that middleware,
//! rebuilt over the simulated network:
//!
//! * hierarchical [`Topic`]s with `+` (one level) and `#` (subtree)
//!   wildcard [`TopicFilter`]s;
//! * a [`BrokerNode`] with a subscription trie, retained messages and
//!   QoS 0/1 delivery (QoS 1 = broker-acked publish + retried delivery);
//! * a [`PubSubClient`] helper that any [`simnet::Node`] embeds.
//!
//! ## Example (topic matching)
//!
//! ```
//! use pubsub::{Topic, TopicFilter};
//! # fn main() -> Result<(), pubsub::PubSubError> {
//! let topic = Topic::new("district/d1/building/b7/temperature")?;
//! assert!(TopicFilter::new("district/d1/#")?.matches(&topic));
//! assert!(TopicFilter::new("district/+/building/+/temperature")?.matches(&topic));
//! assert!(!TopicFilter::new("district/d2/#")?.matches(&topic));
//! # Ok(())
//! # }
//! ```

mod broker;
mod client;
mod error;
pub mod federation;
mod topic;
mod wire;

pub use broker::{BrokerNode, BrokerStats, DEFAULT_PENDING_CAPACITY};
pub use client::{PubSubClient, PubSubEvent};
pub use error::PubSubError;
pub use federation::{BridgeStats, FederationConfig, ShardMap};
pub use topic::{
    MeasurementTopic, RollupScope, RollupTopic, SubscriptionTrie, Topic, TopicFilter,
    TopicFilterRef, TopicRef,
};
pub use wire::{
    BridgeFrame, BridgeFrameRef, Packet as WirePacket, PacketRef as WirePacketRef, QoS, PUBSUB_PORT,
};
