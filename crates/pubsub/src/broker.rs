//! The middleware broker node.

use std::collections::HashMap;

use simnet::batch::PushOutcome;
use simnet::{Context, Node, Packet as NetPacket, SimDuration, TimerTag};

use crate::federation::{
    FederationConfig, FederationState, BATCH_MAX_RETRIES, BATCH_RETRY_BIT, BATCH_RETRY_TIMEOUT,
    FLUSH_TIMER_BIT,
};
use crate::topic::SubscriptionTrie;
use crate::wire::{BridgeFrame, BridgeFrameRef, Packet, PacketRef, QoS};
use crate::{BridgeStats, Topic, TopicFilter, TopicRef};

/// How long the broker waits before redelivering an unacked QoS 1
/// message.
const RETRY_TIMEOUT: SimDuration = SimDuration::from_secs(2);
/// How many redeliveries before a QoS 1 message is dropped.
const MAX_RETRIES: u32 = 3;
/// Default bound on the unacked QoS 1 delivery table. At capacity a new
/// QoS 1 delivery degrades to at-most-once (sent once, never retried)
/// instead of growing the table without limit; override with
/// [`BrokerNode::set_pending_capacity`].
pub const DEFAULT_PENDING_CAPACITY: usize = 65_536;

#[derive(Debug, Clone, PartialEq, Eq)]
struct Subscription {
    node: simnet::NodeId,
    qos: QoS,
}

#[derive(Debug)]
struct PendingDelivery {
    to: simnet::NodeId,
    bytes: Vec<u8>,
    retries_left: u32,
    trace: u64,
}

/// Per-QoS local subscriber counts for one filter: drives bridge
/// advertisement (advertise while any local subscriber remains, withdraw
/// on the last unsubscribe, re-advertise after a peer restart).
#[derive(Debug)]
struct AdvertRefs {
    filter: TopicFilter,
    at_most: usize,
    at_least: usize,
}

impl AdvertRefs {
    fn total(&self) -> usize {
        self.at_most + self.at_least
    }

    fn strongest(&self) -> QoS {
        if self.at_least > 0 {
            QoS::AtLeastOnce
        } else {
            QoS::AtMostOnce
        }
    }
}

/// Pre-rendered labeled metric names. A federation runs many brokers in
/// one simulation; unlabeled counters would silently aggregate across
/// all of them, so a labeled broker emits `<name>.<label>` next to every
/// global `<name>` counter (the globals stay, for single-broker
/// deployments and existing dashboards/tests).
#[derive(Debug)]
struct LabeledNames {
    publish: String,
    deliver: String,
    ack: String,
    subscribe: String,
    retry: String,
    drop: String,
    decode_error: String,
    restart: String,
    pending: String,
    queue_shed: String,
    fanout: String,
    bridge_batch_sent: String,
    bridge_frame_forward: String,
    bridge_frame_recv: String,
    bridge_duplicate: String,
    bridge_retry: String,
    bridge_drop: String,
    retained_gauge: String,
    bridge_buffered: String,
    bridge_inflight: String,
}

impl LabeledNames {
    fn new(label: &str) -> Self {
        let n = |name: &str| format!("{name}.{label}");
        LabeledNames {
            publish: n("pubsub.publish"),
            deliver: n("pubsub.deliver"),
            ack: n("pubsub.ack"),
            subscribe: n("pubsub.subscribe"),
            retry: n("pubsub.retry"),
            drop: n("pubsub.drop"),
            decode_error: n("pubsub.decode_error"),
            restart: n("pubsub.broker_restart"),
            pending: n("pubsub.pending_deliveries"),
            queue_shed: n("pubsub.queue_shed"),
            fanout: n("pubsub.fanout"),
            bridge_batch_sent: n("pubsub.bridge.batch_sent"),
            bridge_frame_forward: n("pubsub.bridge.frame_forward"),
            bridge_frame_recv: n("pubsub.bridge.frame_recv"),
            bridge_duplicate: n("pubsub.bridge.duplicate"),
            bridge_retry: n("pubsub.bridge.retry"),
            bridge_drop: n("pubsub.bridge.drop"),
            retained_gauge: n("pubsub.retained"),
            bridge_buffered: n("pubsub.bridge.buffered"),
            bridge_inflight: n("pubsub.bridge.inflight"),
        }
    }
}

/// Counters the broker exposes for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Publish packets received.
    pub published: u64,
    /// Deliver packets sent (including retries).
    pub delivered: u64,
    /// QoS 1 deliveries acknowledged.
    pub acked: u64,
    /// QoS 1 redelivery attempts.
    pub retries: u64,
    /// QoS 1 deliveries abandoned after retry exhaustion (or wiped by a
    /// broker restart).
    pub dropped: u64,
    /// QoS 1 deliveries degraded to at-most-once because the unacked
    /// table was at capacity (a subset of `dropped`).
    pub queue_shed: u64,
    /// Topics currently retained.
    pub retained: u64,
    /// QoS 1 deliveries enqueued for acknowledgement. At any instant the
    /// conservation invariant `qos1_enqueued == acked + dropped +
    /// pending_deliveries()` holds.
    pub qos1_enqueued: u64,
    /// Malformed wire packets received and discarded.
    pub decode_errors: u64,
}

/// A SEEMPubS-style broker running as a [`simnet::Node`].
///
/// Clients talk to it on [`PUBSUB_PORT`](crate::PUBSUB_PORT) with
/// [`Packet`](crate::WirePacket)s; the [`PubSubClient`](crate::PubSubClient)
/// helper wraps that protocol.
///
/// A broker can run standalone (the default, exactly the paper's single
/// entry point) or as one shard of a federation — see
/// [`BrokerNode::federate`] and the [`federation`](crate::federation)
/// module.
#[derive(Debug, Default)]
pub struct BrokerNode {
    subscriptions: SubscriptionTrie<Subscription>,
    /// topic text → (topic, last retained payload, trace id, span).
    ///
    /// Keeping the trace id means a late subscriber's retained delivery
    /// still shows up in the flight recorder as part of the original
    /// publication's journey — without it, samples replayed across a
    /// broker restart would look lost even though they arrived. The span
    /// likewise parents the late delivery under the original publish in
    /// the causal span tree.
    retained: HashMap<String, (Topic, Vec<u8>, u64, u64)>,
    pending: HashMap<u64, PendingDelivery>,
    next_delivery_id: u64,
    /// Bumped on every restart; clients learn it via Ping/Pong and use a
    /// change to detect that their subscriptions were wiped.
    incarnation: u64,
    stats: BrokerStats,
    /// Bound on the unacked QoS 1 delivery table; `None` means
    /// [`DEFAULT_PENDING_CAPACITY`].
    pending_capacity: Option<usize>,
    /// Filter text → live local subscriber refcounts (advertisement
    /// bookkeeping; empty while not federated).
    advert_refs: HashMap<String, AdvertRefs>,
    labels: Option<LabeledNames>,
    federation: Option<FederationState>,
}

impl BrokerNode {
    /// Creates an empty broker.
    pub fn new() -> Self {
        BrokerNode::default()
    }

    /// Creates an empty broker whose telemetry counters additionally
    /// carry `label` (e.g. `pubsub.publish.b2`), so per-broker rates
    /// stay distinguishable inside a federation.
    pub fn with_label(label: impl AsRef<str>) -> Self {
        BrokerNode {
            labels: Some(LabeledNames::new(label.as_ref())),
            ..BrokerNode::default()
        }
    }

    /// Makes this broker one shard of a federation. Call before the
    /// simulation starts (the deployment wires every member with the
    /// same shard map and broker list).
    pub fn federate(&mut self, config: FederationConfig) {
        self.federation = Some(FederationState::new(config));
    }

    /// Current counters.
    pub fn stats(&self) -> BrokerStats {
        BrokerStats {
            retained: self.retained.len() as u64,
            ..self.stats
        }
    }

    /// Bridge-side counters (all zero while not federated).
    pub fn bridge_stats(&self) -> BridgeStats {
        self.federation
            .as_ref()
            .map(|f| f.stats)
            .unwrap_or_default()
    }

    /// Bridge frames buffered in per-peer batchers, not yet sent.
    pub fn bridge_buffered(&self) -> usize {
        self.federation
            .as_ref()
            .map_or(0, FederationState::buffered_frames)
    }

    /// Bridge frames sent and awaiting a batch acknowledgement.
    pub fn bridge_in_flight(&self) -> usize {
        self.federation
            .as_ref()
            .map_or(0, FederationState::in_flight_frames)
    }

    /// The broker's incarnation number (restarts survived).
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subscriptions.len()
    }

    /// Number of QoS 1 deliveries awaiting acknowledgement.
    pub fn pending_deliveries(&self) -> usize {
        self.pending.len()
    }

    /// Overrides the bound on the unacked QoS 1 delivery table (default
    /// [`DEFAULT_PENDING_CAPACITY`]).
    pub fn set_pending_capacity(&mut self, capacity: usize) {
        self.pending_capacity = Some(capacity);
    }

    fn incr(&self, ctx: &mut Context<'_>, global: &str, pick: impl Fn(&LabeledNames) -> &String) {
        ctx.telemetry().metrics.incr(global);
        if let Some(l) = &self.labels {
            ctx.telemetry().metrics.incr(pick(l));
        }
    }

    fn gauge_pending(&self, ctx: &mut Context<'_>) {
        let v = self.pending.len() as f64;
        ctx.telemetry()
            .metrics
            .set_gauge("pubsub.pending_deliveries", v);
        if let Some(l) = &self.labels {
            ctx.telemetry().metrics.set_gauge(&l.pending, v);
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the Deliver wire frame field for field
    fn deliver(
        &mut self,
        ctx: &mut Context<'_>,
        to: simnet::NodeId,
        topic: TopicRef<'_>,
        payload: &[u8],
        qos: QoS,
        trace: u64,
        parent_span: u64,
    ) {
        let id = self.next_delivery_id;
        self.next_delivery_id += 1;
        let span = if trace != 0 {
            ctx.span_hop(
                "broker.deliver",
                trace,
                parent_span,
                format!("to={to} topic={topic}"),
            )
        } else {
            0
        };
        // Encode straight from the borrowed view: the topic and payload
        // are never materialized, only serialized.
        let bytes = PacketRef::Deliver {
            id,
            topic,
            payload,
            qos,
            trace,
            span,
        }
        .encode();
        self.incr(ctx, "pubsub.deliver", |l| &l.deliver);
        ctx.send_spanned(to, crate::PUBSUB_PORT, bytes.clone(), trace, span);
        self.stats.delivered += 1;
        if qos == QoS::AtLeastOnce {
            self.stats.qos1_enqueued += 1;
            let capacity = self.pending_capacity.unwrap_or(DEFAULT_PENDING_CAPACITY);
            if self.pending.len() >= capacity {
                // The unacked table is the broker's memory bound: past
                // it the delivery degrades to at-most-once — sent once
                // above, never retried — and is counted dropped right
                // away, so `qos1_enqueued == acked + dropped + pending`
                // survives overload.
                self.stats.dropped += 1;
                self.stats.queue_shed += 1;
                self.incr(ctx, "pubsub.queue_shed", |l| &l.queue_shed);
                return;
            }
            self.pending.insert(
                id,
                PendingDelivery {
                    to,
                    bytes,
                    retries_left: MAX_RETRIES,
                    trace,
                },
            );
            self.gauge_pending(ctx);
            ctx.set_timer(RETRY_TIMEOUT, TimerTag(id));
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the Publish wire frame field for field
    fn on_publish(
        &mut self,
        ctx: &mut Context<'_>,
        from: simnet::NodeId,
        id: u64,
        topic: TopicRef<'_>,
        payload: &[u8],
        retain: bool,
        qos: QoS,
        trace: u64,
        span: u64,
    ) {
        self.stats.published += 1;
        self.incr(ctx, "pubsub.publish", |l| &l.publish);
        let pub_span = if trace != 0 {
            ctx.span_hop(
                "broker.publish",
                trace,
                span,
                format!("from={from} topic={topic}"),
            )
        } else {
            0
        };
        if qos == QoS::AtLeastOnce {
            ctx.send(from, crate::PUBSUB_PORT, Packet::PubAck { id }.encode());
        }
        if retain {
            if payload.is_empty() {
                self.retained.remove(topic.as_str());
            } else {
                // Retention outlives the packet: the one place a plain
                // publish materializes its topic and payload.
                self.retained.insert(
                    topic.as_str().to_owned(),
                    (topic.to_topic(), payload.to_vec(), trace, pub_span),
                );
            }
        }
        self.fan_out(ctx, topic, payload, qos, trace, pub_span);
        self.forward_to_peers(ctx, topic, payload, retain, qos, trace, pub_span);
    }

    /// Delivers a publish to every matching local subscriber. Delivery
    /// spans parent under `span` (the local publish or bridge-deliver
    /// hop).
    fn fan_out(
        &mut self,
        ctx: &mut Context<'_>,
        topic: TopicRef<'_>,
        payload: &[u8],
        qos: QoS,
        trace: u64,
        span: u64,
    ) {
        let targets: Vec<Subscription> = self
            .subscriptions
            .matches_str(topic.as_str())
            .into_iter()
            .cloned()
            .collect();
        ctx.telemetry()
            .metrics
            .observe("pubsub.fanout", targets.len() as f64);
        if let Some(l) = &self.labels {
            ctx.telemetry()
                .metrics
                .observe(&l.fanout, targets.len() as f64);
        }
        for sub in targets {
            // Effective delivery guarantee: the weaker of the two ends.
            let effective = if qos == QoS::AtLeastOnce && sub.qos == QoS::AtLeastOnce {
                QoS::AtLeastOnce
            } else {
                QoS::AtMostOnce
            };
            self.deliver(ctx, sub.node, topic, payload, effective, trace, span);
        }
    }

    /// Queues a locally received publish for every peer broker with a
    /// matching advertised filter. Frames ride per-peer batchers; a full
    /// batcher flushes inline, otherwise the age timer does.
    #[allow(clippy::too_many_arguments)] // mirrors the bridge frame field for field
    fn forward_to_peers(
        &mut self,
        ctx: &mut Context<'_>,
        topic: TopicRef<'_>,
        payload: &[u8],
        retain: bool,
        qos: QoS,
        trace: u64,
        span: u64,
    ) {
        let Some(fed) = &self.federation else {
            return;
        };
        let mut peers: Vec<usize> = fed
            .remote_subs
            .matches_str(topic.as_str())
            .into_iter()
            .map(|rs| rs.peer)
            .collect();
        peers.sort_unstable();
        peers.dedup();
        for peer in peers {
            let fwd_span = if trace != 0 {
                ctx.span_hop(
                    "bridge.forward",
                    trace,
                    span,
                    format!("peer={peer} topic={topic}"),
                )
            } else {
                0
            };
            self.incr(ctx, "pubsub.bridge.frame_forward", |l| {
                &l.bridge_frame_forward
            });
            // The batcher retains the frame until the peer acks its
            // batch: the designed ownership boundary of the borrowed
            // publish path.
            let frame = BridgeFrame {
                topic: topic.to_topic(),
                payload: payload.to_vec(),
                retain,
                qos,
                trace,
                span: fwd_span,
            };
            self.enqueue_frame(ctx, peer, frame);
        }
    }

    /// Pushes one frame onto a peer's batcher and acts on the outcome.
    fn enqueue_frame(&mut self, ctx: &mut Context<'_>, peer: usize, frame: BridgeFrame) {
        let Some(fed) = &mut self.federation else {
            return;
        };
        fed.stats.frames_enqueued += 1;
        let cost = frame.topic.as_str().len() + frame.payload.len() + 18;
        let max_age = fed.config.batch.max_age;
        match fed.batchers[peer].push(frame, cost) {
            PushOutcome::Flush => self.flush_peer(ctx, peer),
            PushOutcome::ArmTimer => {
                ctx.set_timer(max_age, TimerTag(FLUSH_TIMER_BIT | peer as u64));
            }
            PushOutcome::Buffered => {}
        }
    }

    /// Cuts the accumulated batch for `peer` and puts it on the wire,
    /// tracked for retransmission until acknowledged.
    fn flush_peer(&mut self, ctx: &mut Context<'_>, peer: usize) {
        let incarnation = self.incarnation;
        let Some(fed) = &mut self.federation else {
            return;
        };
        // An open peer breaker holds the batch back: frames stay
        // buffered (conservation intact) and the age timer keeps
        // re-attempting, so the half-open probe happens naturally.
        if !fed.breakers[peer].allow(ctx.now(), &ctx.telemetry().metrics) {
            if !fed.batchers[peer].is_empty() {
                let max_age = fed.config.batch.max_age;
                ctx.set_timer(max_age, TimerTag(FLUSH_TIMER_BIT | peer as u64));
            }
            return;
        }
        let frames = fed.batchers[peer].take();
        if frames.is_empty() {
            return; // age timer raced a size flush
        }
        let batch_id = fed.next_batch_id;
        fed.next_batch_id += 1;
        // Serialize from borrowed views; the frames themselves move
        // into the retransmission ledger below without a deep clone.
        let bytes = PacketRef::BridgeBatch {
            incarnation,
            batch_id,
            frames: frames.iter().map(BridgeFrame::view).collect(),
        }
        .encode();
        let dst = fed.config.brokers[peer];
        fed.stats.batches_sent += 1;
        ctx.telemetry()
            .metrics
            .observe("pubsub.bridge.batch_frames", frames.len() as f64);
        fed.pending.insert(
            batch_id,
            crate::federation::PendingBatch {
                peer,
                frames,
                retries_left: BATCH_MAX_RETRIES,
                sent_at: ctx.now(),
            },
        );
        ctx.send(dst, crate::PUBSUB_PORT, bytes);
        ctx.set_timer(BATCH_RETRY_TIMEOUT, TimerTag(BATCH_RETRY_BIT | batch_id));
        self.incr(ctx, "pubsub.bridge.batch_sent", |l| &l.bridge_batch_sent);
    }

    /// Sends `BridgeHello` to every peer (start and restart), so peers
    /// learn this broker's incarnation without waiting for traffic.
    fn send_hello(&mut self, ctx: &mut Context<'_>) {
        let incarnation = self.incarnation;
        let Some(fed) = &self.federation else {
            return;
        };
        let bytes = Packet::BridgeHello { incarnation }.encode();
        for peer in fed.peer_shards() {
            ctx.send(fed.config.brokers[peer], crate::PUBSUB_PORT, bytes.clone());
        }
    }

    /// Observes `incarnation` from `peer`. Returns `false` for frames
    /// from a dead incarnation (the caller drops them). A *newer*
    /// incarnation means the peer restarted: everything it advertised
    /// and every batch id it ever sent died with it, and it needs our
    /// advertisements again.
    fn note_peer_incarnation(
        &mut self,
        ctx: &mut Context<'_>,
        peer: usize,
        incarnation: u64,
    ) -> bool {
        let Some(fed) = &mut self.federation else {
            return false;
        };
        let known = fed.peer_incarnation[peer];
        if incarnation < known {
            return false;
        }
        if incarnation > known {
            fed.peer_incarnation[peer] = incarnation;
            fed.seen_batches[peer].clear();
            let filters: Vec<TopicFilter> = fed.peer_filters[peer].values().cloned().collect();
            for f in &filters {
                fed.remote_subs.remove_where(f, |rs| rs.peer == peer);
            }
            fed.peer_filters[peer].clear();
            ctx.telemetry().metrics.incr("pubsub.bridge.peer_restart");
            self.readvertise_to(ctx, peer);
        }
        true
    }

    /// Re-sends every live local filter advertisement to one peer.
    fn readvertise_to(&mut self, ctx: &mut Context<'_>, peer: usize) {
        let incarnation = self.incarnation;
        let adverts: Vec<(TopicFilter, QoS)> = self
            .advert_refs
            .values()
            .map(|r| (r.filter.clone(), r.strongest()))
            .collect();
        let Some(fed) = &self.federation else {
            return;
        };
        let dst = fed.config.brokers[peer];
        for (filter, qos) in adverts {
            let bytes = Packet::BridgeAdvertise {
                incarnation,
                filter,
                qos,
            }
            .encode();
            ctx.send(dst, crate::PUBSUB_PORT, bytes);
        }
    }

    /// Applies one bridged publish locally: mirror retained state, fan
    /// out to local subscribers. Never re-forwarded — the federation is
    /// a full mesh and every publish crosses at most one bridge hop,
    /// which is what makes duplicate delivery impossible.
    fn apply_bridge_frame(&mut self, ctx: &mut Context<'_>, frame: BridgeFrameRef<'_>) {
        let BridgeFrameRef {
            topic,
            payload,
            retain,
            qos,
            trace,
            span,
        } = frame;
        let bd_span = if trace != 0 {
            ctx.span_hop("bridge.deliver", trace, span, format!("topic={topic}"))
        } else {
            0
        };
        self.incr(ctx, "pubsub.bridge.frame_recv", |l| &l.bridge_frame_recv);
        if retain {
            if payload.is_empty() {
                self.retained.remove(topic.as_str());
            } else {
                if let Some((_, existing, ..)) = self.retained.get(topic.as_str()) {
                    if existing.as_slice() == payload {
                        // A mirror of a retained message we already hold
                        // (e.g. two peers answered the same advertise):
                        // local subscribers have seen it, don't re-fan.
                        return;
                    }
                }
                // Mirroring retained state outlives the batch packet:
                // the one materialization point on the bridge path.
                self.retained.insert(
                    topic.as_str().to_owned(),
                    (topic.to_topic(), payload.to_vec(), trace, bd_span),
                );
            }
        }
        self.fan_out(ctx, topic, payload, qos, trace, bd_span);
    }

    fn on_subscribe(
        &mut self,
        ctx: &mut Context<'_>,
        from: simnet::NodeId,
        filter: TopicFilter,
        qos: QoS,
    ) {
        self.incr(ctx, "pubsub.subscribe", |l| &l.subscribe);
        self.subscriptions
            .insert(&filter, Subscription { node: from, qos });
        let refs = self
            .advert_refs
            .entry(filter.as_str().to_owned())
            .or_insert_with(|| AdvertRefs {
                filter: filter.clone(),
                at_most: 0,
                at_least: 0,
            });
        match qos {
            QoS::AtMostOnce => refs.at_most += 1,
            QoS::AtLeastOnce => refs.at_least += 1,
        }
        let strongest = refs.strongest();
        self.advertise(ctx, &filter, strongest);
        // Hand the new subscriber any retained messages it now matches,
        // under the original publication's trace id and span.
        let matching: Vec<(Topic, Vec<u8>, u64, u64)> = self
            .retained
            .values()
            .filter(|(topic, ..)| filter.matches(topic))
            .cloned()
            .collect();
        for (topic, payload, trace, span) in matching {
            self.deliver(
                ctx,
                from,
                TopicRef::from(&topic),
                &payload,
                qos,
                trace,
                span,
            );
        }
    }

    /// Tells every peer this broker wants publishes matching `filter`.
    /// Idempotent at the receiver (it replaces any previous entry for
    /// this broker and filter), so it doubles as a QoS upgrade path.
    fn advertise(&mut self, ctx: &mut Context<'_>, filter: &TopicFilter, qos: QoS) {
        let incarnation = self.incarnation;
        let Some(fed) = &self.federation else {
            return;
        };
        let bytes = Packet::BridgeAdvertise {
            incarnation,
            filter: filter.clone(),
            qos,
        }
        .encode();
        for peer in fed.peer_shards() {
            ctx.send(fed.config.brokers[peer], crate::PUBSUB_PORT, bytes.clone());
        }
    }

    fn on_unsubscribe(&mut self, ctx: &mut Context<'_>, from: simnet::NodeId, filter: TopicFilter) {
        // Remove every subscription this node holds on the filter,
        // counting per QoS so the advertisement refcounts stay exact.
        let (mut gone_most, mut gone_least) = (0usize, 0usize);
        self.subscriptions.remove_where(&filter, |sub| {
            if sub.node == from {
                match sub.qos {
                    QoS::AtMostOnce => gone_most += 1,
                    QoS::AtLeastOnce => gone_least += 1,
                }
                true
            } else {
                false
            }
        });
        if gone_most + gone_least == 0 {
            return;
        }
        let Some(refs) = self.advert_refs.get_mut(filter.as_str()) else {
            return;
        };
        refs.at_most = refs.at_most.saturating_sub(gone_most);
        refs.at_least = refs.at_least.saturating_sub(gone_least);
        if refs.total() == 0 {
            self.advert_refs.remove(filter.as_str());
            let incarnation = self.incarnation;
            if let Some(fed) = &self.federation {
                let bytes = Packet::BridgeUnadvertise {
                    incarnation,
                    filter: filter.clone(),
                }
                .encode();
                for peer in fed.peer_shards() {
                    ctx.send(fed.config.brokers[peer], crate::PUBSUB_PORT, bytes.clone());
                }
            }
        } else {
            // Possibly downgraded (last QoS 1 subscriber left): refresh.
            let strongest = refs.strongest();
            self.advertise(ctx, &filter, strongest);
        }
    }

    fn on_bridge_advertise(
        &mut self,
        ctx: &mut Context<'_>,
        peer: usize,
        incarnation: u64,
        filter: TopicFilter,
        qos: QoS,
    ) {
        if !self.note_peer_incarnation(ctx, peer, incarnation) {
            return;
        }
        let retained_reply: Vec<BridgeFrame>;
        {
            let Some(fed) = &mut self.federation else {
                return;
            };
            fed.remote_subs.remove_where(&filter, |rs| rs.peer == peer);
            fed.remote_subs
                .insert(&filter, crate::federation::RemoteSub { peer, qos });
            fed.peer_filters[peer].insert(filter.as_str().to_owned(), filter.clone());
            // Answer with any retained messages the peer's new filter
            // matches, so its late subscribers see retained state that
            // lives on this side of the bridge.
            retained_reply = self
                .retained
                .values()
                .filter(|(topic, ..)| filter.matches(topic))
                .map(|(topic, payload, trace, span)| BridgeFrame {
                    topic: topic.clone(),
                    payload: payload.clone(),
                    retain: true,
                    qos,
                    trace: *trace,
                    span: *span,
                })
                .collect();
        }
        for frame in retained_reply {
            self.enqueue_frame(ctx, peer, frame);
        }
    }

    fn on_bridge_batch(
        &mut self,
        ctx: &mut Context<'_>,
        src: simnet::NodeId,
        peer: usize,
        incarnation: u64,
        batch_id: u64,
        frames: &[BridgeFrameRef<'_>],
    ) {
        if !self.note_peer_incarnation(ctx, peer, incarnation) {
            return; // dead incarnation; its sender no longer waits
        }
        // Always acknowledge — also for duplicates, whose original ack
        // was evidently lost or outrun by the retry timer.
        ctx.send(
            src,
            crate::PUBSUB_PORT,
            Packet::BridgeBatchAck { batch_id }.encode(),
        );
        {
            let Some(fed) = &mut self.federation else {
                return;
            };
            fed.stats.batches_received += 1;
            if !fed.seen_batches[peer].insert(batch_id) {
                fed.stats.duplicate_batches += 1;
                self.incr(ctx, "pubsub.bridge.duplicate", |l| &l.bridge_duplicate);
                return;
            }
            fed.stats.frames_received += frames.len() as u64;
        }
        for frame in frames {
            self.apply_bridge_frame(ctx, *frame);
        }
    }

    fn on_batch_retry(&mut self, ctx: &mut Context<'_>, batch_id: u64) {
        let incarnation = self.incarnation;
        let mut drop_count = 0u64;
        let mut resend: Option<(simnet::NodeId, Vec<u8>)> = None;
        {
            let Some(fed) = &mut self.federation else {
                return;
            };
            let Some(pending) = fed.pending.get_mut(&batch_id) else {
                return; // acked in time
            };
            if pending.retries_left == 0 {
                let dead = fed.pending.remove(&batch_id).expect("present");
                drop_count = dead.frames.len() as u64;
                fed.stats.frames_dropped += drop_count;
                fed.breakers[dead.peer].record_failure(ctx.now(), &ctx.telemetry().metrics);
            } else {
                // Each expired retry timer is one failed transmission in
                // the peer breaker's window.
                let peer = pending.peer;
                pending.retries_left -= 1;
                pending.sent_at = ctx.now();
                fed.stats.retries += 1;
                let bytes = PacketRef::BridgeBatch {
                    incarnation,
                    batch_id,
                    frames: pending.frames.iter().map(BridgeFrame::view).collect(),
                }
                .encode();
                resend = Some((fed.config.brokers[pending.peer], bytes));
                fed.breakers[peer].record_failure(ctx.now(), &ctx.telemetry().metrics);
            }
        }
        if drop_count > 0 {
            self.incr(ctx, "pubsub.bridge.drop", |l| &l.bridge_drop);
            return;
        }
        if let Some((dst, bytes)) = resend {
            ctx.send(dst, crate::PUBSUB_PORT, bytes);
            ctx.set_timer(BATCH_RETRY_TIMEOUT, TimerTag(BATCH_RETRY_BIT | batch_id));
            self.incr(ctx, "pubsub.bridge.retry", |l| &l.bridge_retry);
        }
    }

    /// Refreshes this broker's occupancy gauges (retained topics, QoS 1
    /// in-flight, bridge batcher/ledger depths) so a scrape sees current
    /// backpressure, not the state at the last mutation.
    fn refresh_scrape_gauges(&self, ctx: &mut Context<'_>) {
        let m = &ctx.telemetry().metrics;
        m.set_gauge("pubsub.retained", self.retained.len() as f64);
        m.set_gauge("pubsub.pending_deliveries", self.pending.len() as f64);
        if let Some(l) = &self.labels {
            m.set_gauge(&l.retained_gauge, self.retained.len() as f64);
            m.set_gauge(&l.pending, self.pending.len() as f64);
        }
        if let Some(fed) = &self.federation {
            m.set_gauge("pubsub.bridge.buffered", fed.buffered_frames() as f64);
            m.set_gauge("pubsub.bridge.inflight", fed.in_flight_frames() as f64);
            if let Some(l) = &self.labels {
                m.set_gauge(&l.bridge_buffered, fed.buffered_frames() as f64);
                m.set_gauge(&l.bridge_inflight, fed.in_flight_frames() as f64);
            }
        }
    }

    /// Serves one ops-plane document over the pub/sub port. Returns an
    /// HTTP-style status and a body.
    fn serve_ops(&mut self, ctx: &mut Context<'_>, path: &str) -> (u16, Vec<u8>) {
        self.refresh_scrape_gauges(ctx);
        match path {
            "/metrics" => (200, ctx.telemetry().exposition().into_bytes()),
            "/health" => {
                let body = format!(
                    "{{\"status\":\"up\",\"incarnation\":{},\"subscriptions\":{},\
                     \"pending_deliveries\":{},\"retained\":{},\
                     \"bridge_buffered\":{},\"bridge_in_flight\":{}}}",
                    self.incarnation,
                    self.subscriptions.len(),
                    self.pending.len(),
                    self.retained.len(),
                    self.bridge_buffered(),
                    self.bridge_in_flight(),
                );
                (200, body.into_bytes())
            }
            _ => (404, Vec::new()),
        }
    }

    /// Resolves the shard index of a packet's source, when the source is
    /// a federation peer. Bridge frames from anyone else are ignored.
    fn peer_of(&self, src: simnet::NodeId) -> Option<usize> {
        let fed = self.federation.as_ref()?;
        let idx = *fed.peer_index.get(&src)?;
        (idx != fed.config.index).then_some(idx)
    }
}

impl Node for BrokerNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.send_hello(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: NetPacket) {
        // Borrowed decode: the hot variants (Publish, BridgeBatch) are
        // handled without copying topics or payloads out of the receive
        // buffer; cold control packets materialize at their `to_*` call.
        let Ok(packet) = PacketRef::decode(&pkt.payload) else {
            // Malformed traffic is dropped, as a real broker would — but
            // counted, so a misbehaving client is visible in the stats.
            self.stats.decode_errors += 1;
            self.incr(ctx, "pubsub.decode_error", |l| &l.decode_error);
            return;
        };
        match packet {
            PacketRef::Subscribe { filter, qos } => {
                self.on_subscribe(ctx, pkt.src, filter.to_filter(), qos)
            }
            PacketRef::Unsubscribe { filter } => {
                self.on_unsubscribe(ctx, pkt.src, filter.to_filter())
            }
            PacketRef::Publish {
                id,
                topic,
                payload,
                retain,
                qos,
                trace,
                span,
            } => self.on_publish(ctx, pkt.src, id, topic, payload, retain, qos, trace, span),
            PacketRef::DeliverAck { id } => {
                if self.pending.remove(&id).is_some() {
                    self.stats.acked += 1;
                    self.incr(ctx, "pubsub.ack", |l| &l.ack);
                    self.gauge_pending(ctx);
                }
            }
            PacketRef::Ping => {
                ctx.send(
                    pkt.src,
                    crate::PUBSUB_PORT,
                    Packet::Pong {
                        incarnation: self.incarnation,
                    }
                    .encode(),
                );
            }
            PacketRef::BridgeAdvertise {
                incarnation,
                filter,
                qos,
            } => {
                if let Some(peer) = self.peer_of(pkt.src) {
                    self.on_bridge_advertise(ctx, peer, incarnation, filter.to_filter(), qos);
                }
            }
            PacketRef::BridgeUnadvertise {
                incarnation,
                filter,
            } => {
                if let Some(peer) = self.peer_of(pkt.src) {
                    if self.note_peer_incarnation(ctx, peer, incarnation) {
                        if let Some(fed) = &mut self.federation {
                            let filter = filter.to_filter();
                            fed.remote_subs.remove_where(&filter, |rs| rs.peer == peer);
                            fed.peer_filters[peer].remove(filter.as_str());
                        }
                    }
                }
            }
            PacketRef::BridgeBatch {
                incarnation,
                batch_id,
                frames,
            } => {
                if let Some(peer) = self.peer_of(pkt.src) {
                    self.on_bridge_batch(ctx, pkt.src, peer, incarnation, batch_id, &frames);
                }
            }
            PacketRef::BridgeBatchAck { batch_id } => {
                if let Some(fed) = &mut self.federation {
                    if let Some(done) = fed.pending.remove(&batch_id) {
                        fed.stats.frames_acked += done.frames.len() as u64;
                        fed.breakers[done.peer].record_success(
                            ctx.now(),
                            ctx.now().saturating_since(done.sent_at),
                            &ctx.telemetry().metrics,
                        );
                    }
                }
            }
            PacketRef::BridgeHello { incarnation } => {
                if let Some(peer) = self.peer_of(pkt.src) {
                    self.note_peer_incarnation(ctx, peer, incarnation);
                }
            }
            PacketRef::OpsGet { id, path } => {
                let (status, body) = self.serve_ops(ctx, path);
                ctx.send(
                    pkt.src,
                    crate::PUBSUB_PORT,
                    Packet::OpsReply { id, status, body }.encode(),
                );
            }
            PacketRef::PubAck { .. }
            | PacketRef::Deliver { .. }
            | PacketRef::Pong { .. }
            | PacketRef::OpsReply { .. } => {
                // Not broker-bound; ignore.
            }
        }
    }

    fn on_restart(&mut self, ctx: &mut Context<'_>) {
        // The broker's session state is volatile: subscriptions, retained
        // messages and unacked deliveries die with the process. Wiped
        // QoS 1 deliveries count as dropped so the conservation invariant
        // (`qos1_enqueued == acked + dropped + pending`) survives the
        // restart. Lifetime counters and the delivery-id sequence are kept
        // so post-restart ids never collide with pre-crash ones.
        self.subscriptions = SubscriptionTrie::default();
        self.retained.clear();
        self.stats.dropped += self.pending.len() as u64;
        self.pending.clear();
        self.advert_refs.clear();
        self.incarnation += 1;
        if let Some(fed) = &mut self.federation {
            // Bridge state is volatile too: buffered and unacked frames
            // died with the process (counted dropped, keeping the bridge
            // conservation invariant), and everything learned about
            // peers is forgotten — their next frame re-teaches it.
            let lost = fed.buffered_frames() + fed.in_flight_frames();
            fed.stats.frames_dropped += lost as u64;
            for b in &mut fed.batchers {
                b.take();
            }
            fed.pending.clear();
            fed.remote_subs = SubscriptionTrie::new();
            for m in &mut fed.peer_filters {
                m.clear();
            }
            for s in &mut fed.seen_batches {
                s.clear();
            }
            for inc in &mut fed.peer_incarnation {
                *inc = 0;
            }
        }
        self.incr(ctx, "pubsub.broker_restart", |l| &l.restart);
        ctx.telemetry()
            .metrics
            .set_gauge("pubsub.pending_deliveries", 0.0);
        if let Some(l) = &self.labels {
            ctx.telemetry().metrics.set_gauge(&l.pending, 0.0);
        }
        // Tell peers about the new incarnation so they wipe our dead
        // advertisements and re-send theirs.
        self.send_hello(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        let id = tag.0;
        if id & BATCH_RETRY_BIT != 0 {
            self.on_batch_retry(ctx, id & !BATCH_RETRY_BIT);
            return;
        }
        if id & FLUSH_TIMER_BIT != 0 {
            self.flush_peer(ctx, (id & !FLUSH_TIMER_BIT) as usize);
            return;
        }
        let Some(pending) = self.pending.get_mut(&id) else {
            return; // already acked
        };
        if pending.retries_left == 0 {
            self.pending.remove(&id);
            self.stats.dropped += 1;
            self.incr(ctx, "pubsub.drop", |l| &l.drop);
            self.gauge_pending(ctx);
            return;
        }
        pending.retries_left -= 1;
        let (to, bytes, trace) = (pending.to, pending.bytes.clone(), pending.trace);
        ctx.send_traced(to, crate::PUBSUB_PORT, bytes, trace);
        self.stats.retries += 1;
        self.stats.delivered += 1;
        self.incr(ctx, "pubsub.retry", |l| &l.retry);
        ctx.set_timer(RETRY_TIMEOUT, TimerTag(id));
    }
}
