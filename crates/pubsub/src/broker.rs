//! The middleware broker node.

use std::collections::HashMap;

use simnet::{Context, Node, Packet as NetPacket, SimDuration, TimerTag};

use crate::topic::SubscriptionTrie;
use crate::wire::{Packet, QoS};
use crate::{Topic, TopicFilter};

/// How long the broker waits before redelivering an unacked QoS 1
/// message.
const RETRY_TIMEOUT: SimDuration = SimDuration::from_secs(2);
/// How many redeliveries before a QoS 1 message is dropped.
const MAX_RETRIES: u32 = 3;

#[derive(Debug, Clone, PartialEq, Eq)]
struct Subscription {
    node: simnet::NodeId,
    qos: QoS,
}

#[derive(Debug)]
struct PendingDelivery {
    to: simnet::NodeId,
    bytes: Vec<u8>,
    retries_left: u32,
    trace: u64,
}

/// Counters the broker exposes for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Publish packets received.
    pub published: u64,
    /// Deliver packets sent (including retries).
    pub delivered: u64,
    /// QoS 1 deliveries acknowledged.
    pub acked: u64,
    /// QoS 1 redelivery attempts.
    pub retries: u64,
    /// QoS 1 deliveries abandoned after retry exhaustion (or wiped by a
    /// broker restart).
    pub dropped: u64,
    /// Topics currently retained.
    pub retained: u64,
    /// QoS 1 deliveries enqueued for acknowledgement. At any instant the
    /// conservation invariant `qos1_enqueued == acked + dropped +
    /// pending_deliveries()` holds.
    pub qos1_enqueued: u64,
    /// Malformed wire packets received and discarded.
    pub decode_errors: u64,
}

/// A SEEMPubS-style broker running as a [`simnet::Node`].
///
/// Clients talk to it on [`PUBSUB_PORT`](crate::PUBSUB_PORT) with
/// [`Packet`](crate::WirePacket)s; the [`PubSubClient`](crate::PubSubClient)
/// helper wraps that protocol.
#[derive(Debug, Default)]
pub struct BrokerNode {
    subscriptions: SubscriptionTrie<Subscription>,
    /// topic text → (topic, last retained payload, its trace id).
    ///
    /// Keeping the trace id means a late subscriber's retained delivery
    /// still shows up in the flight recorder as part of the original
    /// publication's journey — without it, samples replayed across a
    /// broker restart would look lost even though they arrived.
    retained: HashMap<String, (Topic, Vec<u8>, u64)>,
    pending: HashMap<u64, PendingDelivery>,
    next_delivery_id: u64,
    /// Bumped on every restart; clients learn it via Ping/Pong and use a
    /// change to detect that their subscriptions were wiped.
    incarnation: u64,
    stats: BrokerStats,
}

impl BrokerNode {
    /// Creates an empty broker.
    pub fn new() -> Self {
        BrokerNode::default()
    }

    /// Current counters.
    pub fn stats(&self) -> BrokerStats {
        BrokerStats {
            retained: self.retained.len() as u64,
            ..self.stats
        }
    }

    /// The broker's incarnation number (restarts survived).
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subscriptions.len()
    }

    /// Number of QoS 1 deliveries awaiting acknowledgement.
    pub fn pending_deliveries(&self) -> usize {
        self.pending.len()
    }

    fn deliver(
        &mut self,
        ctx: &mut Context<'_>,
        to: simnet::NodeId,
        topic: &Topic,
        payload: &[u8],
        qos: QoS,
        trace: u64,
    ) {
        let id = self.next_delivery_id;
        self.next_delivery_id += 1;
        let packet = Packet::Deliver {
            id,
            topic: topic.clone(),
            payload: payload.to_vec(),
            qos,
            trace,
        };
        let bytes = packet.encode();
        ctx.telemetry().metrics.incr("pubsub.deliver");
        if trace != 0 {
            ctx.trace_hop("broker.deliver", trace, format!("to={to} topic={topic}"));
        }
        ctx.send_traced(to, crate::PUBSUB_PORT, bytes.clone(), trace);
        self.stats.delivered += 1;
        if qos == QoS::AtLeastOnce {
            self.stats.qos1_enqueued += 1;
            self.pending.insert(
                id,
                PendingDelivery {
                    to,
                    bytes,
                    retries_left: MAX_RETRIES,
                    trace,
                },
            );
            ctx.telemetry()
                .metrics
                .set_gauge("pubsub.pending_deliveries", self.pending.len() as f64);
            ctx.set_timer(RETRY_TIMEOUT, TimerTag(id));
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the Publish wire frame field for field
    fn on_publish(
        &mut self,
        ctx: &mut Context<'_>,
        from: simnet::NodeId,
        id: u64,
        topic: Topic,
        payload: Vec<u8>,
        retain: bool,
        qos: QoS,
        trace: u64,
    ) {
        self.stats.published += 1;
        ctx.telemetry().metrics.incr("pubsub.publish");
        if trace != 0 {
            ctx.trace_hop(
                "broker.publish",
                trace,
                format!("from={from} topic={topic}"),
            );
        }
        if qos == QoS::AtLeastOnce {
            ctx.send(from, crate::PUBSUB_PORT, Packet::PubAck { id }.encode());
        }
        if retain {
            if payload.is_empty() {
                self.retained.remove(topic.as_str());
            } else {
                self.retained.insert(
                    topic.as_str().to_owned(),
                    (topic.clone(), payload.clone(), trace),
                );
            }
        }
        let targets: Vec<Subscription> = self
            .subscriptions
            .matches(&topic)
            .into_iter()
            .cloned()
            .collect();
        ctx.telemetry()
            .metrics
            .observe("pubsub.fanout", targets.len() as f64);
        for sub in targets {
            // Effective delivery guarantee: the weaker of the two ends.
            let effective = if qos == QoS::AtLeastOnce && sub.qos == QoS::AtLeastOnce {
                QoS::AtLeastOnce
            } else {
                QoS::AtMostOnce
            };
            self.deliver(ctx, sub.node, &topic, &payload, effective, trace);
        }
    }

    fn on_subscribe(
        &mut self,
        ctx: &mut Context<'_>,
        from: simnet::NodeId,
        filter: TopicFilter,
        qos: QoS,
    ) {
        ctx.telemetry().metrics.incr("pubsub.subscribe");
        self.subscriptions
            .insert(&filter, Subscription { node: from, qos });
        // Hand the new subscriber any retained messages it now matches,
        // under the original publication's trace id.
        let matching: Vec<(Topic, Vec<u8>, u64)> = self
            .retained
            .values()
            .filter(|(topic, _, _)| filter.matches(topic))
            .cloned()
            .collect();
        for (topic, payload, trace) in matching {
            self.deliver(ctx, from, &topic, &payload, qos, trace);
        }
    }
}

impl Node for BrokerNode {
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: NetPacket) {
        let Ok(packet) = Packet::decode(&pkt.payload) else {
            // Malformed traffic is dropped, as a real broker would — but
            // counted, so a misbehaving client is visible in the stats.
            self.stats.decode_errors += 1;
            ctx.telemetry().metrics.incr("pubsub.decode_error");
            return;
        };
        match packet {
            Packet::Subscribe { filter, qos } => self.on_subscribe(ctx, pkt.src, filter, qos),
            Packet::Unsubscribe { filter } => {
                // Remove every subscription this node holds on the filter.
                self.subscriptions
                    .remove_where(&filter, |sub| sub.node == pkt.src);
            }
            Packet::Publish {
                id,
                topic,
                payload,
                retain,
                qos,
                trace,
            } => self.on_publish(ctx, pkt.src, id, topic, payload, retain, qos, trace),
            Packet::DeliverAck { id } => {
                if self.pending.remove(&id).is_some() {
                    self.stats.acked += 1;
                    ctx.telemetry().metrics.incr("pubsub.ack");
                    ctx.telemetry()
                        .metrics
                        .set_gauge("pubsub.pending_deliveries", self.pending.len() as f64);
                }
            }
            Packet::Ping => {
                ctx.send(
                    pkt.src,
                    crate::PUBSUB_PORT,
                    Packet::Pong {
                        incarnation: self.incarnation,
                    }
                    .encode(),
                );
            }
            Packet::PubAck { .. } | Packet::Deliver { .. } | Packet::Pong { .. } => {
                // Not broker-bound; ignore.
            }
        }
    }

    fn on_restart(&mut self, ctx: &mut Context<'_>) {
        // The broker's session state is volatile: subscriptions, retained
        // messages and unacked deliveries die with the process. Wiped
        // QoS 1 deliveries count as dropped so the conservation invariant
        // (`qos1_enqueued == acked + dropped + pending`) survives the
        // restart. Lifetime counters and the delivery-id sequence are kept
        // so post-restart ids never collide with pre-crash ones.
        self.subscriptions = SubscriptionTrie::default();
        self.retained.clear();
        self.stats.dropped += self.pending.len() as u64;
        self.pending.clear();
        self.incarnation += 1;
        ctx.telemetry().metrics.incr("pubsub.broker_restart");
        ctx.telemetry()
            .metrics
            .set_gauge("pubsub.pending_deliveries", 0.0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        let id = tag.0;
        let Some(pending) = self.pending.get_mut(&id) else {
            return; // already acked
        };
        if pending.retries_left == 0 {
            self.pending.remove(&id);
            self.stats.dropped += 1;
            ctx.telemetry().metrics.incr("pubsub.drop");
            ctx.telemetry()
                .metrics
                .set_gauge("pubsub.pending_deliveries", self.pending.len() as f64);
            return;
        }
        pending.retries_left -= 1;
        let (to, bytes, trace) = (pending.to, pending.bytes.clone(), pending.trace);
        ctx.send_traced(to, crate::PUBSUB_PORT, bytes, trace);
        self.stats.retries += 1;
        self.stats.delivered += 1;
        ctx.telemetry().metrics.incr("pubsub.retry");
        ctx.set_timer(RETRY_TIMEOUT, TimerTag(id));
    }
}
