//! Broker federation: topic-sharded brokers bridged per-link.
//!
//! The paper's middleware exposes one publish/subscribe entry point per
//! district; at production scale that single broker saturates (E8). The
//! federation tier shards the topic space by district — each shard is
//! owned by exactly one broker — and bridges the brokers pairwise:
//!
//! * **Shard ownership.** A [`ShardMap`] assigns every district (the
//!   second segment of `district/<d>/...` topics) to one broker index;
//!   topics outside the district namespace hash onto a shard. Ownership
//!   is a partition: every topic has exactly one owner.
//! * **Routing advertisements.** When a broker gains a local subscriber
//!   it advertises the filter to its peers
//!   ([`BridgeAdvertise`](crate::WirePacket::BridgeAdvertise)); peers
//!   forward matching publishes back. Withdrawn on the last local
//!   unsubscribe.
//! * **Batched bridge frames.** Cross-broker publishes ride a per-peer
//!   [`Batcher`] under a size/age [`BatchPolicy`]: N publishes crossing
//!   a bridge cost O(1) wire frames
//!   ([`BridgeBatch`](crate::WirePacket::BridgeBatch)).
//! * **Reliability.** Every batch is acknowledged; unacked batches are
//!   retried with the batch id held stable, and receivers deduplicate on
//!   batch id, so QoS 1 conservation holds across a lossy or flapping
//!   bridge link. Incarnation numbers ride on every bridge frame; a
//!   restart on either end wipes the routing state learned from the dead
//!   incarnation and triggers re-advertisement.
//!
//! The logic lives on [`BrokerNode`](crate::BrokerNode) (see
//! `broker.rs`); this module holds the shard map, the federation
//! configuration and the bridge bookkeeping.

use std::collections::{HashMap, HashSet};

use simnet::batch::{BatchPolicy, Batcher};
use simnet::NodeId;

use crate::topic::SubscriptionTrie;
use crate::wire::{BridgeFrame, QoS};
use crate::{Topic, TopicFilter};

/// Timer-tag namespace bit for per-peer batch flush timers (the low bits
/// carry the peer's shard index). Delivery-retry timers use the plain
/// delivery id, far below either bit.
pub(crate) const FLUSH_TIMER_BIT: u64 = 1 << 62;
/// Timer-tag namespace bit for batch retransmission timers (the low bits
/// carry the batch id).
pub(crate) const BATCH_RETRY_BIT: u64 = 1 << 63;

/// How long a broker waits for a [`BridgeBatchAck`] before resending a
/// batch. Combined with [`BATCH_MAX_RETRIES`] the bridge rides out link
/// outages of tens of seconds without losing QoS 1 frames.
pub(crate) const BATCH_RETRY_TIMEOUT: simnet::SimDuration = simnet::SimDuration::from_secs(2);
/// Retransmissions before a batch's frames are counted dropped.
pub(crate) const BATCH_MAX_RETRIES: u32 = 8;

/// Assigns every topic to exactly one broker shard.
///
/// District topics (`district/<d>/...`) are owned by the broker the
/// district was assigned to — or, for districts never assigned, by a
/// deterministic hash of the district name. Topics outside the district
/// namespace hash on their full text. Either way the owner is a pure
/// function of the topic, so ownership partitions the topic space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
    districts: HashMap<String, usize>,
}

impl ShardMap {
    /// A map over `shards` brokers with no district assignments yet
    /// (everything hash-routed). `shards` must be at least 1.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "a federation needs at least one shard");
        ShardMap {
            shards,
            districts: HashMap::new(),
        }
    }

    /// The degenerate single-broker map: everything owned by shard 0.
    pub fn single() -> Self {
        ShardMap::new(1)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Pins `district` to the broker at `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn assign(&mut self, district: impl Into<String>, shard: usize) {
        assert!(shard < self.shards, "shard {shard} out of range");
        self.districts.insert(district.into(), shard);
    }

    /// The district segment of a topic, when it has one.
    pub fn district_of(topic: &Topic) -> Option<&str> {
        let mut segs = topic.segments();
        match (segs.next(), segs.next()) {
            (Some("district"), Some(d)) => Some(d),
            _ => None,
        }
    }

    /// The owning shard of `topic`. Total and deterministic: every topic
    /// has exactly one owner in `0..shards()`.
    pub fn owner(&self, topic: &Topic) -> usize {
        match Self::district_of(topic) {
            Some(d) => match self.districts.get(d) {
                Some(&shard) => shard,
                None => fnv1a(d.as_bytes()) as usize % self.shards,
            },
            None => fnv1a(topic.as_str().as_bytes()) as usize % self.shards,
        }
    }
}

/// FNV-1a: a deterministic hash independent of the process's random
/// hasher state, so shard routing replays identically across runs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How a broker participates in a federation.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// This broker's shard index into `brokers`.
    pub index: usize,
    /// Every broker in the federation, shard index order (including this
    /// one at `index`).
    pub brokers: Vec<NodeId>,
    /// The shard ownership map (shared verbatim by all members).
    pub shard: ShardMap,
    /// Flush policy for the per-peer bridge batchers.
    pub batch: BatchPolicy,
}

/// A peer broker's advertised interest in a filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RemoteSub {
    pub(crate) peer: usize,
    pub(crate) qos: QoS,
}

/// An unacknowledged batch awaiting [`BridgeBatchAck`].
#[derive(Debug)]
pub(crate) struct PendingBatch {
    pub(crate) peer: usize,
    pub(crate) frames: Vec<BridgeFrame>,
    pub(crate) retries_left: u32,
    /// Instant of the last (re)transmission, so the ack's round-trip
    /// feeds the peer breaker's latency signal.
    pub(crate) sent_at: simnet::SimTime,
}

/// Breaker settings for the per-peer bridge links: sized to the 2 s
/// batch-retry cadence so a dead or gray peer trips after roughly six
/// consecutive failed transmissions, while an 8 s link flap (about four
/// retries, then successes) never does.
pub(crate) fn bridge_breaker_config() -> simnet::overload::BreakerConfig {
    simnet::overload::BreakerConfig {
        window: 12,
        min_samples: 6,
        error_threshold: 0.9,
        latency_threshold: simnet::SimDuration::from_millis(1500),
        slow_threshold: 0.9,
        open_for: simnet::SimDuration::from_secs(20),
        probes_to_close: 1,
    }
}

/// Bridge-side counters, reported per broker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BridgeStats {
    /// Frames queued for a peer (each is one cross-broker publish).
    pub frames_enqueued: u64,
    /// Batches put on the wire (first transmissions, not retries).
    pub batches_sent: u64,
    /// Frames acknowledged by the peer.
    pub frames_acked: u64,
    /// Frames abandoned: batch retries exhausted or wiped by a restart.
    pub frames_dropped: u64,
    /// Batches received from peers, duplicates included.
    pub batches_received: u64,
    /// Frames applied locally from received batches.
    pub frames_received: u64,
    /// Received batches discarded as retransmissions of an applied batch.
    pub duplicate_batches: u64,
    /// Batch retransmissions sent.
    pub retries: u64,
}

/// Per-broker federation bookkeeping (lives on `BrokerNode`).
#[derive(Debug)]
pub(crate) struct FederationState {
    pub(crate) config: FederationConfig,
    /// Peer node id → shard index, for classifying inbound bridge frames.
    pub(crate) peer_index: HashMap<NodeId, usize>,
    /// Filters peers advertised, matched against local publishes.
    pub(crate) remote_subs: SubscriptionTrie<RemoteSub>,
    /// The same filters indexed per peer (filter text → filter), so a
    /// peer restart can purge exactly what that peer advertised.
    pub(crate) peer_filters: Vec<HashMap<String, TopicFilter>>,
    /// One batcher per shard index (this broker's own slot stays empty).
    pub(crate) batchers: Vec<Batcher<BridgeFrame>>,
    /// Sent-but-unacked batches, by batch id.
    pub(crate) pending: HashMap<u64, PendingBatch>,
    /// Monotonic over the broker's whole lifetime (restarts included),
    /// so a retransmitted id never collides with a fresh one.
    pub(crate) next_batch_id: u64,
    /// Last incarnation observed per peer; a change wipes that peer's
    /// remote subscriptions and dedup history.
    pub(crate) peer_incarnation: Vec<u64>,
    /// Batch ids already applied, per peer (reset on peer restart).
    pub(crate) seen_batches: Vec<HashSet<u64>>,
    /// One circuit breaker per peer link (this broker's own slot idles
    /// closed); while a peer's breaker is open, its frames accumulate
    /// in the batcher instead of going on the wire.
    pub(crate) breakers: Vec<simnet::overload::CircuitBreaker>,
    pub(crate) stats: BridgeStats,
}

impl FederationState {
    pub(crate) fn new(config: FederationConfig) -> Self {
        assert!(
            config.index < config.brokers.len(),
            "federation index out of range"
        );
        assert_eq!(
            config.brokers.len(),
            config.shard.shards(),
            "one broker per shard"
        );
        let n = config.brokers.len();
        let peer_index = config
            .brokers
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        FederationState {
            peer_index,
            remote_subs: SubscriptionTrie::new(),
            peer_filters: (0..n).map(|_| HashMap::new()).collect(),
            batchers: (0..n).map(|_| Batcher::new(config.batch)).collect(),
            pending: HashMap::new(),
            next_batch_id: 1,
            peer_incarnation: vec![0; n],
            seen_batches: (0..n).map(|_| HashSet::new()).collect(),
            breakers: (0..n)
                .map(|_| simnet::overload::CircuitBreaker::new(bridge_breaker_config()))
                .collect(),
            stats: BridgeStats::default(),
            config,
        }
    }

    /// Shard indices of every peer (everyone but this broker).
    pub(crate) fn peer_shards(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.config.brokers.len()).filter(move |&i| i != self.config.index)
    }

    /// Frames buffered in batchers, not yet on the wire.
    pub(crate) fn buffered_frames(&self) -> usize {
        self.batchers.iter().map(Batcher::len).sum()
    }

    /// Frames on the wire awaiting acknowledgement.
    pub(crate) fn in_flight_frames(&self) -> usize {
        self.pending.values().map(|p| p.frames.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topic(s: &str) -> Topic {
        Topic::new(s).unwrap()
    }

    #[test]
    fn district_topics_follow_assignments() {
        let mut map = ShardMap::new(4);
        map.assign("d0", 0);
        map.assign("d1", 1);
        map.assign("d2", 2);
        assert_eq!(map.owner(&topic("district/d1/entity/e/device/x/power")), 1);
        assert_eq!(map.owner(&topic("district/d2/agg/mean")), 2);
        assert_eq!(map.owner(&topic("district/d0/anything")), 0);
    }

    #[test]
    fn unassigned_districts_hash_deterministically() {
        let map = ShardMap::new(4);
        let a = map.owner(&topic("district/mystery/x"));
        let b = map.owner(&topic("district/mystery/y/z"));
        assert_eq!(a, b, "same district, same owner regardless of suffix");
        assert!(a < 4);
    }

    #[test]
    fn non_district_topics_hash_on_full_text() {
        let map = ShardMap::new(3);
        let a = map.owner(&topic("ops/heartbeat"));
        assert_eq!(a, map.owner(&topic("ops/heartbeat")));
        assert!(a < 3);
    }

    #[test]
    fn single_shard_owns_everything() {
        let map = ShardMap::single();
        assert_eq!(map.owner(&topic("district/d9/x")), 0);
        assert_eq!(map.owner(&topic("a/b/c")), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn assignment_out_of_range_panics() {
        ShardMap::new(2).assign("d", 5);
    }

    #[test]
    fn timer_namespaces_are_disjoint() {
        // A flush tag can never alias a retry tag or a delivery id.
        let flush = FLUSH_TIMER_BIT | 7;
        let retry = BATCH_RETRY_BIT | 7;
        assert_ne!(flush, retry);
        assert_eq!(flush & BATCH_RETRY_BIT, 0);
        assert_ne!(retry & BATCH_RETRY_BIT, 0);
    }
}
