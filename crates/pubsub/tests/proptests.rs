//! Randomized tests on topics, filters, the subscription trie and the
//! wire codec, driven by `simnet::rng::DeterministicRng` (reproducible,
//! no external property-testing dependency).

use pubsub::{BridgeFrame, QoS, SubscriptionTrie, Topic, TopicFilter, WirePacket, WirePacketRef};
use simnet::rng::DeterministicRng;

const CASES: usize = 512;

fn segment(rng: &mut DeterministicRng) -> String {
    let chars = b"abcxyz0189";
    let len = rng.next_range(1, 6) as usize;
    (0..len)
        .map(|_| chars[rng.next_bounded(chars.len() as u64) as usize] as char)
        .collect()
}

fn rand_topic(rng: &mut DeterministicRng) -> Topic {
    let n = rng.next_range(1, 5);
    let segs: Vec<String> = (0..n).map(|_| segment(rng)).collect();
    Topic::new(segs.join("/")).expect("valid by construction")
}

/// A filter with random segments, `+` wildcards, and maybe a trailing `#`.
fn rand_filter(rng: &mut DeterministicRng) -> TopicFilter {
    let n = rng.next_range(1, 5);
    let mut parts: Vec<String> = (0..n)
        .map(|_| {
            if rng.next_bounded(3) == 0 {
                "+".to_owned()
            } else {
                segment(rng)
            }
        })
        .collect();
    if rng.chance(0.5) {
        parts.push("#".to_owned());
    }
    TopicFilter::new(parts.join("/")).expect("valid by construction")
}

fn any_text(rng: &mut DeterministicRng, max_len: usize) -> String {
    let len = rng.next_bounded(max_len as u64 + 1) as usize;
    (0..len)
        .filter_map(|_| char::from_u32(rng.next_bounded(0x500) as u32))
        .collect()
}

#[test]
fn every_topic_matches_itself_and_hash() {
    let mut rng = DeterministicRng::seed_from(0x50B0_0001);
    for _ in 0..CASES {
        let topic = rand_topic(&mut rng);
        let exact: TopicFilter = topic.clone().into();
        assert!(exact.matches(&topic));
        assert!(TopicFilter::new("#").expect("valid").matches(&topic));
    }
}

#[test]
fn trie_agrees_with_linear_matching() {
    let mut rng = DeterministicRng::seed_from(0x50B0_0002);
    for _ in 0..CASES / 4 {
        let filters: Vec<TopicFilter> = (0..rng.next_bounded(24))
            .map(|_| rand_filter(&mut rng))
            .collect();
        let mut trie = SubscriptionTrie::new();
        for (i, f) in filters.iter().enumerate() {
            trie.insert(f, i);
        }
        for _ in 0..rng.next_range(1, 7) {
            let topic = rand_topic(&mut rng);
            let mut from_trie: Vec<usize> = trie.matches(&topic).into_iter().copied().collect();
            let mut linear: Vec<usize> = filters
                .iter()
                .enumerate()
                .filter(|(_, f)| f.matches(&topic))
                .map(|(i, _)| i)
                .collect();
            from_trie.sort_unstable();
            linear.sort_unstable();
            assert_eq!(from_trie, linear, "topic {topic}");
        }
    }
}

#[test]
fn trie_insert_remove_is_identity() {
    let mut rng = DeterministicRng::seed_from(0x50B0_0003);
    for _ in 0..CASES / 4 {
        let filters: Vec<TopicFilter> = (0..rng.next_range(1, 15))
            .map(|_| rand_filter(&mut rng))
            .collect();
        let topic = rand_topic(&mut rng);
        let mut trie = SubscriptionTrie::new();
        for (i, f) in filters.iter().enumerate() {
            trie.insert(f, i);
        }
        let before: Vec<usize> = trie.matches(&topic).into_iter().copied().collect();
        // Insert and remove a sentinel under every filter.
        for f in &filters {
            trie.insert(f, usize::MAX);
        }
        for f in &filters {
            assert!(trie.remove(f, &usize::MAX));
        }
        let after: Vec<usize> = trie.matches(&topic).into_iter().copied().collect();
        assert_eq!(before, after);
        assert_eq!(trie.len(), filters.len());
    }
}

#[test]
fn remove_where_removes_exactly_the_predicate() {
    let mut rng = DeterministicRng::seed_from(0x50B0_0004);
    for _ in 0..CASES / 4 {
        let filter = rand_filter(&mut rng);
        let values: Vec<usize> = (0..rng.next_range(1, 9))
            .map(|_| rng.next_bounded(10) as usize)
            .collect();
        let mut trie = SubscriptionTrie::new();
        for &v in &values {
            trie.insert(&filter, v);
        }
        let evens = values.iter().filter(|v| *v % 2 == 0).count();
        let removed = trie.remove_where(&filter, |v| v % 2 == 0);
        assert_eq!(removed, evens);
        assert_eq!(trie.len(), values.len() - evens);
    }
}

#[test]
fn wire_packets_round_trip() {
    let mut rng = DeterministicRng::seed_from(0x50B0_0005);
    for _ in 0..CASES {
        let payload: Vec<u8> = (0..rng.next_bounded(256))
            .map(|_| rng.next_u64() as u8)
            .collect();
        let packet = WirePacket::Publish {
            id: rng.next_u64(),
            topic: rand_topic(&mut rng),
            payload,
            retain: rng.chance(0.5),
            qos: QoS::AtLeastOnce,
            trace: rng.next_u64(),
            span: rng.next_u64(),
        };
        assert_eq!(
            WirePacket::decode(&packet.encode()).expect("round trip"),
            packet
        );
    }
}

#[test]
fn wire_decoder_never_panics() {
    let mut rng = DeterministicRng::seed_from(0x50B0_0006);
    for _ in 0..CASES {
        let bytes: Vec<u8> = (0..rng.next_bounded(128))
            .map(|_| rng.next_u64() as u8)
            .collect();
        let _ = WirePacket::decode(&bytes);
    }
}

#[test]
fn grammar_rejections_never_panic() {
    let mut rng = DeterministicRng::seed_from(0x50B0_0007);
    for _ in 0..CASES {
        let text = any_text(&mut rng, 32);
        let _ = Topic::new(text.clone());
        let _ = TopicFilter::new(text);
    }
}

/// A random district-flavoured or free-form topic.
fn rand_district_topic(rng: &mut DeterministicRng, districts: &[String]) -> Topic {
    if rng.chance(0.7) {
        let d = &districts[rng.next_bounded(districts.len() as u64) as usize];
        let tail: Vec<String> = (0..rng.next_range(1, 4)).map(|_| segment(rng)).collect();
        Topic::new(format!("district/{d}/{}", tail.join("/"))).expect("valid by construction")
    } else {
        rand_topic(rng)
    }
}

#[test]
fn shard_routing_is_a_partition() {
    use pubsub::ShardMap;
    let mut rng = DeterministicRng::seed_from(0x50B0_0008);
    for _ in 0..CASES {
        let shards = rng.next_range(1, 8) as usize;
        let mut map = ShardMap::new(shards);
        let districts: Vec<String> = (0..rng.next_range(1, 12))
            .map(|_| segment(&mut rng))
            .collect();
        for d in &districts {
            // Some districts are explicitly assigned, some hash-routed.
            if rng.chance(0.6) {
                map.assign(d.clone(), rng.next_bounded(shards as u64) as usize);
            }
        }
        for _ in 0..16 {
            let topic = rand_district_topic(&mut rng, &districts);
            // Total: every topic has an owner, and it is in range.
            let owner = map.owner(&topic);
            assert!(owner < shards, "{topic}: owner {owner} of {shards}");
            // A function: asking twice gives the same owner — so shard
            // ownership partitions the topic space (each topic in
            // exactly one shard).
            assert_eq!(owner, map.owner(&topic), "{topic}: deterministic");
            // District topics route on the district alone: any sibling
            // topic in the same district has the same owner.
            if let Some(d) = ShardMap::district_of(&topic) {
                let sibling = Topic::new(format!("district/{d}/{}", segment(&mut rng)))
                    .expect("valid by construction");
                assert_eq!(owner, map.owner(&sibling), "{topic} vs {sibling}");
            }
        }
    }
}

#[test]
fn bridge_batch_frames_round_trip() {
    let mut rng = DeterministicRng::seed_from(0x50B0_0009);
    for _ in 0..CASES {
        let frames: Vec<BridgeFrame> = (0..rng.next_bounded(12))
            .map(|_| BridgeFrame {
                topic: rand_topic(&mut rng),
                payload: (0..rng.next_bounded(64))
                    .map(|_| rng.next_u64() as u8)
                    .collect(),
                retain: rng.chance(0.3),
                qos: if rng.chance(0.5) {
                    QoS::AtLeastOnce
                } else {
                    QoS::AtMostOnce
                },
                trace: rng.next_u64(),
                span: rng.next_u64(),
            })
            .collect();
        let packet = WirePacket::BridgeBatch {
            incarnation: rng.next_u64(),
            batch_id: rng.next_u64(),
            frames,
        };
        assert_eq!(
            WirePacket::decode(&packet.encode()).expect("round trip"),
            packet
        );
    }
}

// ---------------------------------------------------------------------
// PR-6 zero-copy wire layer: the borrowed decoder, the owned decoder and
// the encoder are pinned to each other over random packets of every
// variant, random truncations at every cut point, and random byte flips.
// ---------------------------------------------------------------------

fn rand_qos(rng: &mut DeterministicRng) -> QoS {
    if rng.chance(0.5) {
        QoS::AtLeastOnce
    } else {
        QoS::AtMostOnce
    }
}

fn rand_payload(rng: &mut DeterministicRng, max: u64) -> Vec<u8> {
    (0..rng.next_bounded(max))
        .map(|_| rng.next_u64() as u8)
        .collect()
}

fn rand_frame(rng: &mut DeterministicRng) -> BridgeFrame {
    BridgeFrame {
        topic: rand_topic(rng),
        payload: rand_payload(rng, 48),
        retain: rng.chance(0.3),
        qos: rand_qos(rng),
        trace: rng.next_u64(),
        span: rng.next_u64(),
    }
}

/// A random wire packet drawing uniformly from all 15 variants.
fn rand_packet(rng: &mut DeterministicRng) -> WirePacket {
    match rng.next_bounded(15) {
        0 => WirePacket::Subscribe {
            filter: rand_filter(rng),
            qos: rand_qos(rng),
        },
        1 => WirePacket::Unsubscribe {
            filter: rand_filter(rng),
        },
        2 => WirePacket::Publish {
            id: rng.next_u64(),
            topic: rand_topic(rng),
            payload: rand_payload(rng, 128),
            retain: rng.chance(0.5),
            qos: rand_qos(rng),
            trace: rng.next_u64(),
            span: rng.next_u64(),
        },
        3 => WirePacket::PubAck { id: rng.next_u64() },
        4 => WirePacket::Deliver {
            id: rng.next_u64(),
            topic: rand_topic(rng),
            payload: rand_payload(rng, 128),
            qos: rand_qos(rng),
            trace: rng.next_u64(),
            span: rng.next_u64(),
        },
        5 => WirePacket::DeliverAck { id: rng.next_u64() },
        6 => WirePacket::Ping,
        7 => WirePacket::Pong {
            incarnation: rng.next_u64(),
        },
        8 => WirePacket::BridgeAdvertise {
            incarnation: rng.next_u64(),
            filter: rand_filter(rng),
            qos: rand_qos(rng),
        },
        9 => WirePacket::BridgeUnadvertise {
            incarnation: rng.next_u64(),
            filter: rand_filter(rng),
        },
        10 => WirePacket::BridgeBatch {
            incarnation: rng.next_u64(),
            batch_id: rng.next_u64(),
            frames: (0..rng.next_bounded(8)).map(|_| rand_frame(rng)).collect(),
        },
        11 => WirePacket::BridgeBatchAck {
            batch_id: rng.next_u64(),
        },
        12 => WirePacket::BridgeHello {
            incarnation: rng.next_u64(),
        },
        13 => WirePacket::OpsGet {
            id: rng.next_u64(),
            path: format!("/{}", segment(rng)),
        },
        _ => WirePacket::OpsReply {
            id: rng.next_u64(),
            status: if rng.chance(0.7) { 200 } else { 404 },
            body: rand_payload(rng, 96),
        },
    }
}

#[test]
fn borrowed_decode_agrees_with_owned_decode_for_every_variant() {
    let mut rng = DeterministicRng::seed_from(0x50B0_000A);
    for _ in 0..CASES * 2 {
        let packet = rand_packet(&mut rng);
        let bytes = packet.encode();
        let borrowed = WirePacketRef::decode(&bytes).expect("encoder output decodes");
        // The three representations form a commuting triangle:
        // owned --encode--> bytes --borrowed decode--> view --to_packet--> owned.
        assert_eq!(borrowed, packet.view(), "view mismatch for {packet:?}");
        assert_eq!(borrowed.to_packet(), packet, "materialize mismatch");
        assert_eq!(
            WirePacket::decode(&bytes).expect("owned decode"),
            packet,
            "owned decode mismatch"
        );
        assert_eq!(borrowed.encode(), bytes, "re-encode is not the identity");
    }
}

#[test]
fn truncation_at_every_cut_point_is_rejected_by_both_decoders() {
    let mut rng = DeterministicRng::seed_from(0x50B0_000B);
    for _ in 0..CASES / 4 {
        let packet = rand_packet(&mut rng);
        let bytes = packet.encode();
        for cut in 0..bytes.len() {
            let prefix = &bytes[..cut];
            assert!(
                WirePacketRef::decode(prefix).is_err(),
                "borrowed decoder accepted a {cut}-byte prefix of {packet:?}"
            );
            assert!(
                WirePacket::decode(prefix).is_err(),
                "owned decoder accepted a {cut}-byte prefix of {packet:?}"
            );
        }
    }
}

#[test]
fn byte_flip_fuzz_never_panics_and_decoders_agree() {
    let mut rng = DeterministicRng::seed_from(0x50B0_000C);
    for _ in 0..CASES * 2 {
        let packet = rand_packet(&mut rng);
        let mut bytes = packet.encode();
        // Flip 1..=3 random bits; the result may still be a valid packet
        // (e.g. a payload byte changed) — what matters is that neither
        // decoder panics and both reach the same verdict.
        for _ in 0..rng.next_range(1, 4) {
            let i = rng.next_bounded(bytes.len() as u64) as usize;
            bytes[i] ^= 1 << rng.next_bounded(8);
        }
        let borrowed = WirePacketRef::decode(&bytes);
        let owned = WirePacket::decode(&bytes);
        match (borrowed, owned) {
            (Ok(b), Ok(o)) => assert_eq!(b.to_packet(), o, "decoders disagree on value"),
            (Err(_), Err(_)) => {}
            (b, o) => panic!("decoders disagree on validity: borrowed={b:?} owned={o:?}"),
        }
    }
}
