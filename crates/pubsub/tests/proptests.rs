//! Property-based tests on topics, filters, the subscription trie and
//! the wire codec.

use proptest::prelude::*;
use pubsub::{SubscriptionTrie, Topic, TopicFilter, WirePacket};

fn topic_strategy() -> impl Strategy<Value = Topic> {
    prop::collection::vec("[a-z0-9]{1,6}", 1..6)
        .prop_map(|segs| Topic::new(segs.join("/")).expect("valid by construction"))
}

/// A filter derived from a topic: keep/wildcard each segment, maybe a
/// trailing `#`.
fn filter_strategy() -> impl Strategy<Value = TopicFilter> {
    (
        prop::collection::vec(("[a-z0-9]{1,6}", 0u8..3), 1..6),
        any::<bool>(),
    )
        .prop_map(|(segs, hash)| {
            let mut parts: Vec<String> = segs
                .into_iter()
                .map(|(text, kind)| match kind {
                    0 => text,
                    _ => "+".to_owned(),
                })
                .collect();
            if hash {
                parts.push("#".to_owned());
            }
            TopicFilter::new(parts.join("/")).expect("valid by construction")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn every_topic_matches_itself_and_hash(topic in topic_strategy()) {
        let exact: TopicFilter = topic.clone().into();
        prop_assert!(exact.matches(&topic));
        prop_assert!(TopicFilter::new("#").expect("valid").matches(&topic));
    }

    #[test]
    fn trie_agrees_with_linear_matching(
        filters in prop::collection::vec(filter_strategy(), 0..24),
        topics in prop::collection::vec(topic_strategy(), 1..8),
    ) {
        let mut trie = SubscriptionTrie::new();
        for (i, f) in filters.iter().enumerate() {
            trie.insert(f, i);
        }
        for topic in &topics {
            let mut from_trie: Vec<usize> =
                trie.matches(topic).into_iter().copied().collect();
            let mut linear: Vec<usize> = filters
                .iter()
                .enumerate()
                .filter(|(_, f)| f.matches(topic))
                .map(|(i, _)| i)
                .collect();
            from_trie.sort_unstable();
            linear.sort_unstable();
            prop_assert_eq!(from_trie, linear, "topic {}", topic);
        }
    }

    #[test]
    fn trie_insert_remove_is_identity(
        filters in prop::collection::vec(filter_strategy(), 1..16),
        topic in topic_strategy(),
    ) {
        let mut trie = SubscriptionTrie::new();
        for (i, f) in filters.iter().enumerate() {
            trie.insert(f, i);
        }
        let before: Vec<usize> = trie.matches(&topic).into_iter().copied().collect();
        // Insert and remove a sentinel under every filter.
        for f in &filters {
            trie.insert(f, usize::MAX);
        }
        for f in &filters {
            prop_assert!(trie.remove(f, &usize::MAX));
        }
        let after: Vec<usize> = trie.matches(&topic).into_iter().copied().collect();
        prop_assert_eq!(before, after);
        prop_assert_eq!(trie.len(), filters.len());
    }

    #[test]
    fn remove_where_removes_exactly_the_predicate(
        filter in filter_strategy(),
        values in prop::collection::vec(0usize..10, 1..10),
    ) {
        let mut trie = SubscriptionTrie::new();
        for &v in &values {
            trie.insert(&filter, v);
        }
        let evens = values.iter().filter(|v| *v % 2 == 0).count();
        let removed = trie.remove_where(&filter, |v| v % 2 == 0);
        prop_assert_eq!(removed, evens);
        prop_assert_eq!(trie.len(), values.len() - evens);
    }

    #[test]
    fn wire_packets_round_trip(
        id in any::<u64>(),
        topic in topic_strategy(),
        payload in prop::collection::vec(any::<u8>(), 0..256),
        retain in any::<bool>(),
    ) {
        let packet = WirePacket::Publish {
            id,
            topic,
            payload,
            retain,
            qos: pubsub::QoS::AtLeastOnce,
        };
        prop_assert_eq!(WirePacket::decode(&packet.encode()).expect("round trip"), packet);
    }

    #[test]
    fn wire_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = WirePacket::decode(&bytes);
    }

    #[test]
    fn grammar_rejections_never_panic(text in "\\PC{0,32}") {
        let _ = Topic::new(text.clone());
        let _ = TopicFilter::new(text);
    }
}
