//! Randomized tests on topics, filters, the subscription trie and the
//! wire codec, driven by `simnet::rng::DeterministicRng` (reproducible,
//! no external property-testing dependency).

use pubsub::{QoS, SubscriptionTrie, Topic, TopicFilter, WirePacket};
use simnet::rng::DeterministicRng;

const CASES: usize = 512;

fn segment(rng: &mut DeterministicRng) -> String {
    let chars = b"abcxyz0189";
    let len = rng.next_range(1, 6) as usize;
    (0..len)
        .map(|_| chars[rng.next_bounded(chars.len() as u64) as usize] as char)
        .collect()
}

fn rand_topic(rng: &mut DeterministicRng) -> Topic {
    let n = rng.next_range(1, 5);
    let segs: Vec<String> = (0..n).map(|_| segment(rng)).collect();
    Topic::new(segs.join("/")).expect("valid by construction")
}

/// A filter with random segments, `+` wildcards, and maybe a trailing `#`.
fn rand_filter(rng: &mut DeterministicRng) -> TopicFilter {
    let n = rng.next_range(1, 5);
    let mut parts: Vec<String> = (0..n)
        .map(|_| {
            if rng.next_bounded(3) == 0 {
                "+".to_owned()
            } else {
                segment(rng)
            }
        })
        .collect();
    if rng.chance(0.5) {
        parts.push("#".to_owned());
    }
    TopicFilter::new(parts.join("/")).expect("valid by construction")
}

fn any_text(rng: &mut DeterministicRng, max_len: usize) -> String {
    let len = rng.next_bounded(max_len as u64 + 1) as usize;
    (0..len)
        .filter_map(|_| char::from_u32(rng.next_bounded(0x500) as u32))
        .collect()
}

#[test]
fn every_topic_matches_itself_and_hash() {
    let mut rng = DeterministicRng::seed_from(0x50B0_0001);
    for _ in 0..CASES {
        let topic = rand_topic(&mut rng);
        let exact: TopicFilter = topic.clone().into();
        assert!(exact.matches(&topic));
        assert!(TopicFilter::new("#").expect("valid").matches(&topic));
    }
}

#[test]
fn trie_agrees_with_linear_matching() {
    let mut rng = DeterministicRng::seed_from(0x50B0_0002);
    for _ in 0..CASES / 4 {
        let filters: Vec<TopicFilter> = (0..rng.next_bounded(24))
            .map(|_| rand_filter(&mut rng))
            .collect();
        let mut trie = SubscriptionTrie::new();
        for (i, f) in filters.iter().enumerate() {
            trie.insert(f, i);
        }
        for _ in 0..rng.next_range(1, 7) {
            let topic = rand_topic(&mut rng);
            let mut from_trie: Vec<usize> = trie.matches(&topic).into_iter().copied().collect();
            let mut linear: Vec<usize> = filters
                .iter()
                .enumerate()
                .filter(|(_, f)| f.matches(&topic))
                .map(|(i, _)| i)
                .collect();
            from_trie.sort_unstable();
            linear.sort_unstable();
            assert_eq!(from_trie, linear, "topic {topic}");
        }
    }
}

#[test]
fn trie_insert_remove_is_identity() {
    let mut rng = DeterministicRng::seed_from(0x50B0_0003);
    for _ in 0..CASES / 4 {
        let filters: Vec<TopicFilter> = (0..rng.next_range(1, 15))
            .map(|_| rand_filter(&mut rng))
            .collect();
        let topic = rand_topic(&mut rng);
        let mut trie = SubscriptionTrie::new();
        for (i, f) in filters.iter().enumerate() {
            trie.insert(f, i);
        }
        let before: Vec<usize> = trie.matches(&topic).into_iter().copied().collect();
        // Insert and remove a sentinel under every filter.
        for f in &filters {
            trie.insert(f, usize::MAX);
        }
        for f in &filters {
            assert!(trie.remove(f, &usize::MAX));
        }
        let after: Vec<usize> = trie.matches(&topic).into_iter().copied().collect();
        assert_eq!(before, after);
        assert_eq!(trie.len(), filters.len());
    }
}

#[test]
fn remove_where_removes_exactly_the_predicate() {
    let mut rng = DeterministicRng::seed_from(0x50B0_0004);
    for _ in 0..CASES / 4 {
        let filter = rand_filter(&mut rng);
        let values: Vec<usize> = (0..rng.next_range(1, 9))
            .map(|_| rng.next_bounded(10) as usize)
            .collect();
        let mut trie = SubscriptionTrie::new();
        for &v in &values {
            trie.insert(&filter, v);
        }
        let evens = values.iter().filter(|v| *v % 2 == 0).count();
        let removed = trie.remove_where(&filter, |v| v % 2 == 0);
        assert_eq!(removed, evens);
        assert_eq!(trie.len(), values.len() - evens);
    }
}

#[test]
fn wire_packets_round_trip() {
    let mut rng = DeterministicRng::seed_from(0x50B0_0005);
    for _ in 0..CASES {
        let payload: Vec<u8> = (0..rng.next_bounded(256))
            .map(|_| rng.next_u64() as u8)
            .collect();
        let packet = WirePacket::Publish {
            id: rng.next_u64(),
            topic: rand_topic(&mut rng),
            payload,
            retain: rng.chance(0.5),
            qos: QoS::AtLeastOnce,
            trace: rng.next_u64(),
        };
        assert_eq!(
            WirePacket::decode(&packet.encode()).expect("round trip"),
            packet
        );
    }
}

#[test]
fn wire_decoder_never_panics() {
    let mut rng = DeterministicRng::seed_from(0x50B0_0006);
    for _ in 0..CASES {
        let bytes: Vec<u8> = (0..rng.next_bounded(128))
            .map(|_| rng.next_u64() as u8)
            .collect();
        let _ = WirePacket::decode(&bytes);
    }
}

#[test]
fn grammar_rejections_never_panic() {
    let mut rng = DeterministicRng::seed_from(0x50B0_0007);
    for _ in 0..CASES {
        let text = any_text(&mut rng, 32);
        let _ = Topic::new(text.clone());
        let _ = TopicFilter::new(text);
    }
}

/// A random district-flavoured or free-form topic.
fn rand_district_topic(rng: &mut DeterministicRng, districts: &[String]) -> Topic {
    if rng.chance(0.7) {
        let d = &districts[rng.next_bounded(districts.len() as u64) as usize];
        let tail: Vec<String> = (0..rng.next_range(1, 4)).map(|_| segment(rng)).collect();
        Topic::new(format!("district/{d}/{}", tail.join("/"))).expect("valid by construction")
    } else {
        rand_topic(rng)
    }
}

#[test]
fn shard_routing_is_a_partition() {
    use pubsub::ShardMap;
    let mut rng = DeterministicRng::seed_from(0x50B0_0008);
    for _ in 0..CASES {
        let shards = rng.next_range(1, 8) as usize;
        let mut map = ShardMap::new(shards);
        let districts: Vec<String> = (0..rng.next_range(1, 12))
            .map(|_| segment(&mut rng))
            .collect();
        for d in &districts {
            // Some districts are explicitly assigned, some hash-routed.
            if rng.chance(0.6) {
                map.assign(d.clone(), rng.next_bounded(shards as u64) as usize);
            }
        }
        for _ in 0..16 {
            let topic = rand_district_topic(&mut rng, &districts);
            // Total: every topic has an owner, and it is in range.
            let owner = map.owner(&topic);
            assert!(owner < shards, "{topic}: owner {owner} of {shards}");
            // A function: asking twice gives the same owner — so shard
            // ownership partitions the topic space (each topic in
            // exactly one shard).
            assert_eq!(owner, map.owner(&topic), "{topic}: deterministic");
            // District topics route on the district alone: any sibling
            // topic in the same district has the same owner.
            if let Some(d) = ShardMap::district_of(&topic) {
                let sibling = Topic::new(format!("district/{d}/{}", segment(&mut rng)))
                    .expect("valid by construction");
                assert_eq!(owner, map.owner(&sibling), "{topic} vs {sibling}");
            }
        }
    }
}

#[test]
fn bridge_batch_frames_round_trip() {
    use pubsub::BridgeFrame;
    let mut rng = DeterministicRng::seed_from(0x50B0_0009);
    for _ in 0..CASES {
        let frames: Vec<BridgeFrame> = (0..rng.next_bounded(12))
            .map(|_| BridgeFrame {
                topic: rand_topic(&mut rng),
                payload: (0..rng.next_bounded(64))
                    .map(|_| rng.next_u64() as u8)
                    .collect(),
                retain: rng.chance(0.3),
                qos: if rng.chance(0.5) {
                    QoS::AtLeastOnce
                } else {
                    QoS::AtMostOnce
                },
                trace: rng.next_u64(),
            })
            .collect();
        let packet = WirePacket::BridgeBatch {
            incarnation: rng.next_u64(),
            batch_id: rng.next_u64(),
            frames,
        };
        assert_eq!(
            WirePacket::decode(&packet.encode()).expect("round trip"),
            packet
        );
    }
}
