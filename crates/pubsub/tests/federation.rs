//! End-to-end tests of the federated broker tier: shard routing,
//! bridge batching, retained mirroring, advertisement withdrawal and
//! incarnation recovery — all over the simulated network.

use pubsub::federation::{FederationConfig, ShardMap};
use pubsub::{BrokerNode, PubSubClient, PubSubEvent, QoS, Topic, TopicFilter};
use simnet::batch::BatchPolicy;
use simnet::{
    Context, LinkModel, Node, NodeId, Packet, SimConfig, SimDuration, SimTime, Simulator, TimerTag,
};

/// Client timer tags start here; script tags stay tiny.
const CLIENT_TAGS: u64 = 1 << 40;
const TAG_PUBLISH: u64 = 1;
const TAG_SUBSCRIBE: u64 = 2;
const TAG_UNSUBSCRIBE: u64 = 3;

fn ideal_sim(seed: u64) -> Simulator {
    Simulator::new(SimConfig {
        seed,
        default_link: LinkModel::ideal(),
    })
}

fn small_batches() -> BatchPolicy {
    BatchPolicy {
        max_items: 8,
        max_bytes: 4 * 1024,
        max_age: SimDuration::from_millis(10),
    }
}

/// Adds `shards` federated brokers with round-robin district ownership.
fn build_federation(
    sim: &mut Simulator,
    shards: usize,
    districts: &[&str],
    batch: BatchPolicy,
) -> Vec<NodeId> {
    let brokers: Vec<NodeId> = (0..shards)
        .map(|i| {
            sim.add_node(
                format!("broker{i}"),
                BrokerNode::with_label(format!("b{i}")),
            )
        })
        .collect();
    let mut shard = ShardMap::new(shards);
    for (i, d) in districts.iter().enumerate() {
        shard.assign(*d, i % shards);
    }
    for (i, &id) in brokers.iter().enumerate() {
        let config = FederationConfig {
            index: i,
            brokers: brokers.clone(),
            shard: shard.clone(),
            batch,
        };
        sim.node_mut::<BrokerNode>(id)
            .expect("broker node")
            .federate(config);
    }
    brokers
}

/// Every bridge frame a broker ever enqueued is accounted for.
fn assert_bridge_conservation(sim: &Simulator, brokers: &[NodeId]) {
    for &id in brokers {
        let b = sim.node_ref::<BrokerNode>(id).expect("broker");
        let s = b.bridge_stats();
        assert_eq!(
            s.frames_enqueued,
            s.frames_acked
                + s.frames_dropped
                + b.bridge_in_flight() as u64
                + b.bridge_buffered() as u64,
            "bridge conservation on {id}: {s:?}"
        );
    }
}

/// A subscriber that can subscribe at a delay, unsubscribe on schedule,
/// and records every message (topic text, payload).
struct Sub {
    client: PubSubClient,
    filter: &'static str,
    qos: QoS,
    subscribe_at: SimDuration,
    unsubscribe_at: Option<SimDuration>,
    keepalive: Option<SimDuration>,
    got: Vec<(String, Vec<u8>)>,
}

impl Sub {
    fn new(broker: NodeId, filter: &'static str, qos: QoS) -> Self {
        Sub {
            client: PubSubClient::new(broker, CLIENT_TAGS),
            filter,
            qos,
            subscribe_at: SimDuration::ZERO,
            unsubscribe_at: None,
            keepalive: None,
            got: Vec::new(),
        }
    }
}

impl Node for Sub {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.subscribe_at, TimerTag(TAG_SUBSCRIBE));
        if let Some(at) = self.unsubscribe_at {
            ctx.set_timer(at, TimerTag(TAG_UNSUBSCRIBE));
        }
        if let Some(interval) = self.keepalive {
            self.client.start_keepalive(ctx, interval);
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if let Some(PubSubEvent::Message { topic, payload, .. }) = self.client.accept(ctx, &pkt) {
            self.got.push((topic.as_str().to_owned(), payload));
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        match tag.0 {
            TAG_SUBSCRIBE => {
                let filter = TopicFilter::new(self.filter).expect("filter");
                self.client.subscribe(ctx, filter, self.qos);
            }
            TAG_UNSUBSCRIBE => {
                let filter = TopicFilter::new(self.filter).expect("filter");
                self.client.unsubscribe(ctx, filter);
            }
            _ => {
                if self.client.owns_tag(tag) {
                    self.client.on_timer(ctx, tag);
                }
            }
        }
    }
}

/// Publishes `count` sequenced messages on an interval, payload = seq.
struct Pub {
    client: PubSubClient,
    topic: &'static str,
    count: u64,
    interval: SimDuration,
    qos: QoS,
    retain: bool,
    sent: u64,
}

impl Pub {
    fn new(broker: NodeId, topic: &'static str, count: u64, interval: SimDuration) -> Self {
        Pub {
            client: PubSubClient::new(broker, CLIENT_TAGS),
            topic,
            count,
            interval,
            qos: QoS::AtMostOnce,
            retain: false,
            sent: 0,
        }
    }
}

impl Node for Pub {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.interval, TimerTag(TAG_PUBLISH));
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        self.client.accept(ctx, &pkt);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        if tag.0 == TAG_PUBLISH {
            if self.sent < self.count {
                let topic = Topic::new(self.topic).expect("topic");
                let payload = self.sent.to_string().into_bytes();
                self.client
                    .publish(ctx, topic, payload, self.retain, self.qos);
                self.sent += 1;
                ctx.set_timer(self.interval, TimerTag(TAG_PUBLISH));
            }
        } else if self.client.owns_tag(tag) {
            self.client.on_timer(ctx, tag);
        }
    }
}

/// Payload sequence numbers a subscriber saw, in arrival order.
fn seqs(got: &[(String, Vec<u8>)]) -> Vec<u64> {
    got.iter()
        .map(|(_, p)| String::from_utf8_lossy(p).parse().expect("seq payload"))
        .collect()
}

fn assert_exactly_once(got: &[(String, Vec<u8>)], count: u64, who: &str) {
    let mut s = seqs(got);
    s.sort_unstable();
    let expect: Vec<u64> = (0..count).collect();
    assert_eq!(s, expect, "{who}: every publish exactly once");
}

#[test]
fn cross_shard_publishes_delivered_exactly_once() {
    let mut sim = ideal_sim(11);
    let brokers = build_federation(&mut sim, 3, &["d0", "d1", "d2"], small_batches());
    // d0 is owned by broker 0; subscribers hang off all three brokers.
    let local = sim.add_node(
        "sub-local",
        Sub::new(brokers[0], "district/d0/#", QoS::AtMostOnce),
    );
    let far_hash = sim.add_node(
        "sub-far-hash",
        Sub::new(
            brokers[1],
            "district/d0/entity/+/device/+/+",
            QoS::AtMostOnce,
        ),
    );
    let far_tree = sim.add_node(
        "sub-far-tree",
        Sub::new(brokers[2], "district/d0/#", QoS::AtMostOnce),
    );
    const N: u64 = 40;
    // Publish fast relative to the 10ms batch age so batching has
    // something to amortize.
    let publisher = Pub::new(
        brokers[0],
        "district/d0/entity/e1/device/m3/power",
        N,
        SimDuration::from_millis(1),
    );
    sim.add_node("pub", publisher);
    sim.run_until(SimTime::from_secs(5));

    for (id, who) in [
        (local, "local"),
        (far_hash, "far-hash"),
        (far_tree, "far-tree"),
    ] {
        assert_exactly_once(&sim.node_ref::<Sub>(id).expect("sub").got, N, who);
    }
    // The owner forwarded one copy per interested peer, batched: far
    // fewer wire frames than publishes crossed each bridge.
    let owner = sim.node_ref::<BrokerNode>(brokers[0]).expect("broker");
    let stats = owner.bridge_stats();
    assert_eq!(stats.frames_enqueued, 2 * N, "one copy per remote peer");
    assert_eq!(stats.frames_acked, 2 * N);
    assert_eq!(stats.frames_dropped, 0);
    assert!(
        stats.batches_sent <= N / 2,
        "batching must amortize: {} batches for {} publishes",
        stats.batches_sent,
        N
    );
    assert_bridge_conservation(&sim, &brokers);
}

#[test]
fn retained_messages_cross_the_bridge_to_late_subscribers() {
    let mut sim = ideal_sim(12);
    let brokers = build_federation(&mut sim, 2, &["d0", "d1"], small_batches());
    // One retained publish to the owner (broker 0) at t=50ms.
    let mut publisher = Pub::new(
        brokers[0],
        "district/d0/entity/e1/device/m1/setpoint",
        1,
        SimDuration::from_millis(50),
    );
    publisher.retain = true;
    sim.add_node("pub", publisher);
    // A subscriber appears on the *other* broker a full second later.
    let mut late = Sub::new(brokers[1], "district/d0/#", QoS::AtMostOnce);
    late.subscribe_at = SimDuration::from_secs(1);
    let late = sim.add_node("late-sub", late);
    sim.run_until(SimTime::from_secs(3));

    let got = &sim.node_ref::<Sub>(late).expect("sub").got;
    assert_eq!(got.len(), 1, "late subscriber got the retained message");
    assert_eq!(got[0].1, b"0".to_vec());
    // The mirror now lives on broker 1 too.
    let far = sim.node_ref::<BrokerNode>(brokers[1]).expect("broker");
    assert_eq!(far.stats().retained, 1);
    assert_bridge_conservation(&sim, &brokers);
}

#[test]
fn unsubscribe_withdraws_the_advertisement() {
    let mut sim = ideal_sim(13);
    let brokers = build_federation(&mut sim, 2, &["d0", "d1"], small_batches());
    // Subscriber on broker 1 walks away at t=1s; publisher keeps going
    // until t≈4s.
    let mut sub = Sub::new(brokers[1], "district/d0/#", QoS::AtMostOnce);
    // Between the seq-9 publish (t=1s) and the seq-10 one (t=1.1s), off
    // the knife edge: in-flight batches have drained when it lands.
    sub.unsubscribe_at = Some(SimDuration::from_millis(1050));
    let sub = sim.add_node("sub", sub);
    const N: u64 = 40;
    sim.add_node(
        "pub",
        Pub::new(
            brokers[0],
            "district/d0/entity/e1/device/m1/power",
            N,
            SimDuration::from_millis(100),
        ),
    );
    sim.run_until(SimTime::from_secs(6));

    let got = seqs(&sim.node_ref::<Sub>(sub).expect("sub").got);
    // Publishes at 100ms..1000ms (seqs 0..=9) arrive; later ones must
    // not cross the bridge at all.
    assert!(
        !got.is_empty() && got.len() < N as usize,
        "stopped mid-run: {got:?}"
    );
    let owner = sim.node_ref::<BrokerNode>(brokers[0]).expect("broker");
    assert_eq!(
        owner.bridge_stats().frames_enqueued,
        got.len() as u64,
        "no frames forwarded after the unadvertise"
    );
    assert_bridge_conservation(&sim, &brokers);
}

#[test]
fn owner_restart_recovers_cross_shard_routing() {
    let mut sim = ideal_sim(14);
    let brokers = build_federation(&mut sim, 2, &["d0", "d1"], small_batches());
    // QoS 1 publisher: its client retries unacked publishes, so the
    // owner's 1-second outage must not lose anything.
    let mut publisher = Pub::new(
        brokers[0],
        "district/d0/entity/e1/device/m1/power",
        30,
        SimDuration::from_millis(250),
    );
    publisher.qos = QoS::AtLeastOnce;
    sim.add_node("pub", publisher);
    let mut sub = Sub::new(brokers[1], "district/d0/#", QoS::AtLeastOnce);
    sub.keepalive = Some(SimDuration::from_millis(500));
    let sub = sim.add_node("sub", sub);

    sim.run_until(SimTime::from_secs(2));
    sim.crash(brokers[0]);
    sim.restart(brokers[0], SimDuration::from_secs(1));
    sim.run_until(SimTime::from_secs(20));

    // After the restart the subscriber's broker re-advertised (prompted
    // by the owner's BridgeHello), so post-recovery publishes flow again.
    let got = seqs(&sim.node_ref::<Sub>(sub).expect("sub").got);
    let mut unique = got.clone();
    unique.sort_unstable();
    unique.dedup();
    // A *broker* crash can lose the handful of publishes it acked but
    // still held buffered for the bridge, plus those accepted before the
    // peer's re-advertisement landed — the same window a single-broker
    // restart has. The tail must flow again, and the gap stays small.
    // (Zero-loss holds for bridge *link* faults: see tests/chaos.rs.)
    assert_eq!(
        *unique.last().expect("got messages"),
        29,
        "routing recovered"
    );
    assert!(unique.len() >= 24, "bounded crash-window gap: {unique:?}");
    let owner = sim.node_ref::<BrokerNode>(brokers[0]).expect("broker");
    assert!(owner.incarnation() >= 1);
    assert_bridge_conservation(&sim, &brokers);
}

#[test]
fn remote_restart_wipes_and_relearns_advertisements() {
    let mut sim = ideal_sim(15);
    let brokers = build_federation(&mut sim, 2, &["d0", "d1"], small_batches());
    let mut sub = Sub::new(brokers[1], "district/d0/#", QoS::AtLeastOnce);
    // Keepalive lets the subscriber re-subscribe to its restarted broker,
    // which in turn re-advertises across the bridge.
    sub.keepalive = Some(SimDuration::from_millis(500));
    let sub = sim.add_node("sub", sub);
    let mut publisher = Pub::new(
        brokers[0],
        "district/d0/entity/e1/device/m1/power",
        30,
        SimDuration::from_millis(250),
    );
    publisher.qos = QoS::AtLeastOnce;
    sim.add_node("pub", publisher);

    sim.run_until(SimTime::from_secs(2));
    sim.crash(brokers[1]);
    sim.restart(brokers[1], SimDuration::from_secs(1));
    sim.run_until(SimTime::from_secs(20));

    let got = seqs(&sim.node_ref::<Sub>(sub).expect("sub").got);
    let mut unique = got.clone();
    unique.sort_unstable();
    unique.dedup();
    // Messages published while broker 1 was down (and before the
    // subscriber's session resumed) can be lost — that matches the
    // single-broker restart semantics — but the tail must flow again.
    assert_eq!(
        *unique.last().expect("got messages"),
        29,
        "routing recovered"
    );
    assert!(unique.len() >= 20, "short outage, small gap: {unique:?}");
    assert_bridge_conservation(&sim, &brokers);
}

/// Publishes one message with a minted trace id and a root span, so the
/// flight recorder can rebuild the full causal tree.
struct TracedPub {
    client: PubSubClient,
    topic: &'static str,
    trace: u64,
}

impl Node for TracedPub {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimDuration::from_millis(50), TimerTag(TAG_PUBLISH));
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        self.client.accept(ctx, &pkt);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        if tag.0 == TAG_PUBLISH {
            self.trace = ctx.telemetry().tracer.next_trace_id();
            let span = ctx.trace_hop("pub.send", self.trace, self.topic);
            let topic = Topic::new(self.topic).expect("topic");
            self.client.publish_spanned(
                ctx,
                topic,
                b"42".to_vec(),
                false,
                QoS::AtMostOnce,
                self.trace,
                span,
            );
        } else if self.client.owns_tag(tag) {
            self.client.on_timer(ctx, tag);
        }
    }
}

#[test]
fn span_tree_reconstructs_cross_shard_flight_with_bridge_hop() {
    use simnet::telemetry::SpanNode;

    let mut sim = ideal_sim(21);
    let brokers = build_federation(&mut sim, 2, &["d0", "d1"], small_batches());
    // Subscriber on shard 1 for a topic owned by shard 1; the publisher
    // hangs off shard 0, so delivery must cross the bridge.
    let sub = sim.add_node(
        "sub",
        Sub::new(brokers[1], "district/d1/#", QoS::AtMostOnce),
    );
    let publisher = sim.add_node(
        "pub",
        TracedPub {
            client: PubSubClient::new(brokers[0], CLIENT_TAGS),
            topic: "district/d1/entity/e1/device/m1/power",
            trace: 0,
        },
    );
    sim.run_for(SimDuration::from_secs(5));

    assert_eq!(
        sim.node_ref::<Sub>(sub).expect("sub").got.len(),
        1,
        "the traced publish was delivered"
    );
    let trace = sim.node_ref::<TracedPub>(publisher).expect("pub").trace;
    assert_ne!(trace, 0, "publisher minted a trace");

    let trees = sim.telemetry().span_trees();
    let tree = trees
        .iter()
        .find(|t| t.trace_id == trace)
        .expect("flight recorder kept the trace");
    assert_eq!(tree.roots.len(), 1, "one causal root");

    // Walk root-to-leaf: the device→shard0→bridge→shard1→subscriber
    // chain must appear as parent→child links, not just as a flat bag
    // of hops.
    fn leaf_path<'a>(node: &'a SpanNode, path: &mut Vec<&'a SpanNode>, out: &mut Vec<Vec<String>>) {
        path.push(node);
        if node.children.is_empty() {
            out.push(path.iter().map(|n| n.hop.kind.clone()).collect());
        }
        for c in &node.children {
            leaf_path(c, path, out);
        }
        path.pop();
    }
    let mut paths = Vec::new();
    leaf_path(&tree.roots[0], &mut Vec::new(), &mut paths);
    let expect = [
        "pub.send",
        "broker.publish",
        "bridge.forward",
        "bridge.deliver",
        "broker.deliver",
        "sub.receive",
    ];
    assert!(
        paths.iter().any(|p| p == &expect),
        "no root-to-leaf path matches {expect:?}; got {paths:?}"
    );

    // The bridge hop really crossed shards: forward on broker0,
    // deliver on broker1.
    let nodes = tree.nodes();
    let fwd = nodes
        .iter()
        .find(|n| n.hop.kind == "bridge.forward")
        .expect("bridge.forward span");
    let del = nodes
        .iter()
        .find(|n| n.hop.kind == "bridge.deliver")
        .expect("bridge.deliver span");
    assert_eq!(fwd.hop.node_name, "broker0");
    assert_eq!(del.hop.node_name, "broker1");
    assert_ne!(fwd.hop.node, del.hop.node);
    assert_bridge_conservation(&sim, &brokers);
}
