//! Property-based tests on the protocol codecs: encode/decode round
//! trips with arbitrary field values, and decoder robustness against
//! arbitrary byte soup.

use proptest::prelude::*;
use protocols::coap::{CoapCode, CoapMessage, CoapType};
use protocols::enocean::{Eep, EepReading, Erp1Telegram, Rorg};
use protocols::ieee802154::{Address, FrameType, MacFrame, PanId};
use protocols::opcua::{
    AttributeId, DataValue, Message, NodeId, ReadValueId, StatusCode, Variant, WriteValue,
};
use protocols::zigbee::{report_builder, ClusterId, ZclAttribute, ZclValue, ZigbeeFrame};

fn address_strategy() -> impl Strategy<Value = Address> {
    prop_oneof![
        Just(Address::None),
        any::<u16>().prop_map(Address::Short),
        any::<u64>().prop_map(Address::Extended),
    ]
}

fn zcl_value_strategy() -> impl Strategy<Value = ZclValue> {
    prop_oneof![
        any::<bool>().prop_map(ZclValue::Bool),
        any::<u8>().prop_map(ZclValue::U8),
        any::<u16>().prop_map(ZclValue::U16),
        any::<u32>().prop_map(ZclValue::U32),
        (0u64..(1 << 48)).prop_map(ZclValue::U48),
        any::<i16>().prop_map(ZclValue::I16),
        any::<i32>().prop_map(ZclValue::I32),
    ]
}

fn variant_strategy() -> impl Strategy<Value = Variant> {
    prop_oneof![
        any::<bool>().prop_map(Variant::Boolean),
        any::<i32>().prop_map(Variant::Int32),
        any::<i64>().prop_map(Variant::Int64),
        any::<f64>()
            .prop_filter("no NaN (PartialEq)", |f| !f.is_nan())
            .prop_map(Variant::Double),
        "\\PC{0,16}".prop_map(Variant::Str),
        any::<i64>().prop_map(Variant::DateTime),
    ]
}

fn node_id_strategy() -> impl Strategy<Value = NodeId> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(ns, id)| NodeId::numeric(ns, id)),
        (any::<u16>(), "[a-z.]{0,12}").prop_map(|(ns, id)| NodeId::string(ns, id)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mac_frame_round_trip(
        seq in any::<u8>(),
        pan in any::<u16>(),
        dest in address_strategy(),
        src in address_strategy(),
        payload in prop::collection::vec(any::<u8>(), 0..100),
        ack in any::<bool>(),
        pending in any::<bool>(),
    ) {
        let dest_pan = if dest == Address::None { None } else { Some(PanId(pan)) };
        // Wire consistency: a present source needs a PAN, either its own
        // or via PAN-id compression (which requires a destination PAN).
        let src_pan = if src != Address::None && dest_pan.is_none() {
            Some(PanId(pan.wrapping_add(1)))
        } else {
            None
        };
        let frame = MacFrame {
            frame_type: FrameType::Data,
            ack_request: ack,
            frame_pending: pending,
            sequence: seq,
            dest_pan,
            dest,
            src_pan,
            src,
            payload,
        };
        let back = MacFrame::decode(&frame.encode()).unwrap();
        prop_assert_eq!(back, frame);
    }

    #[test]
    fn mac_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = MacFrame::decode(&bytes);
    }

    #[test]
    fn mac_bit_flips_never_yield_wrong_frames(
        payload in prop::collection::vec(any::<u8>(), 1..40),
        flip_bit in any::<u16>(),
    ) {
        let frame = MacFrame::data(PanId(7), Address::Short(1), Address::Short(2), 1, payload);
        let mut bytes = frame.encode();
        let bit = usize::from(flip_bit) % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        // A flipped bit must either fail the FCS or (never) decode to the
        // original; silently yielding a *different* valid frame is the
        // 1-in-65536 CRC collision, impossible for single-bit flips.
        match MacFrame::decode(&bytes) {
            Ok(decoded) => prop_assert_ne!(decoded, frame),
            Err(_) => {}
        }
    }

    #[test]
    fn zigbee_round_trip(
        nwk in any::<u16>(),
        seq in any::<u8>(),
        values in prop::collection::vec(zcl_value_strategy(), 0..6),
    ) {
        let mut b = report_builder(nwk, ClusterId::SIMPLE_METERING).sequence(seq);
        for (i, v) in values.iter().enumerate() {
            b = b.attribute(ZclAttribute::new(i as u16, *v));
        }
        let frame = b.build();
        let back = ZigbeeFrame::decode(&frame.encode()).unwrap();
        prop_assert_eq!(back, frame);
    }

    #[test]
    fn zigbee_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = ZigbeeFrame::decode(&bytes);
    }

    #[test]
    fn erp1_esp3_round_trip(
        sender in any::<u32>(),
        status in any::<u8>(),
        data4 in prop::collection::vec(any::<u8>(), 4),
    ) {
        let t = Erp1Telegram::new(Rorg::FourBs, data4, sender, status);
        let back = Erp1Telegram::from_esp3(&t.to_esp3()).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn esp3_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = Erp1Telegram::from_esp3(&bytes);
    }

    #[test]
    fn enocean_temperature_quantization_bounded(t in 0.0f64..40.0) {
        let tel = Eep::A50205.encode_reading(&EepReading::Temperature { celsius: t }, 1);
        match Eep::A50205.decode_reading(&tel).unwrap() {
            EepReading::Temperature { celsius } => {
                prop_assert!((celsius - t).abs() <= 40.0 / 255.0 / 2.0 + 1e-9);
            }
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    #[test]
    fn opcua_messages_round_trip(
        reads in prop::collection::vec(node_id_strategy(), 0..5),
        variants in prop::collection::vec(variant_strategy(), 0..5),
        statuses in prop::collection::vec(any::<u32>(), 0..5),
    ) {
        let messages = [
            Message::ReadRequest {
                nodes: reads
                    .iter()
                    .cloned()
                    .map(|node_id| ReadValueId { node_id, attribute: AttributeId::Value })
                    .collect(),
            },
            Message::ReadResponse {
                results: variants
                    .iter()
                    .cloned()
                    .map(|v| DataValue::good(v, 7))
                    .collect(),
            },
            Message::WriteRequest {
                nodes: reads
                    .iter()
                    .cloned()
                    .zip(variants.iter().cloned())
                    .map(|(node_id, value)| WriteValue {
                        node_id,
                        attribute: AttributeId::Value,
                        value,
                    })
                    .collect(),
            },
            Message::WriteResponse {
                results: statuses.iter().map(|&s| StatusCode(s)).collect(),
            },
        ];
        for m in &messages {
            prop_assert_eq!(&Message::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn opcua_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn coap_round_trip(
        message_id in any::<u16>(),
        token in prop::collection::vec(any::<u8>(), 0..=8),
        path in prop::collection::vec("[a-zA-Z0-9._-]{1,24}", 0..5),
        payload in prop::collection::vec(any::<u8>(), 0..64),
        cf in proptest::option::of(any::<u16>()),
        mtype in 0u8..4,
        code in prop_oneof![Just(CoapCode::GET), Just(CoapCode::POST), Just(CoapCode::CONTENT)],
    ) {
        let msg = CoapMessage {
            mtype: match mtype {
                0 => CoapType::Confirmable,
                1 => CoapType::NonConfirmable,
                2 => CoapType::Acknowledgement,
                _ => CoapType::Reset,
            },
            code,
            message_id,
            token,
            uri_path: path,
            content_format: cf,
            payload,
        };
        prop_assert_eq!(CoapMessage::decode(&msg.encode()).expect("round trip"), msg);
    }

    #[test]
    fn coap_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let _ = CoapMessage::decode(&bytes);
    }
}
